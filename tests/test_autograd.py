"""Gradient checks and semantics tests for the autograd engine."""

import numpy as np
import pytest

from repro import autograd as ag
from repro.autograd import Tensor, check_gradients


def _t(shape, seed=0, scale=1.0):
    """Float64 test tensor: central differences need the extra precision."""
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


class TestElementwise:
    def test_add_broadcast(self):
        a, b = _t((3, 4), 1), _t((4,), 2)
        check_gradients(lambda: (a + b).sum(), [a, b])

    def test_sub_mul_div(self):
        a, b = _t((2, 3), 1), _t((2, 3), 2)
        b.data += 3.0  # keep divisor away from zero
        check_gradients(lambda: ((a - b) * a / b).sum(), [a, b])

    def test_scalar_ops(self):
        a = _t((5,), 3)
        check_gradients(lambda: (2.0 * a + 1.0 - a / 2.0).sum(), [a])

    def test_pow_neg(self):
        a = _t((4,), 4)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda: (a ** 3.0).sum() + (-a).sum(), [a])

    @pytest.mark.parametrize("fn", [ag.exp, ag.tanh, ag.sigmoid, ag.relu,
                                    ag.relu6, ag.gelu, ag.hardswish])
    def test_unary_activations(self, fn):
        a = _t((3, 5), 5)
        a.data += 0.05  # avoid the exact kink of relu-like functions
        check_gradients(lambda: fn(a).sum(), [a])

    def test_log_sqrt(self):
        a = _t((6,), 6)
        a.data = np.abs(a.data) + 0.5
        check_gradients(lambda: (ag.log(a) + ag.sqrt(a)).sum(), [a])


class TestReductionsAndShapes:
    def test_sum_axis_keepdims(self):
        a = _t((3, 4, 2), 7)
        check_gradients(lambda: (a.sum(axis=1, keepdims=True) * 2.0).sum(), [a])

    def test_mean(self):
        a = _t((4, 6), 8)
        check_gradients(lambda: a.mean(axis=0).sum() + a.mean(), [a])

    def test_max(self):
        a = _t((5, 7), 9)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_reshape_transpose(self):
        a = _t((2, 3, 4), 10)
        check_gradients(
            lambda: a.reshape(6, 4).transpose((1, 0)).sum(), [a])

    def test_getitem(self):
        a = _t((6, 4), 11)
        check_gradients(lambda: a[1:4].sum() + a[0].sum(), [a])

    def test_concat(self):
        a, b = _t((2, 3), 12), _t((2, 5), 13)
        check_gradients(lambda: ag.concat([a, b], axis=1).sum(), [a, b])

    def test_matmul_2d(self):
        a, b = _t((3, 4), 14), _t((4, 2), 15)
        check_gradients(lambda: (a @ b).sum(), [a, b])

    def test_matmul_batched(self):
        a, b = _t((2, 3, 4), 16), _t((2, 4, 5), 17)
        check_gradients(lambda: (a @ b).sum(), [a, b])


class TestNNOps:
    def test_linear(self):
        x, w, b = _t((4, 3), 1), _t((5, 3), 2), _t((5,), 3)
        check_gradients(lambda: ag.linear(x, w, b).sum(), [x, w, b])

    def test_linear_3d_input(self):
        x, w = _t((2, 3, 4), 4), _t((6, 4), 5)
        check_gradients(lambda: ag.linear(x, w).sum(), [x, w])

    def test_conv2d_basic(self):
        x, w, b = _t((2, 3, 6, 6), 6), _t((4, 3, 3, 3), 7, 0.3), _t((4,), 8)
        check_gradients(
            lambda: ag.conv2d(x, w, b, stride=1, padding=1).sum(), [x, w, b])

    def test_conv2d_stride2(self):
        x, w = _t((1, 2, 8, 8), 9), _t((3, 2, 3, 3), 10, 0.3)
        check_gradients(lambda: ag.conv2d(x, w, stride=2, padding=1).sum(),
                        [x, w])

    def test_conv2d_depthwise(self):
        x, w = _t((2, 4, 6, 6), 11), _t((4, 1, 3, 3), 12, 0.3)
        check_gradients(
            lambda: ag.conv2d(x, w, stride=1, padding=1, groups=4).sum(),
            [x, w])

    def test_conv2d_1x1(self):
        x, w = _t((2, 4, 5, 5), 13), _t((6, 4, 1, 1), 14, 0.3)
        check_gradients(lambda: ag.conv2d(x, w).sum(), [x, w])

    def test_conv2d_shape_validation(self):
        x, w = _t((1, 3, 4, 4)), _t((4, 2, 3, 3))
        with pytest.raises(ValueError):
            ag.conv2d(x, w)

    def test_max_pool(self):
        x = _t((2, 3, 4, 4), 15)
        check_gradients(lambda: ag.max_pool2d(x, 2).sum(), [x])

    def test_avg_pool(self):
        x = _t((2, 3, 4, 4), 16)
        check_gradients(lambda: ag.avg_pool2d(x, 2).sum(), [x])

    def test_global_avg_pool(self):
        x = _t((2, 3, 5, 5), 17)
        check_gradients(lambda: ag.global_avg_pool2d(x).sum(), [x])

    def test_batch_norm_training(self):
        x, g, b = _t((4, 3, 2, 2), 18), _t((3,), 19), _t((3,), 20)
        rm, rv = np.zeros(3, np.float32), np.ones(3, np.float32)
        check_gradients(
            lambda: ag.batch_norm(x, g, b, rm.copy(), rv.copy(),
                                  training=True).sum(), [x, g, b])

    def test_batch_norm_eval_uses_running_stats(self):
        x = _t((4, 3, 2, 2), 21)
        g = Tensor(np.ones(3, np.float32), requires_grad=True)
        b = Tensor(np.zeros(3, np.float32), requires_grad=True)
        rm = np.full(3, 0.5, np.float32)
        rv = np.full(3, 2.0, np.float32)
        out = ag.batch_norm(x, g, b, rm, rv, training=False)
        expected = (x.data - 0.5) / np.sqrt(2.0 + 1e-5)
        np.testing.assert_allclose(out.data, expected, rtol=1e-5)

    def test_batch_norm_updates_running_stats(self):
        x = _t((8, 3, 4, 4), 22)
        g, b = _t((3,), 23), _t((3,), 24)
        rm = np.zeros(3, np.float32)
        rv = np.ones(3, np.float32)
        ag.batch_norm(x, g, b, rm, rv, training=True, momentum=0.5)
        batch_mean = x.data.mean(axis=(0, 2, 3))
        np.testing.assert_allclose(rm, 0.5 * batch_mean, rtol=1e-5)

    def test_batch_norm_2d_input(self):
        x, g, b = _t((6, 4), 25), _t((4,), 26), _t((4,), 27)
        rm, rv = np.zeros(4, np.float32), np.ones(4, np.float32)
        check_gradients(
            lambda: ag.batch_norm(x, g, b, rm.copy(), rv.copy(),
                                  training=True).sum(), [x, g, b])

    def test_layer_norm(self):
        x, g, b = _t((3, 4, 5), 28), _t((5,), 29), _t((5,), 30)
        check_gradients(lambda: ag.layer_norm(x, g, b).sum(), [x, g, b])

    def test_embedding(self):
        w = _t((10, 4), 31)
        idx = np.array([[1, 2, 3], [3, 3, 9]])
        check_gradients(lambda: ag.embedding(w, idx).sum(), [w])

    def test_softmax_rows_sum_to_one(self):
        x = _t((4, 7), 32)
        out = ag.softmax(x)
        np.testing.assert_allclose(out.data.sum(axis=-1), 1.0, rtol=1e-5)

    def test_softmax_grad(self):
        x = _t((3, 5), 33)
        weights = np.linspace(0.5, 1.5, 15).reshape(3, 5).astype(np.float32)
        check_gradients(lambda: (ag.softmax(x) * Tensor(weights)).sum(), [x])

    def test_log_softmax_grad(self):
        x = _t((3, 5), 34)
        weights = np.linspace(0.5, 1.5, 15).reshape(3, 5).astype(np.float32)
        check_gradients(lambda: (ag.log_softmax(x) * Tensor(weights)).sum(), [x])

    def test_cross_entropy_matches_manual(self):
        x = _t((4, 6), 35)
        labels = np.array([0, 2, 5, 1])
        loss = ag.cross_entropy(x, labels)
        logp = ag.log_softmax(x).data
        manual = -logp[np.arange(4), labels].mean()
        assert abs(loss.item() - manual) < 1e-6

    def test_cross_entropy_grad(self):
        x = _t((4, 6), 36)
        labels = np.array([0, 2, 5, 1])
        check_gradients(lambda: ag.cross_entropy(x, labels), [x])

    def test_soft_cross_entropy_grad(self):
        x = _t((4, 6), 37)
        rng = np.random.default_rng(0)
        target = rng.dirichlet(np.ones(6), size=4).astype(np.float32)
        check_gradients(lambda: ag.soft_cross_entropy(x, target), [x])

    def test_mse_grad(self):
        x = _t((3, 4), 38)
        target = np.zeros((3, 4), np.float32)
        check_gradients(lambda: ag.mse_loss(x, target), [x])

    def test_dropout_eval_is_identity(self):
        x = _t((5, 5), 39)
        out = ag.dropout(x, 0.5, training=False)
        assert out is x

    def test_dropout_scales(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200), np.float32), requires_grad=True)
        out = ag.dropout(x, 0.25, training=True, rng=rng)
        # Inverted dropout keeps the expectation.
        assert abs(out.data.mean() - 1.0) < 0.02


class TestGraphSemantics:
    def test_reused_tensor_accumulates(self):
        a = _t((3,), 40)
        check_gradients(lambda: (a * a + a).sum(), [a])

    def test_diamond_graph(self):
        a = _t((4,), 41)
        def fn():
            b = a * 2.0
            c = a + 1.0
            return (b * c).sum()
        check_gradients(fn, [a])

    def test_no_grad_blocks_graph(self):
        a = _t((3,), 42)
        with ag.no_grad():
            out = (a * 2.0).sum()
        assert out._backward is None
        assert not out.requires_grad

    def test_backward_accumulates_across_calls(self):
        a = _t((3,), 43)
        (a * 2.0).sum().backward()
        first = a.grad.copy()
        (a * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, 2.0 * first)

    def test_detach(self):
        a = _t((3,), 44)
        d = a.detach()
        assert not d.requires_grad
        (d * 3.0).sum().backward()
        assert a.grad is None

    def test_deep_chain(self):
        a = _t((2, 2), 45)
        def fn():
            x = a
            for _ in range(20):
                x = ag.tanh(x * 0.9 + 0.1)
            return x.sum()
        check_gradients(fn, [a])
