"""Deeper aggregation-semantics tests at the federated level.

These pin the invariants the figures rely on: rolling windows eventually
cover every coordinate, BN running statistics travel with their slices,
weighted coordinate means behave like means, and partially-frozen uploads
never dilute other clients' updates.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import load_dataset, partition_dataset
from repro.fl import LocalTrainConfig, history_from_dict, history_to_dict
from repro.fl.history import History, RoundRecord
from repro.hw import sample_fleet
from repro.models import (build_model, extract_substate, finalize_mean,
                          scatter_accumulate, width_index_maps,
                          zeros_like_state)
from repro.algorithms import ALGORITHMS, assign_levels_uniformly


@pytest.fixture(scope="module")
def task():
    ds = load_dataset("harbox", seed=0, num_users=12, samples_per_user=10,
                      test_size=60)
    fleet = sample_fleet(12, seed=1)
    shards = partition_dataset(ds, 12, seed=2)
    return ds, fleet, shards


def _algo(name, task, **kwargs):
    ds, fleet, shards = task
    cls = ALGORITHMS[name]
    base = build_model("har_cnn", num_classes=ds.num_classes, seed=0,
                       **cls.base_model_overrides)
    pool = cls.build_pool(base)
    clients = assign_levels_uniformly(pool, fleet, ds, shards)
    config = LocalTrainConfig(batch_size=8, max_batches=2)
    return cls(base, ds, clients, train_config=config, pool=pool, **kwargs)


class TestRollingCoverage:
    def test_fedrolex_touches_tail_coordinates(self, task):
        """Coordinates beyond every prefix still get trained over rounds."""
        algo = _algo("fedrolex", task)
        rng = np.random.default_rng(0)
        name = "stages.3.0.conv.weight"
        before_tail = algo.global_state[name][-1].copy()
        # The x0.25 client's window must eventually reach the last channel.
        small_id = next(cid for cid, ctx in algo.clients.items()
                        if ctx.entry.overrides.get("width_mult") == 0.25)
        dim = algo.global_state[name].shape[0]
        for round_index in range(dim):
            algo.run_round(round_index, [small_id], rng)
        assert not np.array_equal(algo.global_state[name][-1], before_tail)

    def test_sheterofl_never_touches_tail(self, task):
        algo = _algo("sheterofl", task)
        rng = np.random.default_rng(0)
        name = "stages.3.0.conv.weight"
        before_tail = algo.global_state[name][-1].copy()
        small_id = next(cid for cid, ctx in algo.clients.items()
                        if ctx.entry.overrides.get("width_mult") == 0.25)
        for round_index in range(8):
            algo.run_round(round_index, [small_id], rng)
        np.testing.assert_array_equal(algo.global_state[name][-1],
                                      before_tail)


class TestBatchNormBuffers:
    def test_running_stats_aggregate(self, task):
        """BN running means travel with client slices into the global state."""
        algo = _algo("sheterofl", task)
        rng = np.random.default_rng(0)
        name = "stages.0.0.bn.running_mean"
        before = algo.global_state[name].copy()
        algo.run_round(0, list(algo.clients)[:4], rng)
        assert not np.array_equal(algo.global_state[name], before)


class TestWeightedMeanProperties:
    @given(weights=st.lists(st.floats(0.5, 20.0), min_size=2, max_size=5))
    @settings(max_examples=25, deadline=None)
    def test_weighted_mean_within_bounds(self, weights):
        """finalize_mean is a convex combination of the contributions."""
        shape = (4, 3)
        rng = np.random.default_rng(0)
        contributions = [rng.standard_normal(shape) for _ in weights]
        fallback = {"w": np.zeros(shape, np.float32)}
        sums = zeros_like_state(fallback)
        counts = zeros_like_state(fallback)
        maps = {"w": (None, None)}
        for weight, value in zip(weights, contributions):
            scatter_accumulate(sums, counts, {"w": value}, maps, weight)
        merged = finalize_mean(sums, counts, fallback)["w"]
        stacked = np.stack(contributions)
        assert np.all(merged >= stacked.min(axis=0) - 1e-5)
        assert np.all(merged <= stacked.max(axis=0) + 1e-5)

    def test_equal_weights_is_plain_mean(self):
        shape = (3,)
        values = [np.ones(shape) * i for i in range(1, 4)]
        fallback = {"w": np.zeros(shape, np.float32)}
        sums = zeros_like_state(fallback)
        counts = zeros_like_state(fallback)
        for value in values:
            scatter_accumulate(sums, counts, {"w": value}, {"w": (None,)}, 1.0)
        merged = finalize_mean(sums, counts, fallback)["w"]
        np.testing.assert_allclose(merged, 2.0)


class TestFeDepthIsolation:
    def test_frozen_stage_upload_does_not_dilute(self, task):
        """A FeDepth client's frozen stages never reach the accumulator."""
        algo = _algo("fedepth", task)
        rng = np.random.default_rng(0)
        ctx = next(ctx for ctx in algo.clients.values()
                   if ctx.entry.key == "seg1")
        model, maps = algo.build_client_model(ctx, round_index=0, rng=rng)
        keep = algo.upload_filter(model, ctx)
        frozen_params = {n for n, p in model.named_parameters()
                         if not p.requires_grad}
        assert not (keep & frozen_params)


class TestDeterminism:
    def test_same_seed_same_run(self, task):
        from repro.fl import SimulationConfig, run_simulation
        results = []
        for _ in range(2):
            algo = _algo("sheterofl", task)
            sim = SimulationConfig(num_rounds=3, sample_ratio=0.3,
                                   eval_every=1, seed=11)
            history = run_simulation(algo, sim)
            results.append([r.global_accuracy for r in history.evaluated])
        assert results[0] == results[1]


class TestHistorySerialization:
    def test_roundtrip(self):
        h = History(algorithm="a", dataset="d")
        h.append(RoundRecord(0, 1.5, 1.5, 0.9, global_accuracy=0.4,
                             extras={"note": 1}))
        h.append(RoundRecord(1, 3.0, 1.5, 0.7, global_accuracy=None))
        h.final_device_accuracies = [0.3, 0.5]
        clone = history_from_dict(history_to_dict(h))
        assert clone.algorithm == "a"
        assert clone.final_accuracy == 0.4
        assert clone.records[1].global_accuracy is None
        assert clone.final_device_accuracies == [0.3, 0.5]
        assert clone.records[0].extras == {"note": 1}

    def test_save_load(self, tmp_path):
        from repro.fl import load_history, save_history
        h = History(algorithm="x", dataset="y")
        h.append(RoundRecord(0, 1.0, 1.0, 0.5, global_accuracy=0.2))
        path = tmp_path / "run.json"
        save_history(h, path)
        assert load_history(path).final_accuracy == 0.2
