"""`repro lint` + strict mode: the determinism contracts, enforced.

Two layers under test:

* the **static rule engine** (:mod:`repro.analysis`): every rule in the
  catalog fires on a seeded fixture violation and stays quiet on the
  compliant twin; suppressions silence exactly the named rule on exactly
  the covered line and go stale loudly; the real ``src/`` tree lints
  clean; the CLI verb exits non-zero on findings and emits the stable
  ``--json`` schema.
* the **strict-mode runtime sanitizers** (:mod:`repro.fl.sanitizers`):
  broadcast freezing and the global-RNG tripwire trap violations at the
  offending line, and — the headline guarantee — a ``--strict`` run
  produces a ``History.to_json()`` byte-identical to a non-strict run
  across inline/thread/process executors.
"""

import ast
import json
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import (Finding, LintReport, PACKAGE_ROOT, all_rules,
                            rule_catalog, run_lint)
from repro.analysis.engine import ModuleSource, _index_imports
from repro.analysis.findings import parse_suppressions
from repro.analysis.rules.coverage import (HashFieldCoverage,
                                           SerializationCoverage)
from repro.analysis.rules.determinism import (NoGlobalRng,
                                              NoWallclockInState,
                                              SortedIteration)
from repro.analysis.rules.hygiene import (LoggerNaming, NoBareExcept,
                                          PureWorkItems)
from repro.constraints import ConstraintSpec
from repro.experiments import RunSpec, execute_spec
from repro.fl import ExecutionConfig
from repro.fl.sanitizers import (StrictModeViolation, collect_arrays,
                                 freeze_arrays, frozen_arrays,
                                 resolve_strict, rng_tripwire,
                                 set_strict_mode, strict_enabled)


def make_module(rel: str, source: str) -> ModuleSource:
    """Parse a fixture snippet as if it lived at ``rel`` in the package."""
    source = textwrap.dedent(source)
    module = ModuleSource(path=Path(rel), rel=rel, source=source,
                          tree=ast.parse(source),
                          suppressions=parse_suppressions(source))
    _index_imports(module)
    return module


def lint(files: dict, rules=None) -> LintReport:
    modules = [make_module(rel, src) for rel, src in files.items()]
    return run_lint(list(rules) if rules is not None else all_rules(),
                    modules=modules)


def hits(report: LintReport, rule_id: str) -> list:
    return [f for f in report.findings if f.rule == rule_id]


class TestNoGlobalRng:
    def test_numpy_global_calls_flagged(self):
        report = lint({"fl/x.py": """
            import numpy as np
            np.random.seed(0)
            vals = np.random.normal(size=3)
        """}, rules=[NoGlobalRng()])
        assert len(hits(report, "no-global-rng")) == 2

    def test_numpy_random_module_alias_flagged(self):
        report = lint({"fl/x.py": """
            import numpy.random as npr
            npr.shuffle([1, 2])
        """}, rules=[NoGlobalRng()])
        assert len(hits(report, "no-global-rng")) == 1

    def test_stdlib_random_flagged(self):
        report = lint({"fl/x.py": """
            import random
            from random import shuffle
            random.random()
            shuffle([1, 2])
        """}, rules=[NoGlobalRng()])
        assert len(hits(report, "no-global-rng")) == 2

    def test_derived_generators_clean(self):
        report = lint({"fl/x.py": """
            import random
            import numpy as np
            rng = np.random.default_rng(0)
            vals = rng.normal(size=3)
            owned = random.Random(3)
            owned.shuffle([1, 2])
        """}, rules=[NoGlobalRng()])
        assert report.findings == []

    def test_unrelated_name_not_confused_with_random_module(self):
        # a local object that happens to be called ``random`` is not the
        # stdlib module; import binding decides, not the spelling.
        report = lint({"fl/x.py": """
            random = object()
            random.choice([1])
        """}, rules=[NoGlobalRng()])
        assert report.findings == []


class TestNoWallclockInState:
    def test_wallclock_reads_flagged(self):
        report = lint({"fl/x.py": """
            import time
            import datetime
            stamp = time.time()
            today = datetime.datetime.now()
        """}, rules=[NoWallclockInState()])
        assert len(hits(report, "no-wallclock-in-state")) == 2

    def test_imported_datetime_class_flagged(self):
        report = lint({"fl/x.py": """
            from datetime import datetime
            stamp = datetime.utcnow()
        """}, rules=[NoWallclockInState()])
        assert len(hits(report, "no-wallclock-in-state")) == 1

    def test_relative_clocks_clean(self):
        report = lint({"fl/x.py": """
            import time
            start = time.perf_counter()
            tick = time.monotonic()
        """}, rules=[NoWallclockInState()])
        assert report.findings == []


class TestSortedIteration:
    def test_unordered_client_loop_flagged(self):
        report = lint({"algorithms/x.py": """
            class Algo:
                def agg(self):
                    for cid in self.clients:
                        pass
        """}, rules=[SortedIteration()])
        assert len(hits(report, "sorted-iteration")) == 1

    def test_items_and_comprehensions_flagged(self):
        report = lint({"fl/x.py": """
            class Policy:
                def drain(self):
                    done = [c for c in self._in_flight]
                    for cid, state in self._participation.items():
                        pass
        """}, rules=[SortedIteration()])
        assert len(hits(report, "sorted-iteration")) == 2

    def test_sorted_wrapper_and_reductions_clean(self):
        report = lint({"algorithms/x.py": """
            class Algo:
                def agg(self):
                    for cid in sorted(self.clients):
                        pass
                    total = sum(self.clients.values())
                    count = len(self.clients)
        """}, rules=[SortedIteration()])
        assert report.findings == []


HASHED_SPEC_TEMPLATE = """
    from dataclasses import dataclass
    from typing import ClassVar

    @dataclass(frozen=True)
    class RunSpec:
        {body}
"""


def hash_fixture(body: str) -> dict:
    return {"experiments/spec.py":
            textwrap.dedent(HASHED_SPEC_TEMPLATE).format(
                body=textwrap.indent(textwrap.dedent(body), " " * 4).strip())}


class TestHashFieldCoverage:
    def test_uncovered_field_flagged(self):
        report = lint(hash_fixture("""
            algorithm: str = "fedavg"
            workers: int = 1

            def to_dict(self):
                return {"algorithm": self.algorithm}
        """), rules=[HashFieldCoverage()])
        found = hits(report, "hash-field-coverage")
        assert len(found) == 1
        assert "RunSpec.workers" in found[0].message

    def test_serialised_and_excluded_fields_clean(self):
        report = lint(hash_fixture("""
            algorithm: str = "fedavg"
            workers: int = 1
            HASH_EXCLUDED: ClassVar[frozenset[str]] = frozenset({"workers"})

            def to_dict(self):
                return {"algorithm": self.algorithm}
        """), rules=[HashFieldCoverage()])
        assert report.findings == []

    def test_non_classvar_exclusion_flagged(self):
        # a plain-annotated HASH_EXCLUDED would itself become a dataclass
        # field and perturb the very hash it claims to manage.
        report = lint(hash_fixture("""
            algorithm: str = "fedavg"
            HASH_EXCLUDED: frozenset = frozenset()

            def to_dict(self):
                return {"algorithm": self.algorithm}
        """), rules=[HashFieldCoverage()])
        found = hits(report, "hash-field-coverage")
        assert any("ClassVar" in f.message for f in found)

    def test_stale_and_lying_exclusions_flagged(self):
        report = lint(hash_fixture("""
            algorithm: str = "fedavg"
            HASH_EXCLUDED: ClassVar[frozenset[str]] = frozenset(
                {"gone", "algorithm"})

            def to_dict(self):
                return {"algorithm": self.algorithm}
        """), rules=[HashFieldCoverage()])
        messages = " | ".join(f.message for f in
                              hits(report, "hash-field-coverage"))
        assert "stale" in messages          # 'gone' is not a field
        assert "lies" in messages           # 'algorithm' is serialised

    def test_missing_to_dict_flagged(self):
        report = lint(hash_fixture("""
            algorithm: str = "fedavg"
        """), rules=[HashFieldCoverage()])
        assert any("no to_dict" in f.message
                   for f in hits(report, "hash-field-coverage"))


HISTORY_FIXTURE = """
    from dataclasses import dataclass, field

    @dataclass
    class RoundRecord:
        round_index: int = 0
        train_loss: float = 0.0

    @dataclass
    class History:
        records: list = field(default_factory=list)
"""

CODEC_TEMPLATE = """
    VOLATILE_FIELDS = {volatile}

    def history_to_dict(history):
        return {{
            "records": [{record} for r in history.records],
        }}

    def history_from_dict(payload):
        return payload["records"], {decoded}
"""


def codec_fixture(record='{"round_index": r.round_index, '
                         '"train_loss": r.train_loss}',
                  decoded='(payload.get("round_index"), '
                          'payload.get("train_loss"))',
                  volatile="{}") -> dict:
    return {"fl/history.py": HISTORY_FIXTURE,
            "fl/serialization.py": textwrap.dedent(CODEC_TEMPLATE).format(
                record=record, decoded=decoded, volatile=volatile)}


class TestSerializationCoverage:
    def test_full_round_trip_clean(self):
        report = lint(codec_fixture(), rules=[SerializationCoverage()])
        assert report.findings == []

    def test_unencoded_field_flagged(self):
        report = lint(codec_fixture(
            record='{"round_index": r.round_index}'),
            rules=[SerializationCoverage()])
        found = hits(report, "serialization-coverage")
        assert any("RoundRecord.train_loss is not encoded" in f.message
                   for f in found)

    def test_encoded_but_not_decoded_flagged(self):
        report = lint(codec_fixture(
            decoded='payload.get("round_index")'),
            rules=[SerializationCoverage()])
        found = hits(report, "serialization-coverage")
        assert any("never read back" in f.message for f in found)

    def test_volatile_declaration_silences(self):
        report = lint(codec_fixture(
            record='{"round_index": r.round_index}',
            decoded='payload.get("round_index")',
            volatile='{"RoundRecord": frozenset({"train_loss"})}'),
            rules=[SerializationCoverage()])
        assert report.findings == []

    def test_stale_volatile_entries_flagged(self):
        report = lint(codec_fixture(
            volatile='{"RoundRecord": frozenset({"nope"}),'
                     ' "Ghost": frozenset({"x"})}'),
            rules=[SerializationCoverage()])
        messages = " | ".join(f.message for f in
                              hits(report, "serialization-coverage"))
        assert "not a field" in messages
        assert "unknown payload class" in messages

    def test_volatile_but_round_tripped_flagged(self):
        report = lint(codec_fixture(
            volatile='{"RoundRecord": frozenset({"train_loss"})}'),
            rules=[SerializationCoverage()])
        assert any("round-trips it anyway" in f.message
                   for f in hits(report, "serialization-coverage"))

    def test_missing_payload_class_flagged(self):
        files = codec_fixture()
        files["fl/history.py"] = "X = 1\n"
        report = lint(files, rules=[SerializationCoverage()])
        assert any("is missing" in f.message
                   for f in hits(report, "serialization-coverage"))


class TestPureWorkItems:
    def test_direct_global_write_flagged(self):
        report = lint({"fl/executor.py": """
            CACHE = {}

            def execute_work_item(item):
                CACHE[item.key] = item
        """}, rules=[PureWorkItems()])
        assert len(hits(report, "pure-work-items")) == 1

    def test_global_statement_and_mutator_flagged(self):
        report = lint({"fl/executor.py": """
            SEEN = []
            COUNT = 0

            def execute_work_item(item):
                global COUNT
                SEEN.append(item)
        """}, rules=[PureWorkItems()])
        assert len(hits(report, "pure-work-items")) == 2

    def test_transitive_same_module_call_flagged(self):
        report = lint({"fl/executor.py": """
            TABLE = {}

            def _memoise(key):
                TABLE[key] = key

            def execute_work_item(item):
                _memoise(item.key)
        """}, rules=[PureWorkItems()])
        assert len(hits(report, "pure-work-items")) == 1

    def test_transitive_cross_module_call_flagged(self):
        report = lint({
            "fl/executor.py": """
                from ..experiments.runner import load_dataset

                def execute_work_item(item):
                    load_dataset(item.key)
            """,
            "experiments/runner.py": """
                _DATASETS = {}

                def load_dataset(key):
                    _DATASETS[key] = key
            """}, rules=[PureWorkItems()])
        found = hits(report, "pure-work-items")
        assert len(found) == 1
        assert found[0].path == "experiments/runner.py"

    def test_function_reference_argument_is_an_edge(self):
        # a bare function reference escaping as a call argument
        # (``loader=_load``) is followed like a call: the callee may
        # invoke it on the work-item path.
        report = lint({"fl/executor.py": """
            MEMO = {}

            def _load(key):
                MEMO[key] = key

            def _build(item, loader):
                return loader(item)

            def execute_work_item(item):
                return _build(item, loader=_load)
        """}, rules=[PureWorkItems()])
        assert len(hits(report, "pure-work-items")) == 1

    def test_local_state_clean(self):
        report = lint({"fl/executor.py": """
            def execute_work_item(item):
                cache = {}
                cache[item.key] = item
                seen = []
                seen.append(item)
                return cache, seen
        """}, rules=[PureWorkItems()])
        assert report.findings == []

    def test_allow_comment_suppresses(self):
        report = lint({"fl/executor.py": """
            MEMO = {}

            def execute_work_item(item):
                # repro: allow[pure-work-items] process-local memo table;
                # keyed by content digest, so any worker computes the
                # same value.
                MEMO[item.key] = item
        """}, rules=[PureWorkItems()])
        assert report.findings == []
        assert report.stale_suppressions == []
        assert len(report.suppressed) == 1


class TestLoggerNaming:
    def test_direct_getlogger_flagged(self):
        report = lint({"fl/x.py": """
            import logging
            from logging import getLogger
            a = logging.getLogger("x")
            b = getLogger(__name__)
        """}, rules=[LoggerNaming()])
        assert len(hits(report, "logger-naming")) == 2

    def test_double_prefix_flagged(self):
        report = lint({"fl/x.py": """
            from repro.telemetry.logs import get_logger
            log = get_logger("repro.fl.executor")
        """}, rules=[LoggerNaming()])
        assert any("double-prefixes" in f.message
                   for f in hits(report, "logger-naming"))

    def test_factory_usage_clean(self):
        report = lint({"fl/x.py": """
            from repro.telemetry.logs import get_logger
            log = get_logger("fl.executor")
        """}, rules=[LoggerNaming()])
        assert report.findings == []

    def test_factory_home_module_exempt(self):
        report = lint({"telemetry/logs.py": """
            import logging

            def get_logger(name):
                return logging.getLogger("repro." + name)
        """}, rules=[LoggerNaming()])
        assert report.findings == []


class TestNoBareExcept:
    def test_bare_except_flagged_everywhere(self):
        report = lint({"viz/plot.py": """
            try:
                x = 1
            except:
                pass
        """}, rules=[NoBareExcept()])
        assert len(hits(report, "no-bare-except")) == 1

    def test_swallowed_broad_except_flagged_on_hot_paths(self):
        report = lint({"fl/x.py": """
            try:
                x = 1
            except Exception:
                pass
        """}, rules=[NoBareExcept()])
        assert len(hits(report, "no-bare-except")) == 1

    def test_reraising_broad_except_clean(self):
        report = lint({"fl/x.py": """
            try:
                x = 1
            except Exception:
                raise RuntimeError("context")
        """}, rules=[NoBareExcept()])
        assert report.findings == []

    def test_swallowed_broad_except_tolerated_off_hot_paths(self):
        report = lint({"viz/plot.py": """
            try:
                x = 1
            except Exception:
                pass
        """}, rules=[NoBareExcept()])
        assert report.findings == []


class TestSuppressions:
    def test_inline_comment_silences_own_line(self):
        report = lint({"fl/x.py": """
            import time
            stamp = time.time()  # repro: allow[no-wallclock-in-state] why
        """}, rules=[NoWallclockInState()])
        assert report.ok
        assert len(report.suppressed) == 1

    def test_standalone_comment_covers_next_code_line(self):
        report = lint({"fl/x.py": """
            import time
            # repro: allow[no-wallclock-in-state] documented epoch
            stamp = time.time()
        """}, rules=[NoWallclockInState()])
        assert report.ok

    def test_multi_line_justification_chains(self):
        report = lint({"fl/x.py": """
            import time
            # repro: allow[no-wallclock-in-state] a justification long
            # enough to need a second comment line before the code.
            stamp = time.time()
        """}, rules=[NoWallclockInState()])
        assert report.ok

    def test_blank_line_breaks_the_chain(self):
        report = lint({"fl/x.py": """
            import time
            # repro: allow[no-wallclock-in-state] detached comment

            stamp = time.time()
        """}, rules=[NoWallclockInState()])
        assert not report.ok
        assert len(report.findings) == 1
        assert len(report.stale_suppressions) == 1

    def test_suppression_is_rule_specific(self):
        report = lint({"fl/x.py": """
            import time
            stamp = time.time()  # repro: allow[no-global-rng] wrong rule
        """}, rules=[NoWallclockInState(), NoGlobalRng()])
        assert len(report.findings) == 1
        assert any("suppresses nothing" in f.message
                   for f in report.stale_suppressions)

    def test_unknown_rule_id_reported(self):
        report = lint({"fl/x.py": """
            x = 1  # repro: allow[no-such-rule] typo
        """})
        assert any("unknown rule id" in f.message
                   for f in report.stale_suppressions)
        assert not report.ok

    def test_stale_allowance_fails_the_gate(self):
        report = lint({"fl/x.py": """
            # repro: allow[no-global-rng] nothing to excuse here
            x = 1
        """})
        assert not report.ok
        assert report.findings == []
        assert len(report.stale_suppressions) == 1

    def test_allow_marker_inside_string_is_inert(self):
        report = lint({"fl/x.py": """
            DOC = "# repro: allow[no-global-rng]"
            x = 1
        """})
        assert report.ok
        assert report.stale_suppressions == []


class TestEngineAndRealTree:
    def test_catalog_has_all_eight_rules(self):
        catalog = rule_catalog()
        assert set(catalog) == {
            "no-global-rng", "no-wallclock-in-state", "hash-field-coverage",
            "serialization-coverage", "sorted-iteration", "pure-work-items",
            "logger-naming", "no-bare-except"}
        assert all(catalog.values())    # every rule states what it protects

    def test_real_tree_lints_clean(self):
        report = run_lint(all_rules())
        assert report.findings == []
        assert report.stale_suppressions == []
        assert report.ok
        # the documented allowances exist and are live, not decorative.
        assert report.suppressed
        assert report.files_scanned > 50

    def test_report_schema(self):
        report = run_lint(all_rules())
        payload = report.to_dict()
        assert payload["version"] == 1
        assert payload["ok"] is True
        assert set(payload) == {"version", "ok", "files_scanned", "rules",
                                "findings", "suppressed",
                                "stale_suppressions"}
        for item in payload["suppressed"]:
            assert set(item) == {"rule", "path", "line", "col", "message"}

    def test_findings_are_sorted_and_renderable(self):
        report = lint({"fl/x.py": """
            import time
            import numpy as np
            b = time.time()
            a = np.random.rand()
        """})
        assert report.findings == sorted(report.findings)
        rendered = report.findings[0].render()
        assert rendered.startswith("fl/x.py:")
        assert "[no-" in rendered


#: one seeded violation per rule, written to a temp tree for the CLI gate.
SEEDED_VIOLATIONS = {
    "no-global-rng": {"fl/x.py": "import numpy as np\nnp.random.seed(0)\n"},
    "no-wallclock-in-state": {"fl/x.py": "import time\nt = time.time()\n"},
    "sorted-iteration": {"fl/x.py": (
        "class A:\n    def f(self):\n"
        "        for c in self.clients:\n            pass\n")},
    "hash-field-coverage": {"experiments/spec.py": (
        "from dataclasses import dataclass\n\n"
        "@dataclass\nclass RunSpec:\n    x: int = 0\n\n"
        "    def to_dict(self):\n        return {}\n")},
    "serialization-coverage": {
        "fl/history.py": textwrap.dedent(HISTORY_FIXTURE),
        "fl/serialization.py": (
            "def history_to_dict(h):\n    return {'records': []}\n\n"
            "def history_from_dict(p):\n    return p['records']\n")},
    "pure-work-items": {"fl/executor.py": (
        "CACHE = {}\n\ndef execute_work_item(item):\n"
        "    CACHE[item] = 1\n")},
    "logger-naming": {"fl/x.py": (
        "import logging\nlog = logging.getLogger('x')\n")},
    "no-bare-except": {"fl/x.py": (
        "try:\n    x = 1\nexcept:\n    pass\n")},
}


class TestCli:
    @staticmethod
    def run_cli(*argv) -> int:
        from repro.__main__ import main
        return main(list(argv))

    def test_lint_clean_on_real_tree(self, capsys):
        rc = self.run_cli("lint")
        out = capsys.readouterr().out
        assert rc == 0
        assert out.splitlines()[-1].startswith("OK: 0 finding(s)")

    def test_lint_json_schema_and_catalog(self, capsys):
        rc = self.run_cli("lint", "--json")
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["version"] == 1
        assert payload["ok"] is True
        assert set(payload["catalog"]) == set(rule_catalog())
        assert sorted(payload["rules"]) == sorted(rule_catalog())

    @pytest.mark.parametrize("rule_id", sorted(SEEDED_VIOLATIONS))
    def test_lint_fails_on_each_seeded_violation(self, rule_id, tmp_path,
                                                 capsys):
        for rel, source in SEEDED_VIOLATIONS[rule_id].items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source)
        rc = self.run_cli("lint", str(tmp_path), "--root", str(tmp_path))
        out = capsys.readouterr().out
        assert rc == 1
        assert f"[{rule_id}]" in out

    def test_lint_json_fails_on_violation(self, tmp_path, capsys):
        bad = tmp_path / "fl" / "x.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import numpy as np\nnp.random.seed(0)\n")
        rc = self.run_cli("lint", str(tmp_path), "--root", str(tmp_path),
                          "--json")
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "no-global-rng"


class TestStrictModeResolution:
    def test_resolve_strict_precedence(self):
        assert resolve_strict(True, False) is True
        assert resolve_strict(None, True) is True
        assert resolve_strict(None, False) is False
        assert resolve_strict(None, None) is strict_enabled()

    def test_set_strict_mode_returns_previous(self):
        previous = set_strict_mode(True)
        try:
            assert strict_enabled()
            assert resolve_strict(None) is True
            assert resolve_strict(False) is False
        finally:
            set_strict_mode(previous)
        assert strict_enabled() is previous

    def test_strict_field_is_hash_invisible(self):
        # strict is a hardening knob, not a behaviour knob: flipping it
        # must not change ExecutionConfig serialisation or RunSpec hashes
        # (byte-identity is proven separately below).
        assert "strict" in ExecutionConfig.HASH_EXCLUDED
        assert (ExecutionConfig(strict=True).to_dict()
                == ExecutionConfig().to_dict())
        base = RunSpec(algorithm="sheterofl", dataset="harbox",
                       constraints=ConstraintSpec(
                           constraints=("computation",)),
                       scale="smoke",
                       execution=ExecutionConfig())
        hardened = RunSpec(algorithm="sheterofl", dataset="harbox",
                           constraints=ConstraintSpec(
                               constraints=("computation",)),
                           scale="smoke",
                           execution=ExecutionConfig(strict=True))
        assert base.content_hash() == hardened.content_hash()


class TestFreezeArrays:
    def test_collect_arrays_walks_nested_payloads(self):
        a, b, c = (np.zeros(2) for _ in range(3))
        payload = {"x": a, "nested": {"y": [b, (c, 1)]}, "other": "str"}
        found = list(collect_arrays(payload))
        assert [arr is original for arr, original
                in zip(found, (a, b, c))] == [True, True, True]

    def test_frozen_arrays_traps_writes_then_restores(self):
        arr = np.zeros(4)
        with frozen_arrays({"w": arr}):
            with pytest.raises(ValueError):
                arr[0] = 1.0
        arr[0] = 1.0    # thawed on exit
        assert arr[0] == 1.0

    def test_already_frozen_arrays_stay_frozen(self):
        arr = np.zeros(4)
        arr.flags.writeable = False
        with frozen_arrays([arr]):
            pass
        assert not arr.flags.writeable    # not ours to thaw

    def test_freeze_arrays_returns_only_flipped(self):
        writeable = np.zeros(2)
        frozen = np.zeros(2)
        frozen.flags.writeable = False
        flipped = freeze_arrays([writeable, frozen])
        try:
            assert flipped == [writeable]
        finally:
            for arr in flipped:
                arr.flags.writeable = True

    def test_nesting_is_safe_for_shared_arrays(self):
        arr = np.zeros(2)
        with frozen_arrays(arr):
            with frozen_arrays(arr):    # inner call flips nothing
                pass
            with pytest.raises(ValueError):
                arr[0] = 1.0    # outer freeze still holds
        arr[0] = 1.0


class TestRngTripwire:
    def test_trips_on_numpy_global_draw(self):
        with pytest.raises(StrictModeViolation, match="numpy"):
            with rng_tripwire("test"):
                np.random.random()    # repro: allow[no-global-rng] the test
                # seeds the very violation the tripwire must catch.

    def test_trips_on_stdlib_global_draw(self):
        import random
        with pytest.raises(StrictModeViolation, match="stdlib"):
            with rng_tripwire("test"):
                random.random()    # repro: allow[no-global-rng] seeded
                # violation under test, as above.

    def test_names_the_context(self):
        with pytest.raises(StrictModeViolation, match="my-run"):
            with rng_tripwire("my-run"):
                np.random.random()    # repro: allow[no-global-rng] seeded
                # violation under test, as above.

    def test_silent_on_derived_generators(self):
        with rng_tripwire("test"):
            rng = np.random.default_rng(0)
            rng.normal(size=8)

    def test_tripwire_itself_is_invisible(self):
        # nesting tripwires must not trip each other: the state reads
        # observe without drawing.
        with rng_tripwire("outer"):
            with rng_tripwire("inner"):
                pass


SMOKE = ConstraintSpec(constraints=("computation",))


def smoke_history(workers=None, executor=None, execution=None) -> str:
    spec = RunSpec(algorithm="sheterofl", dataset="harbox",
                   constraints=SMOKE, scale="smoke", seed=0,
                   execution=execution, workers=workers, executor=executor)
    return execute_spec(spec, cache=None).history.to_json()


class TestStrictByteIdentity:
    """The acceptance bar: strict mode observes, never perturbs."""

    def test_strict_runs_byte_identical_across_executors(self):
        baseline = smoke_history(workers=1, executor="inline")
        previous = set_strict_mode(True)
        try:
            # the tripwire sweep: each strict run would raise
            # StrictModeViolation if any stage touched a global RNG, and
            # ValueError if anything wrote into a frozen broadcast.
            for workers, executor in ((1, "inline"), (2, "thread"),
                                      (2, "process")):
                assert smoke_history(workers=workers,
                                     executor=executor) == baseline, \
                    f"strict {executor}x{workers} diverged"
        finally:
            set_strict_mode(previous)

    def test_strict_event_runtime_byte_identical(self):
        baseline = smoke_history(execution=ExecutionConfig())
        strict = smoke_history(execution=ExecutionConfig(strict=True))
        assert strict == baseline

    def test_strict_buffered_policy_byte_identical(self):
        baseline = smoke_history(
            execution=ExecutionConfig(policy="buffered", buffer_size=3))
        strict = smoke_history(
            execution=ExecutionConfig(policy="buffered", buffer_size=3,
                                      strict=True))
        assert strict == baseline
