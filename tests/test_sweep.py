"""Sweep orchestration: manifests, derived status, sharding, crash/resume.

Pins the ISSUE-9 acceptance criteria:

* **Derived status** — a manifest's per-cell ``done``/``pending`` state
  equals ``{spec: cache.contains(spec)}`` exactly, before, during, and
  after a sweep; deleting one cache entry flips exactly one cell back to
  pending.  Nothing is stored, so nothing can go stale.
* **Sharding partition** — for N in {1, 2, 3, 5} over a >=30-cell grid,
  the K/N shards are pairwise disjoint, their union is the full grid, and
  the assignment is byte-identical across processes (content hashes, not
  ``hash()``, so ``PYTHONHASHSEED`` cannot leak in).
* **Crash/resume** — a sweep SIGKILLed after its first cell lands, then
  re-invoked via ``repro sweep resume``, produces run-cache contents
  (names + bytes) identical to a never-interrupted control sweep; and a
  completed sweep's second run performs zero training (``RUN_COUNT``).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.__main__ import main as cli_main
from repro.constraints import ConstraintSpec
from repro.experiments import (RunCache, RunSpec, Shard, SweepManifest,
                               expand_grid, run_sweep, shard_of,
                               status_rows)
from repro.experiments.runner import execute_specs
from repro.experiments.sweep import MANIFEST_VERSION
from repro.fl import simulation
from repro.fl.history import History, RoundRecord
from repro.telemetry import runtime as telemetry
from repro.telemetry.report import sidecar_wall_seconds

SMOKE = ConstraintSpec(constraints=("computation",))

#: environment for subprocess invocations of ``python -m repro``.
_ENV = dict(os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))


def _smoke_spec(**overrides) -> RunSpec:
    base = dict(algorithm="sheterofl", dataset="harbox", constraints=SMOKE,
                scale="smoke", seed=0)
    base.update(overrides)
    return RunSpec(**base)


def _grid(n_algorithms=2, datasets=("harbox", "ucihar"), seeds=(0,),
          with_baseline=True):
    algorithms = ["sheterofl", "fjord", "fedrolex", "fedepth"][:n_algorithms]
    return expand_grid(algorithms=algorithms, datasets=list(datasets),
                       scale="smoke", seeds=seeds,
                       with_baseline=with_baseline)


def _fake_history(spec: RunSpec) -> History:
    return History(algorithm=spec.algorithm, dataset=spec.dataset,
                   records=[RoundRecord(round_index=0, sim_time_s=1.0,
                                        round_time_s=1.0, train_loss=0.5,
                                        global_accuracy=0.5)])


def _populate(cache: RunCache, specs) -> None:
    """Fabricate valid cache entries without running any simulations."""
    for spec in specs:
        cache.put(spec, _fake_history(spec), num_classes=2)


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
class TestSharding:
    def test_parse(self):
        shard = Shard.parse("2/5")
        assert (shard.index, shard.count) == (2, 5)
        assert shard.label == "2/5"

    @pytest.mark.parametrize("text", ["", "3", "1/2/3", "a/b", "1.5/2"])
    def test_parse_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            Shard.parse(text)

    @pytest.mark.parametrize("index,count", [(-1, 2), (2, 2), (0, 0)])
    def test_rejects_out_of_range(self, index, count):
        with pytest.raises(ValueError):
            Shard(index, count)

    def test_shard_of_rejects_bad_count(self):
        with pytest.raises(ValueError):
            shard_of(_smoke_spec(), 0)

    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_partition_disjoint_and_exhaustive(self, count):
        # >= 30 cells: 3 names x 2 datasets x 5 seeds.
        grid = _grid(n_algorithms=2, seeds=(0, 1, 2, 3, 4))
        assert len(grid) >= 30
        shards = [Shard(k, count) for k in range(count)]
        owned = [[s for s in grid if shard.owns(s)] for shard in shards]
        # Pairwise disjoint...
        for i in range(count):
            hashes_i = {s.content_hash() for s in owned[i]}
            for j in range(i + 1, count):
                assert hashes_i.isdisjoint(
                    s.content_hash() for s in owned[j])
        # ...and jointly exhaustive, preserving multiplicity.
        union = [s for cells in owned for s in cells]
        assert sorted(s.content_hash() for s in union) == \
            sorted(s.content_hash() for s in grid)

    def test_assignment_stable_across_processes(self):
        """No hash-randomization leakage: a fresh interpreter with a
        different PYTHONHASHSEED assigns every cell to the same shard."""
        grid = _grid(n_algorithms=2, seeds=(0, 1, 2, 3, 4))
        local = {spec.content_hash(): shard_of(spec, 5) for spec in grid}
        script = (
            "import json, sys\n"
            "from repro.experiments import RunSpec, shard_of\n"
            "specs = [RunSpec.from_dict(d) for d in json.load(sys.stdin)]\n"
            "print(json.dumps({s.content_hash(): shard_of(s, 5)"
            " for s in specs}))\n")
        for hashseed in ("0", "1", "424242"):
            env = dict(_ENV, PYTHONHASHSEED=hashseed)
            out = subprocess.run(
                [sys.executable, "-c", script],
                input=json.dumps([s.to_dict() for s in grid]),
                capture_output=True, text=True, env=env, check=True)
            assert json.loads(out.stdout) == local


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
class TestExpandGrid:
    def test_includes_baseline_once(self):
        grid = expand_grid(algorithms=["sheterofl", "fedavg_smallest"],
                           datasets=["harbox"], scale="smoke")
        names = [s.algorithm for s in grid]
        assert names.count("fedavg_smallest") == 1

    def test_no_baseline(self):
        grid = _grid(with_baseline=False)
        assert all(s.algorithm != "fedavg_smallest" for s in grid)

    def test_matches_run_suite_cells(self):
        """The grid covers exactly the specs run_suite would execute, so a
        warmed manifest makes figure rendering pure cache hits."""
        grid = expand_grid(algorithms=["sheterofl"], datasets=["harbox"],
                           scale="smoke", seeds=(0, 1))
        expected = {
            RunSpec(algorithm=name, dataset="harbox", constraints=SMOKE,
                    scale="smoke", seed=seed).content_hash()
            for seed in (0, 1)
            for name in ("sheterofl", "fedavg_smallest")}
        assert {s.content_hash() for s in grid} == expected


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
class TestManifest:
    def test_round_trip(self, tmp_path):
        manifest = SweepManifest(name="t", specs=_grid(),
                                 cache_dir=str(tmp_path / "cache"))
        path = manifest.save(tmp_path / "m.json")
        assert SweepManifest.load(path) == manifest

    def test_schema_is_stable(self, tmp_path):
        manifest = SweepManifest(name="t", specs=_grid(),
                                 cache_dir=str(tmp_path / "cache"))
        payload = json.loads(manifest.to_json())
        assert payload["manifest_version"] == MANIFEST_VERSION
        assert set(payload) == {"manifest_version", "name", "cache_dir",
                                "specs"}
        rebuilt = [RunSpec.from_dict(d) for d in payload["specs"]]
        assert [s.content_hash() for s in rebuilt] == \
            [s.content_hash() for s in manifest.specs]

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            SweepManifest(name="t", specs=())

    def test_rejects_duplicates(self):
        spec = _smoke_spec()
        with pytest.raises(ValueError, match="duplicate"):
            SweepManifest(name="t", specs=(spec, spec))

    def test_rejects_version_skew(self, tmp_path):
        manifest = SweepManifest(name="t", specs=_grid())
        payload = manifest.to_dict()
        payload["manifest_version"] = MANIFEST_VERSION + 1
        path = tmp_path / "m.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            SweepManifest.load(path)

    def test_load_missing_or_corrupt(self, tmp_path):
        with pytest.raises(ValueError, match="cannot read"):
            SweepManifest.load(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            SweepManifest.load(bad)


# ----------------------------------------------------------------------
# Derived status (the property test)
# ----------------------------------------------------------------------
class TestDerivedStatus:
    def _contract(self, manifest, cache):
        """status == {spec: cache.contains(spec)}, cell for cell (keyed by
        content hash — specs hold dicts and are unhashable)."""
        mapping = manifest.status(cache=cache).as_mapping()
        assert mapping == {spec.content_hash(): cache.contains(spec)
                           for spec in manifest.specs}
        return mapping

    def test_status_equals_contains_throughout(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        grid = _grid(n_algorithms=3, seeds=(0, 1))
        manifest = SweepManifest(name="t", specs=grid,
                                 cache_dir=str(cache.directory))
        # Before: everything pending.
        assert set(self._contract(manifest, cache).values()) == {False}
        # During: fabricate completion one cell at a time; the derived
        # mapping tracks the cache exactly at every step.
        for index, spec in enumerate(grid):
            cache.put(spec, _fake_history(spec), num_classes=2)
            mapping = self._contract(manifest, cache)
            assert sum(mapping.values()) == index + 1
        # After: everything done.
        status = manifest.status(cache=cache)
        assert status.done_count == status.total == len(grid)
        assert status.pending_specs() == []

    def test_deleting_one_entry_flips_exactly_one_cell(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        grid = _grid(n_algorithms=3, seeds=(0, 1))
        manifest = SweepManifest(name="t", specs=grid,
                                 cache_dir=str(cache.directory))
        _populate(cache, grid)
        victim = grid[len(grid) // 2]
        cache.path_for(victim).unlink()
        mapping = self._contract(manifest, cache)
        assert mapping[victim.content_hash()] is False
        assert sum(not done for done in mapping.values()) == 1
        assert manifest.status(cache=cache).pending_specs() == [victim]

    def test_status_probe_leaves_counters_alone(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        spec = _smoke_spec()
        cache.put(spec, _fake_history(spec), num_classes=2)
        assert cache.contains(spec)
        assert not cache.contains(_smoke_spec(seed=1))
        assert (cache.hits, cache.misses) == (0, 0)

    def test_contains_matches_get_validity(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        spec = _smoke_spec()
        # Corrupt bytes read as absent.
        cache.directory.mkdir(parents=True)
        cache.path_for(spec).write_text("{truncated")
        assert not cache.contains(spec)
        # Version skew reads as absent.
        cache.put(spec, _fake_history(spec), num_classes=2)
        payload = json.loads(cache.path_for(spec).read_text())
        payload["cache_version"] = -1
        cache.path_for(spec).write_text(json.dumps(payload))
        assert not cache.contains(spec)
        # Hash-colliding entry (stored spec != requested) reads as absent.
        other = _smoke_spec(seed=7)
        entry = cache.path_for(other)
        cache.put(other, _fake_history(other), num_classes=2)
        stored = json.loads(entry.read_text())
        stored["spec"]["seed"] = 8
        entry.write_text(json.dumps(stored))
        assert not cache.contains(other)


# ----------------------------------------------------------------------
# Running and resuming
# ----------------------------------------------------------------------
class TestRunSweep:
    def test_runs_pending_then_nothing(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        manifest = SweepManifest(name="t", specs=_grid(n_algorithms=1,
                                                       datasets=("harbox",)),
                                 cache_dir=str(cache.directory))
        report = run_sweep(manifest, cache=cache)
        assert (report.total, report.executed) == (2, 2)
        assert manifest.status(cache=cache).pending_count == 0
        # Second run: pre-filtered to nothing, zero training.
        before = simulation.RUN_COUNT
        again = run_sweep(manifest, cache=cache)
        assert (again.executed, again.already_done) == (0, 2)
        assert simulation.RUN_COUNT == before

    def test_shards_cover_the_grid(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        manifest = SweepManifest(name="t", specs=_grid(n_algorithms=2),
                                 cache_dir=str(cache.directory))
        reports = [run_sweep(manifest, Shard(k, 3), cache=cache)
                   for k in range(3)]
        assert sum(r.total for r in reports) == len(manifest.specs)
        assert manifest.status(cache=cache).pending_count == 0
        # Each shard's second run finds its cells done, not re-executed.
        for k in range(3):
            report = run_sweep(manifest, Shard(k, 3), cache=cache)
            assert report.executed == 0

    def test_on_cell_progress_hook(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        grid = _grid(n_algorithms=1, datasets=("harbox",))
        manifest = SweepManifest(name="t", specs=grid,
                                 cache_dir=str(cache.directory))
        seen = []
        run_sweep(manifest, cache=cache,
                  on_cell=lambda spec, result: seen.append(
                      (spec.content_hash(), result.from_cache)))
        assert [h for h, _ in seen] == [s.content_hash() for s in grid]
        assert all(not from_cache for _, from_cache in seen)


class TestExecuteSpecsCallback:
    def test_inline_order(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        specs = _grid(n_algorithms=1, datasets=("harbox",))
        seen = []
        execute_specs(specs, cache=cache,
                      on_result=lambda spec, res: seen.append(spec))
        assert seen == specs

    def test_pooled_order(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        specs = _grid(n_algorithms=1, datasets=("harbox", "ucihar"))
        seen = []
        execute_specs(specs, cache=cache, workers=2,
                      on_result=lambda spec, res: seen.append(spec))
        assert seen == specs
        assert all(cache.contains(spec) for spec in specs)


# ----------------------------------------------------------------------
# Status rows and sidecar throughput
# ----------------------------------------------------------------------
class TestStatusRows:
    def test_sections_and_totals(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        grid = _grid(n_algorithms=2)
        manifest = SweepManifest(name="t", specs=grid,
                                 cache_dir=str(cache.directory))
        _populate(cache, grid[: len(grid) // 2])
        rows = status_rows(manifest, cache=cache, shards=2)
        by_section = {}
        for row in rows:
            by_section.setdefault(row["section"], []).append(row)
        assert set(by_section) == {"algorithm", "shard", "total"}
        total = by_section["total"][0]
        assert total["cells"] == len(grid)
        assert total["done"] == len(grid) // 2
        assert sum(r["cells"] for r in by_section["shard"]) == len(grid)
        assert sum(r["cells"] for r in by_section["algorithm"]) == len(grid)

    def test_throughput_from_sidecars(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        grid = _grid(n_algorithms=1, datasets=("harbox",))
        manifest = SweepManifest(name="t", specs=grid,
                                 cache_dir=str(cache.directory))
        with telemetry.telemetry_session():
            run_sweep(manifest, cache=cache)
        for spec in grid:
            assert cache.telemetry_path_for(spec).exists()
        total = status_rows(manifest, cache=cache)[-1]
        assert total["wall_s"] is not None and total["wall_s"] > 0
        assert total["cells_per_h"] is not None

    def test_missing_sidecars_are_untimed_not_errors(self, tmp_path):
        cache = RunCache(tmp_path / "cache")
        grid = _grid(n_algorithms=1, datasets=("harbox",))
        manifest = SweepManifest(name="t", specs=grid,
                                 cache_dir=str(cache.directory))
        _populate(cache, grid)  # fabricated entries: no sidecars
        total = status_rows(manifest, cache=cache)[-1]
        assert total["done"] == len(grid)
        assert total["wall_s"] is None


class TestSidecarWallSeconds:
    def test_sums_the_work_spans(self):
        payload = {"telemetry": {"tracer": {"spans": [
            {"name": "prepare_scenario", "duration_s": 0.5},
            {"name": "run_simulation", "duration_s": 2.0},
            {"name": "unrelated", "duration_s": 99.0}]}}}
        assert sidecar_wall_seconds(payload) == 2.5

    @pytest.mark.parametrize("payload", [
        {}, {"telemetry": None}, {"telemetry": {}},
        {"telemetry": {"tracer": {"spans": []}}},
        {"telemetry": {"tracer": {"spans": [{"name": "other",
                                             "duration_s": 1.0}]}}}])
    def test_unrecognisable_payloads_are_none(self, payload):
        assert sidecar_wall_seconds(payload) is None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestSweepCli:
    def _create(self, tmp_path, capsys) -> Path:
        manifest_path = tmp_path / "m.json"
        code = cli_main(["sweep", "create", str(manifest_path),
                         "--algorithms", "sheterofl",
                         "--datasets", "harbox", "--scale", "smoke",
                         "--cache-dir", str(tmp_path / "cache")])
        assert code == 0
        assert "2 cells" in capsys.readouterr().out
        return manifest_path

    def test_create_run_status_resume(self, tmp_path, capsys):
        manifest_path = self._create(tmp_path, capsys)
        assert cli_main(["sweep", "run", str(manifest_path), "-q"]) == 0
        out = capsys.readouterr().out
        assert "2/2 done" in out and "2 executed" in out

        assert cli_main(["sweep", "status", str(manifest_path),
                         "--out", "json", "-q"]) == 0
        rows = json.loads(capsys.readouterr().out)
        total = [r for r in rows if r["section"] == "total"][0]
        assert (total["done"], total["pending"]) == (2, 0)

        before = simulation.RUN_COUNT
        assert cli_main(["sweep", "resume", str(manifest_path), "-q"]) == 0
        assert "0 executed" in capsys.readouterr().out
        assert simulation.RUN_COUNT == before

    def test_sharded_runs_union(self, tmp_path, capsys):
        manifest_path = tmp_path / "m.json"
        cli_main(["sweep", "create", str(manifest_path),
                  "--algorithms", "sheterofl,fjord",
                  "--datasets", "harbox,ucihar", "--scale", "smoke",
                  "--cache-dir", str(tmp_path / "cache"), "-q"])
        for k in range(2):
            assert cli_main(["sweep", "run", str(manifest_path),
                             "--shard", f"{k}/2", "-q"]) == 0
        capsys.readouterr()
        assert cli_main(["sweep", "status", str(manifest_path),
                         "--shards", "2", "--out", "json", "-q"]) == 0
        rows = json.loads(capsys.readouterr().out)
        total = [r for r in rows if r["section"] == "total"][0]
        assert total["pending"] == 0
        shard_rows = [r for r in rows if r["section"] == "shard"]
        assert len(shard_rows) == 2
        assert sum(r["cells"] for r in shard_rows) == total["cells"]

    def test_errors_exit_2(self, tmp_path, capsys):
        assert cli_main(["sweep", "run", str(tmp_path / "missing.json"),
                         "-q"]) == 2
        manifest_path = self._create(tmp_path, capsys)
        assert cli_main(["sweep", "run", str(manifest_path),
                         "--shard", "5/2", "-q"]) == 2
        assert cli_main(["sweep", "-q"]) == 2


# ----------------------------------------------------------------------
# Kill and resume (the crash harness)
# ----------------------------------------------------------------------
def _run_entries(cache_dir: Path) -> dict[str, bytes]:
    """Run-cache entries only (names -> bytes), excluding telemetry
    sidecars: a kill can land between the run entry and its sidecar, so
    sidecar presence legitimately differs between an interrupted-and-
    resumed sweep and an uninterrupted control."""
    return {path.name: path.read_bytes()
            for path in sorted(cache_dir.iterdir())
            if path.name.endswith(".json")
            and not path.name.endswith(".telemetry.json")
            and not path.name.startswith(".")}


class TestKillAndResume:
    def _make_manifest(self, tmp_path: Path, cache_dir: Path) -> Path:
        manifest = SweepManifest(
            name="kill", specs=_grid(n_algorithms=2),
            cache_dir=str(cache_dir))
        return manifest.save(tmp_path / "kill.manifest.json")

    def _sweep_argv(self, manifest_path: Path) -> list[str]:
        return [sys.executable, "-m", "repro", "sweep", "run",
                str(manifest_path), "--no-telemetry", "-q"]

    def test_sigkilled_sweep_resumes_byte_identical(self, tmp_path):
        control_dir = tmp_path / "control-cache"
        victim_dir = tmp_path / "victim-cache"

        # Control: the same grid, never interrupted.
        control_manifest = self._make_manifest(tmp_path / "control",
                                               control_dir)
        subprocess.run(self._sweep_argv(control_manifest), env=_ENV,
                       check=True, capture_output=True, timeout=300)
        control = _run_entries(control_dir)
        assert len(control) == 6

        # Victim: SIGKILL as soon as the first cell lands.
        victim_manifest = self._make_manifest(tmp_path / "victim",
                                              victim_dir)
        victim = subprocess.Popen(self._sweep_argv(victim_manifest),
                                  env=_ENV, stdout=subprocess.DEVNULL,
                                  stderr=subprocess.DEVNULL)
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if victim_dir.is_dir() and _run_entries(victim_dir):
                    break
                if victim.poll() is not None:
                    pytest.fail("sweep finished before it could be killed")
                time.sleep(0.002)
            else:
                pytest.fail("no cell landed within the deadline")
            os.kill(victim.pid, signal.SIGKILL)
            assert victim.wait(timeout=30) == -signal.SIGKILL
        finally:
            if victim.poll() is None:
                victim.kill()
        partial = _run_entries(victim_dir)
        assert 0 < len(partial) < len(control)

        # Resume: literally `sweep resume`, no special flags.
        resume = subprocess.run(
            [sys.executable, "-m", "repro", "sweep", "resume",
             str(victim_manifest), "--no-telemetry", "-q"],
            env=_ENV, check=True, capture_output=True, text=True,
            timeout=300)
        assert "done" in resume.stdout

        # Byte-identical run-cache contents: same names, same bytes.
        assert _run_entries(victim_dir) == control
