"""Engine perf round 2 contracts: fused attention, vectorised col2im, and
cached step plans.

Three invariants pinned here:

* the fused :func:`repro.autograd.attention` op matches the composed
  matmul/softmax/dropout/matmul formulation in outputs, gradients and
  dropout RNG stream;
* the vectorised ``_col2im`` adjoint matches the reference scatter loop for
  overlapping, tiling and gapped (stride > kernel) geometries;
* step plans are pure derived state — reused across steps, keyed by
  (model signature, batch shape), and **byte-invisible**: histories are
  identical with plan caching on or off, for every executor.
"""

import numpy as np
import pytest

from repro import autograd as ag
from repro import nn
from repro.autograd import Tensor
from repro.autograd import functional as F
from repro.autograd import plan
from repro.autograd.grad_check import check_gradients, compare_gradients
from repro.experiments.runner import execute_spec
from repro.experiments.spec import ConstraintSpec, RunSpec


@pytest.fixture(autouse=True)
def _plan_cache_reset():
    """Each test starts with caching on and an empty thread registry."""
    plan.set_plan_caching(True)
    plan.clear_thread_plans()
    yield
    plan.set_plan_caching(True)
    plan.clear_thread_plans()


def _t(shape, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


def composed_attention(q, k, v, scale, rng=None, p=0.0, training=False):
    """The pre-fusion five-node chain, as ``nn/attention.py`` used to
    build it (scale applied as a python float so both formulations run in
    the inputs' dtype)."""
    scores = ag.matmul(q, ag.transpose(k, (0, 1, 3, 2))) * float(scale)
    weights = ag.softmax(scores)
    if training and p > 0.0:
        weights = ag.dropout(weights, p, training=True, rng=rng)
    return ag.matmul(weights, v)


class TestFusedAttention:
    SHAPE = (2, 3, 5, 4)  # (B, H, S, Dh)

    def test_matches_composed_reference(self):
        q, k, v = _t(self.SHAPE, 1), _t(self.SHAPE, 2), _t(self.SHAPE, 3)
        scale = 1.0 / np.sqrt(self.SHAPE[-1])
        compare_gradients(
            lambda: (ag.attention(q, k, v, scale) ** 2).sum(),
            lambda: (composed_attention(q, k, v, scale) ** 2).sum(),
            [q, k, v], atol=1e-9, rtol=1e-9)

    def test_matches_composed_reference_with_dropout(self):
        q, k, v = _t(self.SHAPE, 4), _t(self.SHAPE, 5), _t(self.SHAPE, 6)
        scale = 1.0 / np.sqrt(self.SHAPE[-1])
        # Same seed => both formulations must draw the identical mask.
        compare_gradients(
            lambda: (ag.attention(q, k, v, scale,
                                  rng=np.random.default_rng(99), p=0.4,
                                  training=True) ** 2).sum(),
            lambda: (composed_attention(q, k, v, scale,
                                        rng=np.random.default_rng(99), p=0.4,
                                        training=True) ** 2).sum(),
            [q, k, v], atol=1e-9, rtol=1e-9)

    def test_dropout_rng_stream_parity(self):
        """The fused op consumes exactly the draws dropout() would, so a
        layer's mask stream is unchanged by fusion (reseed semantics)."""
        q, k, v = _t(self.SHAPE, 7), _t(self.SHAPE, 8), _t(self.SHAPE, 9)
        r_fused, r_composed = (np.random.default_rng(5),
                               np.random.default_rng(5))
        ag.attention(q, k, v, 0.5, rng=r_fused, p=0.3, training=True)
        composed_attention(q, k, v, 0.5, rng=r_composed, p=0.3, training=True)
        assert (r_fused.bit_generator.state
                == r_composed.bit_generator.state)

    def test_numerical_gradients(self):
        q, k, v = _t(self.SHAPE, 10), _t(self.SHAPE, 11), _t(self.SHAPE, 12)
        check_gradients(
            lambda: (ag.attention(q, k, v, 0.5) ** 2).sum(), [q, k, v])

    def test_eval_mode_ignores_dropout(self):
        q, k, v = _t(self.SHAPE, 13), _t(self.SHAPE, 14), _t(self.SHAPE, 15)
        rng = np.random.default_rng(0)
        a = ag.attention(q, k, v, 0.5, rng=rng, p=0.5, training=False)
        b = ag.attention(q, k, v, 0.5)
        assert np.array_equal(a.data, b.data)
        # and no draws were consumed
        assert rng.bit_generator.state == np.random.default_rng(0).bit_generator.state

    def test_training_dropout_requires_rng(self):
        q, k, v = _t(self.SHAPE, 16), _t(self.SHAPE, 17), _t(self.SHAPE, 18)
        with pytest.raises(ValueError, match="Generator"):
            ag.attention(q, k, v, 0.5, p=0.5, training=True)

    def test_float32_stays_float32(self):
        """The composed chain silently promoted to float64 through the 0-d
        scale tensor (NEP 50); the fused op must not."""
        rng = np.random.default_rng(0)
        q, k, v = (Tensor(rng.standard_normal(self.SHAPE).astype(np.float32),
                          requires_grad=True) for _ in range(3))
        out = ag.attention(q, k, v, 1.0 / np.sqrt(4))
        assert out.data.dtype == np.float32
        out.sum().backward()
        assert q.grad.dtype == np.float32

    def test_single_tape_node(self):
        q, k, v = _t(self.SHAPE, 19), _t(self.SHAPE, 20), _t(self.SHAPE, 21)
        out = ag.attention(q, k, v, 0.5)
        assert out._parents == (q, k, v)
        assert len(out._topo_order()) == 4  # out + the three leaves


def col2im_reference(cols, x_shape, kh, kw, stride):
    """The seed engine's scatter loop, kept as an independent reference."""
    n, c, h, w = x_shape
    oh = (h - kh) // stride + 1
    ow = (w - kw) // stride + 1
    x = np.zeros(x_shape, dtype=cols.dtype)
    for i in range(kh):
        for j in range(kw):
            x[:, :, i:i + stride * oh:stride,
              j:j + stride * ow:stride] += cols[:, :, i, j]
    return x


class TestCol2Im:
    GEOMETRIES = [
        # (h, w, kh, kw, stride) — overlapping, tiling, gapped, ragged
        (8, 8, 3, 3, 1),     # classic overlapping 3x3
        (9, 9, 3, 3, 2),     # overlapping with stride
        (8, 8, 2, 2, 2),     # exact tiling (pure assignment path)
        (10, 10, 3, 3, 3),   # stride == kernel, ragged tail
        (10, 10, 2, 2, 3),   # stride > kernel: gaps must stay zero
        (11, 7, 5, 3, 2),    # rectangular kernel, odd sizes
        (7, 9, 2, 3, 1),     # rectangular overlapping
        (6, 6, 1, 1, 2),     # 1x1 kernel with stride (gapped)
    ]

    @pytest.mark.parametrize("h,w,kh,kw,stride", GEOMETRIES)
    def test_matches_reference_loop(self, h, w, kh, kw, stride):
        oh = (h - kh) // stride + 1
        ow = (w - kw) // stride + 1
        rng = np.random.default_rng(h * 100 + w * 10 + stride)
        cols = rng.standard_normal((2, 3, kh, kw, oh, ow)).astype(np.float32)
        fast = F._col2im(cols, (2, 3, h, w), kh, kw, stride)
        ref = col2im_reference(cols, (2, 3, h, w), kh, kw, stride)
        np.testing.assert_allclose(fast, ref, atol=1e-5, rtol=1e-5)
        # Disjoint-window geometries have one contribution per pixel, so
        # no summation is reordered: those must be bit-exact.
        if stride >= kh and stride >= kw:
            assert np.array_equal(fast, ref)

    def test_float64(self):
        cols = np.random.default_rng(0).standard_normal((1, 2, 3, 3, 6, 6))
        fast = F._col2im(cols, (1, 2, 8, 8), 3, 3, 1)
        ref = col2im_reference(cols, (1, 2, 8, 8), 3, 3, 1)
        np.testing.assert_allclose(fast, ref, atol=1e-12, rtol=1e-12)


class TestStepPlans:
    @staticmethod
    def _train_step(params, conv, lin, xb, yb, opt):
        h = ag.relu(conv(Tensor(xb)))
        logits = lin(h.reshape(xb.shape[0], -1))
        opt.zero_grad()
        loss = ag.cross_entropy(logits, yb)
        loss.backward()
        opt.step()
        return loss

    def _make_model(self, seed=0):
        mrng = np.random.default_rng(seed)
        conv = nn.Conv2d(3, 8, 3, mrng, padding=1)
        lin = nn.Linear(8 * 8 * 8, 4, mrng)
        return conv, lin, conv.parameters() + lin.parameters()

    def test_same_plan_object_across_steps(self):
        conv, lin, params = self._make_model()
        opt = nn.SGD(params, lr=0.05)
        drng = np.random.default_rng(1)
        key = ("cell", tuple(p.data.shape for p in params))
        seen = []
        for _ in range(4):
            xb = drng.standard_normal((8, 3, 8, 8)).astype(np.float32)
            yb = drng.integers(0, 4, size=8)
            with plan.step(key, xb.shape) as p:
                self._train_step(params, conv, lin, xb, yb, opt)
            seen.append(p)
        assert all(p is seen[0] for p in seen)
        assert seen[0].steps == 4
        # first step records the schedule; every later one replays it
        assert seen[0].schedule_hits == 3

    def test_distinct_plans_across_shapes_and_keys(self):
        conv, lin, params = self._make_model()
        opt = nn.SGD(params, lr=0.05)
        drng = np.random.default_rng(2)
        key = ("cell", tuple(p.data.shape for p in params))
        plans = {}
        for batch in (8, 4, 8):
            xb = drng.standard_normal((batch, 3, 8, 8)).astype(np.float32)
            yb = drng.integers(0, 4, size=batch)
            with plan.step(key, xb.shape) as p:
                self._train_step(params, conv, lin, xb, yb, opt)
            plans[batch] = p
        assert plans[8] is not plans[4]
        with plan.step(("other-cell",), (8, 3, 8, 8)) as p_other:
            pass
        assert p_other is not plans[8]
        assert len(plan.thread_plans()) == 3

    def test_workspace_buffers_recycled(self):
        with plan.step("ws-demo", (1,)) as p:
            first = plan.workspace((4, 4), np.float32)
            second = plan.workspace((4, 4), np.float32)
            assert first is not second  # same shape, same step: distinct
        with plan.step("ws-demo", (1,)) as p2:
            assert p2 is p
            assert plan.workspace((4, 4), np.float32) is first
            assert plan.workspace((4, 4), np.float32) is second

    def test_workspace_without_active_step_is_fresh(self):
        a = plan.workspace((3, 3), np.float32)
        b = plan.workspace((3, 3), np.float32)
        assert a is not b

    def test_disabled_caching_is_a_no_op(self):
        plan.set_plan_caching(False)
        with plan.step("k", (1,)) as p:
            assert p is None
        assert len(plan.thread_plans()) == 0

    def test_nested_steps_pass_through(self):
        with plan.step("outer", (1,)) as outer:
            with plan.step("inner", (1,)) as inner:
                assert inner is None
            assert plan.current_step() is outer

    def test_training_identical_with_and_without_plans(self):
        """Same seeds, plans on vs off: every parameter byte-identical."""
        def run(enabled):
            plan.set_plan_caching(enabled)
            plan.clear_thread_plans()
            conv, lin, params = self._make_model(seed=3)
            opt = nn.SGD(params, lr=0.05, momentum=0.9)
            drng = np.random.default_rng(4)
            key = ("cell", tuple(p.data.shape for p in params))
            for _ in range(5):
                xb = drng.standard_normal((8, 3, 8, 8)).astype(np.float32)
                yb = drng.integers(0, 4, size=8)
                with plan.step(key, xb.shape):
                    self._train_step(params, conv, lin, xb, yb, opt)
            return [p.data.copy() for p in params]

        cached, plain = run(True), run(False)
        for a, b in zip(cached, plain):
            assert np.array_equal(a, b)

    def test_model_plan_key_structural(self):
        conv1, lin1, _ = self._make_model(seed=0)
        conv2, lin2, _ = self._make_model(seed=9)  # same shapes, new weights
        assert (plan.model_plan_key(conv1) == plan.model_plan_key(conv2))
        small = nn.Conv2d(3, 4, 3, np.random.default_rng(0))
        assert plan.model_plan_key(conv1) != plan.model_plan_key(small)

    def test_model_plan_key_sees_trainable_mask(self):
        """Freezing a parameter changes the backward graph, so it must
        change the plan key (FeDepth slides its trainable segment across
        rounds without ever changing the state dict)."""
        conv1, _, _ = self._make_model(seed=0)
        conv2, _, _ = self._make_model(seed=0)
        assert plan.model_plan_key(conv1) == plan.model_plan_key(conv2)
        conv2.weight.requires_grad = False
        assert plan.model_plan_key(conv1) != plan.model_plan_key(conv2)


SMOKE = ConstraintSpec(constraints=("computation",))


def _smoke_history(algorithm, workers=None, executor=None) -> str:
    spec = RunSpec(algorithm=algorithm, dataset="harbox", constraints=SMOKE,
                   scale="smoke", seed=0, workers=workers, executor=executor)
    return execute_spec(spec, cache=None).history.to_json()


class TestPlanCacheHistoryIdentity:
    """Plan caching must be invisible in results for every executor."""

    # fedepth is the adversarial case: its sliding trainable segment means
    # the same model signature covers many distinct backward graphs, which
    # once collided in the schedule cache and silently dropped gradients.
    @pytest.mark.parametrize("algorithm", ["sheterofl", "fedproto", "fedepth"])
    def test_history_identical_plan_on_off(self, algorithm):
        plan.set_plan_caching(False)
        plan.clear_thread_plans()
        plain = _smoke_history(algorithm)
        plan.set_plan_caching(True)
        plan.clear_thread_plans()
        cached = _smoke_history(algorithm)
        assert cached == plain

    def test_history_identical_across_executors_with_plans(self):
        plan.set_plan_caching(False)
        reference = _smoke_history("sheterofl")
        plan.set_plan_caching(True)
        for executor, workers in (("inline", 1), ("thread", 1),
                                  ("thread", 2), ("process", 2)):
            plan.clear_thread_plans()
            assert _smoke_history("sheterofl", workers=workers,
                                  executor=executor) == reference, \
                f"history drifted for executor={executor} workers={workers}"
