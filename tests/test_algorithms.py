"""Integration tests: every algorithm trains, aggregates and improves."""

import numpy as np
import pytest

from repro.data import load_dataset, partition_dataset
from repro.fl import LocalTrainConfig, SimulationConfig, run_simulation
from repro.hw import sample_fleet
from repro.models import build_model
from repro.algorithms import (ALGORITHMS, MHFL_ALGORITHMS, get_algorithm,
                              algorithms_by_level, assign_levels_uniformly,
                              WIDTH_LEVELS)


@pytest.fixture(scope="module")
def task():
    ds = load_dataset("harbox", seed=0, num_users=16, samples_per_user=16,
                      test_size=120)
    fleet = sample_fleet(16, seed=1)
    shards = partition_dataset(ds, 16, seed=2)
    return ds, fleet, shards


def _build(name, task, arch="har_cnn", **algo_kwargs):
    ds, fleet, shards = task
    cls = ALGORITHMS[name]
    base = build_model(arch, num_classes=ds.num_classes, seed=0,
                       **cls.base_model_overrides)
    pool = cls.build_pool(base)
    clients = assign_levels_uniformly(pool, fleet, ds, shards)
    if cls.level == "homogeneous":
        for ctx in clients:
            ctx.entry = pool.smallest
    config = LocalTrainConfig(batch_size=16, local_epochs=1, max_batches=3)
    return cls(base, ds, clients, train_config=config, pool=pool,
               **algo_kwargs)


class TestRegistry:
    def test_all_nine_registered(self):
        assert len(ALGORITHMS) == 9
        assert len(MHFL_ALGORITHMS) == 8

    def test_levels_partition(self):
        assert sorted(algorithms_by_level("width")) == \
            ["fedrolex", "fjord", "sheterofl"]
        assert sorted(algorithms_by_level("depth")) == \
            ["depthfl", "fedepth", "inclusivefl"]
        assert sorted(algorithms_by_level("topology")) == ["fedet", "fedproto"]
        assert algorithms_by_level("homogeneous") == ["fedavg_smallest"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_algorithm("fedsgd")
        with pytest.raises(ValueError):
            algorithms_by_level("quantum")


@pytest.mark.parametrize("name", sorted(ALGORITHMS))
class TestEveryAlgorithm:
    def test_runs_and_records(self, name, task):
        algo = _build(name, task)
        sim = SimulationConfig(num_rounds=4, sample_ratio=0.25, eval_every=2,
                               seed=0)
        history = run_simulation(algo, sim)
        assert len(history.records) == 4
        assert history.total_sim_time_s > 0
        assert 0.0 <= history.final_accuracy <= 1.0
        assert len(history.final_device_accuracies) > 0

    def test_round_time_positive(self, name, task):
        algo = _build(name, task)
        ctx = next(iter(algo.clients.values()))
        assert algo.client_round_time_s(ctx) > 0


class TestAggregationSemantics:
    def test_sheterofl_only_touched_coords_change(self, task):
        algo = _build("sheterofl", task)
        before = {k: v.copy() for k, v in algo.global_state.items()}
        rng = np.random.default_rng(0)
        # One sampled client at x0.25: only the prefix block may change.
        small_id = next(cid for cid, ctx in algo.clients.items()
                        if ctx.entry.overrides.get("width_mult") == 0.25)
        algo.run_round(0, [small_id], rng)
        name = "stages.3.0.conv.weight"
        mult = 0.25
        out_dim = algo.global_state[name].shape[0]
        cut = max(1, int(round(out_dim * mult)))
        np.testing.assert_array_equal(algo.global_state[name][cut:],
                                      before[name][cut:])
        assert not np.array_equal(algo.global_state[name][:cut],
                                  before[name][:cut])

    def test_fedrolex_window_advances(self, task):
        algo = _build("fedrolex", task)
        assert algo.rolling_shift(0) == 0
        assert algo.rolling_shift(7) == 7

    def test_fjord_samples_within_budget(self, task):
        algo = _build("fjord", task)
        rng = np.random.default_rng(0)
        ctx = next(ctx for ctx in algo.clients.values()
                   if ctx.entry.overrides.get("width_mult") == 0.5)
        widths = {algo.client_overrides(ctx, r, rng)["width_mult"]
                  for r in range(30)}
        assert widths <= {0.25, 0.5}
        assert len(widths) > 1  # actually samples

    def test_depthfl_variant_space_has_all_heads(self, task):
        ds, _, _ = task
        cls = ALGORITHMS["depthfl"]
        base = build_model("har_cnn", num_classes=ds.num_classes, seed=0,
                           **cls.base_model_overrides)
        for overrides in cls.variant_space(base).values():
            assert overrides["head_mode"] == "all"

    def test_fedepth_uploads_only_segment(self, task):
        algo = _build("fedepth", task)
        ctx = next(ctx for ctx in algo.clients.values()
                   if ctx.entry.key == "seg1")
        rng = np.random.default_rng(0)
        model, _ = algo.build_client_model(ctx, round_index=0, rng=rng)
        keep = algo.upload_filter(model, ctx)
        stage_names = {n for n in keep if n.startswith("stages.")}
        stages_present = {n.split(".")[1] for n in stage_names}
        assert len(stages_present) == 1  # exactly one stage uploaded

    def test_fedepth_segment_rotates(self, task):
        algo = _build("fedepth", task)
        ctx = next(ctx for ctx in algo.clients.values()
                   if ctx.entry.key == "seg1")
        segments = {tuple(algo._segment_stages(ctx, r)) for r in range(8)}
        assert len(segments) > 1

    def test_fedavg_requires_homogeneous(self, task):
        ds, fleet, shards = task
        cls = ALGORITHMS["fedavg_smallest"]
        base = build_model("har_cnn", num_classes=ds.num_classes, seed=0)
        pool = cls.build_pool(base)
        clients = assign_levels_uniformly(pool, fleet, ds, shards)  # mixed!
        algo = cls(base, ds, clients, pool=pool)
        with pytest.raises(ValueError, match="homogeneous"):
            algo.evaluate_global()


class TestTopologyAlgorithms:
    def test_fedproto_personal_models_persist(self, task):
        algo = _build("fedproto", task)
        rng = np.random.default_rng(0)
        algo.run_round(0, [0, 1], rng)
        model_0 = algo._personal[0]
        algo.run_round(1, [0], rng)
        assert algo._personal[0] is model_0

    def test_fedproto_prototypes_update(self, task):
        algo = _build("fedproto", task)
        rng = np.random.default_rng(0)
        assert not algo._proto_valid.any()
        algo.run_round(0, [0, 1, 2, 3], rng)
        assert algo._proto_valid.any()
        assert np.abs(algo.global_protos).sum() > 0

    def test_fedproto_payload_is_prototypes(self, task):
        algo = _build("fedproto", task)
        ctx = next(iter(algo.clients.values()))
        down, up = algo.client_payload_bytes(ctx)
        assert down == algo.global_protos.nbytes
        assert up < ctx.entry.stats.param_bytes  # far cheaper than weights

    def test_fedet_server_model_is_largest(self, task):
        algo = _build("fedet", task)
        sizes = [algo.base_model.variant(**ov).num_parameters()
                 for ov in algo.variant_space(algo.base_model).values()]
        assert algo.server_model.num_parameters() == max(sizes)

    def test_fedet_consensus_formed(self, task):
        algo = _build("fedet", task)
        rng = np.random.default_rng(0)
        algo.run_round(0, [0, 1], rng)
        assert algo._consensus is not None
        assert algo._consensus.shape == (len(algo.x_public),
                                         algo.dataset.num_classes)
        np.testing.assert_allclose(algo._consensus.sum(axis=1), 1.0,
                                   rtol=1e-4)

    def test_topology_variant_space_families(self, task):
        ds, _, _ = task
        base = build_model("resnet18", num_classes=ds.num_classes, seed=0)
        space = ALGORITHMS["fedproto"].variant_space(base)
        assert set(space) == {"resnet18", "resnet34", "resnet50", "resnet101"}
        # Fallback for family-less architectures.
        text = build_model("transformer", num_classes=4, seed=0)
        fallback = ALGORITHMS["fedproto"].variant_space(text)
        assert len(fallback) == len(WIDTH_LEVELS)


class TestLearning:
    @pytest.mark.parametrize("name", ["sheterofl", "fedepth", "depthfl"])
    def test_improves_over_initial(self, name, task):
        ds, fleet, shards = task
        cls = ALGORITHMS[name]
        base = build_model("har_cnn", num_classes=ds.num_classes, seed=0,
                           **cls.base_model_overrides)
        pool = cls.build_pool(base)
        clients = assign_levels_uniformly(pool, fleet, ds, shards)
        config = LocalTrainConfig(batch_size=8, local_epochs=2, max_batches=4)
        algo = cls(base, ds, clients, train_config=config, pool=pool)
        initial = algo.evaluate_global()
        sim = SimulationConfig(num_rounds=25, sample_ratio=0.4, eval_every=5,
                               seed=0)
        history = run_simulation(algo, sim)
        # Chance on harbox is 0.2; all three must clearly beat it and their
        # own initialisation (verified margins: >=0.41 at these settings).
        assert history.best_accuracy > initial + 0.05
        assert history.best_accuracy > 0.3

    def test_early_stop_at_accuracy(self, task):
        algo = _build("fedepth", task)
        # Target re-anchored when per-client seeds moved to the derived
        # (run_seed, round, client_id) streams: the old 0.3 only triggered
        # at round 37/40 and the new (statistically equivalent) trajectory
        # plateaus just under it; 0.26 is crossed decisively by round ~10.
        sim = SimulationConfig(num_rounds=40, sample_ratio=0.3, eval_every=2,
                               seed=0, stop_at_accuracy=0.26)
        history = run_simulation(algo, sim)
        assert len(history.records) < 40
