"""Smoke-scale integration tests: every table/figure harness produces rows."""

import pytest

from repro.experiments import (get_scale, run_one, run_suite, format_table,
                               format_radar, base_arch_for,
                               resolve_target_accuracy)
from repro.experiments import scales
from repro.constraints import ConstraintSpec
from repro.fl import History, RoundRecord


class TestScales:
    def test_presets_exist(self):
        for name in ("smoke", "demo", "paper"):
            scale = get_scale(name)
            assert scale.num_rounds > 0
            for ds in ("cifar10", "cifar100", "agnews", "stackoverflow",
                       "harbox", "ucihar"):
                assert scale.clients_for(ds) >= 1

    def test_paper_scale_matches_section_v(self):
        paper = get_scale("paper")
        assert paper.num_clients == {"cifar10": 100, "cifar100": 100,
                                     "agnews": 50, "stackoverflow": 500,
                                     "harbox": 100, "ucihar": 30}
        assert paper.num_rounds == 1000
        assert paper.sample_ratio == 0.1

    def test_unknown_scale(self):
        with pytest.raises(ValueError):
            get_scale("galactic")


class TestMapping:
    def test_table2_mapping(self):
        assert base_arch_for("cifar100", "width") == "resnet101"
        assert base_arch_for("cifar10", "depth") == "mobilenet_v2"
        assert base_arch_for("stackoverflow", "topology") == "albert_base"
        assert base_arch_for("agnews", "width") == "transformer"

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            base_arch_for("mnist", "width")


class TestReporting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": None}, {"a": 22.5, "b": "x"}]
        text = format_table(rows, title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-" in text and "22.5" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_radar_normalises(self):
        rows = [{"algorithm": "a", "acc": 0.2, "time": 10.0},
                {"algorithm": "b", "acc": 0.8, "time": 50.0}]
        text = format_radar(rows, ["acc", "time"],
                            higher_better={"acc": True, "time": False})
        # Best-on-axis scores 1: b on acc, a on time (inverted axis).
        row_a = next(l for l in text.splitlines() if l.split()[:1] == ["a"])
        row_b = next(l for l in text.splitlines() if l.split()[:1] == ["b"])
        assert row_a.split() == ["a", "0", "1"]
        assert row_b.split() == ["b", "1", "0"]


class TestTargetResolution:
    def test_target_between_chance_and_best(self):
        h = History(algorithm="a", dataset="d")
        h.append(RoundRecord(0, 1.0, 1.0, 0.5, global_accuracy=0.6))
        target = resolve_target_accuracy([h], num_classes=10)
        assert 0.1 < target < 0.6


class TestHarnesses:
    """Every artifact's run() yields well-formed rows at smoke scale."""

    def test_table1(self):
        from repro.experiments import table1
        rows = table1.run(scale="smoke")
        assert {r["method"] for r in rows} == \
            {"SHeteroFL", "DepthFL", "FedRolex", "FeDepth"}
        for row in rows:
            assert row["params_M"] > 0 and row["memory_MB"] > 0

    def test_table1_memory_pattern(self):
        from repro.experiments import table1
        rows = {r["method"]: r for r in table1.run(scale="paper")}
        assert rows["DepthFL"]["memory_MB"] > rows["SHeteroFL"]["memory_MB"]
        assert rows["FeDepth"]["memory_MB"] < rows["DepthFL"]["memory_MB"]

    def test_table2(self):
        from repro.experiments import table2
        rows = table2.run()
        assert len(rows) == 8
        assert {r["hetero"] for r in rows} == {"width", "depth", "topology"}

    def test_table3(self):
        from repro.experiments import table3
        rows = table3.run()
        assert {r["device"] for r in rows} == {
            "jetson_orin_nx", "jetson_tx2_nx", "jetson_nano",
            "raspberry_pi_4b"}

    def test_fig3_pool_monotone(self):
        from repro.experiments import fig3
        rows = fig3.run(scale="smoke")
        for method in ("fjord", "sheterofl", "fedrolex"):
            series = [r for r in rows if r["method"] == method]
            params = [r["params_M"] for r in series]
            assert params == sorted(params, reverse=True)

    def test_fig4_smoke(self):
        from repro.experiments import fig4
        rows = fig4.run(scale="smoke", datasets=["harbox"],
                        algorithms=["sheterofl", "fedepth"])
        assert len(rows) == 2
        for row in rows:
            assert 0.0 <= row["global_acc"] <= 1.0
            assert row["effectiveness"] is not None

    def test_fig5_smoke(self):
        from repro.experiments import fig5
        rows = fig5.run(scale="smoke", datasets=["harbox"],
                        algorithms=["fjord"])
        assert rows[0]["algorithm"] == "fjord"

    def test_fig6_default_datasets(self):
        from repro.experiments import fig6
        assert fig6.MEMORY_DATASETS == ["cifar100", "stackoverflow"]

    def test_fig7_smoke(self):
        from repro.experiments import fig7
        rows = fig7.run(scale="smoke", dataset="harbox",
                        algorithms=["sheterofl"],
                        combos=[("memory",), ("memory", "communication")])
        labels = {r["constraints"] for r in rows}
        assert labels == {"mem", "mem+comm"}

    def test_fig8_smoke(self):
        from repro.experiments import fig8
        rows = fig8.run(scale="smoke", datasets=["cifar10"],
                        algorithms=["sheterofl"])
        assert {r["partition"] for r in rows} == {"iid", "niid-0.5", "niid-5"}

    def test_fig9_counts(self):
        from repro.experiments import fig9
        assert fig9.client_counts_for("paper") == [100, 200, 500]
        rows = fig9.run(scale="smoke", algorithms=["sheterofl"],
                        client_counts=[4, 8])
        assert {r["clients"] for r in rows} == {4, 8}

    def test_fig1_radar(self):
        from repro.experiments import fig1
        rows = fig1.run(scale="smoke", dataset="harbox")
        assert rows  # fig1 reuses fig4 rows


class TestRunnerEndToEnd:
    def test_run_one_smoke(self):
        spec = ConstraintSpec(constraints=("computation",))
        result = run_one("sheterofl", "harbox", spec, scale="smoke", seed=0)
        assert 0.0 <= result.final_accuracy <= 1.0
        assert result.history.total_sim_time_s > 0

    def test_run_suite_shares_baseline(self):
        spec = ConstraintSpec(constraints=("computation",))
        summaries = run_suite(["sheterofl", "fjord"], "harbox", spec,
                              scale="smoke", seed=0)
        assert len(summaries) == 2
        assert all(s.effectiveness is not None for s in summaries)

    def test_dirichlet_partition_run(self):
        spec = ConstraintSpec(constraints=("computation",))
        result = run_one("sheterofl", "cifar10", spec, scale="smoke",
                         partition_scheme="dirichlet", alpha=0.5)
        assert result.final_accuracy >= 0.0
