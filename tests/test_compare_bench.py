"""Tests for results/compare_bench.py: the bench-gate diff tool."""

import importlib.util
from pathlib import Path

import pytest

_SPEC = importlib.util.spec_from_file_location(
    "compare_bench",
    Path(__file__).resolve().parent.parent / "results" / "compare_bench.py")
compare_bench = importlib.util.module_from_spec(_SPEC)
_SPEC.loader.exec_module(compare_bench)


class TestCompare:
    def test_regression_detected(self):
        old = {"runs": {"base": {"results": {"matmul": {"ops_per_sec": 100.0}}}}}
        new = {"runs": {"base": {"results": {"matmul": {"ops_per_sec": 50.0}}}}}
        report, regressions, skipped = compare_bench.compare(old, new, 0.2)
        assert len(report) == 1 and len(regressions) == 1
        assert skipped == []

    def test_one_sided_ops_warn_and_skip(self):
        """An op present in only one file is reported, never compared —
        renaming or adding a benchmark must not fail the gate."""
        old = {"results": {"kept": {"seconds": 1.0},
                           "removed": {"seconds": 2.0}}}
        new = {"results": {"kept": {"seconds": 1.1},
                           "added": {"seconds": 3.0}}}
        report, regressions, skipped = compare_bench.compare(old, new, 0.2)
        assert len(report) == 1      # only the shared op is compared
        assert regressions == []
        assert sorted(skipped) == ["results.added.seconds (candidate only)",
                                   "results.removed.seconds (baseline only)"]

    def test_skip_ignores_directionless_leaves(self):
        old = {"meta": {"n_iters": 100}, "a": {"seconds": 1.0}}
        new = {"a": {"seconds": 1.0}}
        _, _, skipped = compare_bench.compare(old, new, 0.2)
        assert skipped == []    # n_iters has no direction: not worth a warning

    def test_main_warns_on_stderr_and_still_gates(self, tmp_path, capsys):
        import json
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"a": {"seconds": 1.0},
                                   "gone": {"seconds": 9.0}}))
        new.write_text(json.dumps({"a": {"seconds": 1.05}}))
        assert compare_bench.main([str(old), str(new)]) == 0
        captured = capsys.readouterr()
        assert "skipping" in captured.err and "gone.seconds" in captured.err

    def test_main_fails_on_regression(self, tmp_path, capsys):
        import json
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"a": {"seconds": 1.0}}))
        new.write_text(json.dumps({"a": {"seconds": 2.0}}))
        assert compare_bench.main([str(old), str(new)]) == 1


class TestCounterColumns:
    """*_bytes / *_calls leaves: lower-is-better, own threshold."""

    def test_counter_growth_regresses(self):
        old = {"results": {"conv": {"peak_alloc_bytes": 1000,
                                    "gemm_calls": 8}}}
        new = {"results": {"conv": {"peak_alloc_bytes": 1500,
                                    "gemm_calls": 8}}}
        _, regressions, _ = compare_bench.compare(old, new, 0.2)
        assert len(regressions) == 1
        assert "peak_alloc_bytes" in regressions[0]

    def test_counter_reduction_is_fine(self):
        old = {"results": {"conv": {"gemm_calls": 512}}}
        new = {"results": {"conv": {"gemm_calls": 256}}}
        report, regressions, _ = compare_bench.compare(old, new, 0.2)
        assert len(report) == 1 and regressions == []

    def test_counter_threshold_is_independent(self):
        """A loose wall-clock threshold must not loosen the counter gate."""
        old = {"results": {"conv": {"fwd_ops_per_sec": 100.0,
                                    "gemm_calls": 100}}}
        new = {"results": {"conv": {"fwd_ops_per_sec": 60.0,   # -40%: ok @0.6
                                    "gemm_calls": 140}}}       # +40%: trips
        _, regressions, _ = compare_bench.compare(old, new, 0.6,
                                                  counter_threshold=0.2)
        assert len(regressions) == 1
        assert "gemm_calls" in regressions[0]

    def test_counter_threshold_defaults_to_threshold(self):
        old = {"results": {"conv": {"gemm_calls": 100}}}
        new = {"results": {"conv": {"gemm_calls": 140}}}
        _, loose, _ = compare_bench.compare(old, new, 0.5)
        _, tight, _ = compare_bench.compare(old, new, 0.2)
        assert loose == [] and len(tight) == 1

    def test_zero_baseline_counter_skipped(self):
        old = {"results": {"linear": {"gemm_calls": 0}}}
        new = {"results": {"linear": {"gemm_calls": 5}}}
        report, regressions, _ = compare_bench.compare(old, new, 0.2)
        assert report == [] and regressions == []

    def test_main_counter_flag(self, tmp_path):
        import json
        old = tmp_path / "old.json"
        new = tmp_path / "new.json"
        old.write_text(json.dumps({"a": {"peak_alloc_bytes": 1000}}))
        new.write_text(json.dumps({"a": {"peak_alloc_bytes": 1300}}))
        assert compare_bench.main([str(old), str(new),
                                   "--counter-threshold", "0.2"]) == 1
        assert compare_bench.main([str(old), str(new),
                                   "--counter-threshold", "0.4"]) == 0
