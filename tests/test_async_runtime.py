"""Tests for the event-driven asynchronous FL runtime.

Covers the equivalence contract (event engine with always-on fleet, sync
policy and no deadline reproduces the legacy loop bit-for-bit), buffered
staleness accounting, deadline/dropout/churn handling, the availability
models, and the async_compare experiment end-to-end.
"""

import math

import numpy as np
import pytest

from repro.constraints import ConstraintSpec, build_scenario
from repro.data import load_dataset
from repro.fl import (BufferedPolicy, Event, EventQueue, ExecutionConfig,
                      LocalTrainConfig, SimulationConfig, SynchronousPolicy,
                      make_availability, run_event_simulation, run_simulation)
from repro.fl.events import (CLIENT_DROPPED, DOWNLOAD_START, SERVER_AGGREGATE,
                             UPLOAD_COMPLETE)
from repro.models import build_model


def tiny_scenario(algorithm="sheterofl", seed=0, num_clients=10):
    ds = load_dataset("harbox", seed=0, num_users=10, samples_per_user=10,
                      test_size=60)
    model = build_model("har_cnn", num_classes=ds.num_classes, seed=0)
    spec = ConstraintSpec(constraints=("computation",))
    config = LocalTrainConfig(batch_size=8, local_epochs=1, max_batches=1)
    return build_scenario(algorithm, model, ds, num_clients, spec,
                          train_config=config, seed=seed,
                          eval_max_samples=60)


SIM = dict(num_rounds=4, sample_ratio=0.3, eval_every=2, seed=3)


class TestEventQueue:
    def test_orders_by_time_then_insertion(self):
        q = EventQueue()
        q.push(Event(2.0, UPLOAD_COMPLETE, 1))
        q.push(Event(1.0, DOWNLOAD_START, 2))
        q.push(Event(1.0, CLIENT_DROPPED, 3))
        assert q.peek_time() == 1.0
        popped = [q.pop() for _ in range(3)]
        assert [e.client_id for e in popped] == [2, 3, 1]
        assert not q
        with pytest.raises(IndexError):
            q.pop()

    def test_rejects_unknown_event_type(self):
        with pytest.raises(ValueError):
            Event(0.0, "teleport", 1)

    def test_timeline_entry_drops_payloads(self):
        event = Event(1.5, UPLOAD_COMPLETE, 4,
                      info={"staleness": 2, "update": object()})
        entry = event.timeline_entry()
        assert entry == {"t": 1.5, "type": UPLOAD_COMPLETE, "client": 4,
                         "staleness": 2}


class TestLegacyEquivalence:
    """ExecutionConfig() defaults must reproduce the legacy loop exactly."""

    @pytest.mark.parametrize("algorithm",
                             ["sheterofl", "fedrolex", "fedproto", "fedet"])
    def test_history_matches_legacy(self, algorithm):
        legacy = run_simulation(tiny_scenario(algorithm).algorithm,
                                SimulationConfig(**SIM))
        event = run_simulation(
            tiny_scenario(algorithm).algorithm,
            SimulationConfig(**SIM, execution=ExecutionConfig()))

        assert len(legacy.records) == len(event.records)
        for a, b in zip(legacy.records, event.records):
            assert a.round_index == b.round_index
            assert a.sim_time_s == b.sim_time_s
            assert a.round_time_s == b.round_time_s
            assert a.train_loss == b.train_loss
            assert a.global_accuracy == b.global_accuracy
        assert legacy.final_device_accuracies == event.final_device_accuracies

    def test_event_run_records_timeline(self):
        history = run_simulation(
            tiny_scenario().algorithm,
            SimulationConfig(**SIM, execution=ExecutionConfig()))
        record = history.records[0]
        types = [e["type"] for e in record.events]
        assert types.count(DOWNLOAD_START) == record.extras["dispatched"]
        assert types.count(UPLOAD_COMPLETE) == record.extras["received"]
        assert SERVER_AGGREGATE in types
        # Events are clock-ordered up to the closing server-side entries.
        upload_times = [e["t"] for e in record.events
                        if e["type"] == UPLOAD_COMPLETE]
        assert upload_times == sorted(upload_times)

    def test_record_events_off(self):
        history = run_simulation(
            tiny_scenario().algorithm,
            SimulationConfig(**SIM,
                             execution=ExecutionConfig(record_events=False)))
        assert all(r.events == [] for r in history.records)


class TestSynchronousDeadline:
    def test_deadline_drops_stragglers_and_caps_round_time(self):
        scenario = tiny_scenario()
        algo = scenario.algorithm
        deadline = algo.fleet_round_time_quantile(0.5)  # slower half drops
        config = SimulationConfig(
            num_rounds=4, sample_ratio=0.5, eval_every=2, seed=3,
            execution=ExecutionConfig(deadline_s=deadline))
        history = run_simulation(algo, config)
        dropped = history.dropped_counts()
        assert dropped.get("deadline", 0) > 0
        for record in history.records:
            assert record.round_time_s <= deadline \
                + config.server_overhead_s + 1e-9
            late = record.extras.get("dropped_deadline", 0)
            assert record.extras["received"] + late \
                == record.extras["dispatched"]

    def test_over_selection_dispatches_extra_clients(self):
        config = SimulationConfig(
            num_rounds=2, sample_ratio=0.3, eval_every=2, seed=3,
            execution=ExecutionConfig(over_select=0.5))
        history = run_simulation(tiny_scenario().algorithm, config)
        # target 3 clients + ceil(3 * 0.5) = 5 dispatched per round.
        assert all(r.extras["dispatched"] == 5 for r in history.records)

    def test_dropout_availability_loses_updates(self):
        config = SimulationConfig(
            num_rounds=3, sample_ratio=0.5, eval_every=2, seed=3,
            execution=ExecutionConfig(availability="dropout",
                                      availability_kwargs={"prob": 0.5}))
        history = run_simulation(tiny_scenario().algorithm, config)
        assert history.dropped_counts().get("dropout", 0) > 0
        for record in history.records:
            assert record.extras["received"] \
                + record.extras.get("dropped_dropout", 0) \
                == record.extras["dispatched"]


class TestBufferedAggregation:
    def test_staleness_accounting(self):
        config = SimulationConfig(
            num_rounds=5, sample_ratio=0.3, eval_every=2, seed=3,
            execution=ExecutionConfig(policy="buffered", buffer_size=1,
                                      max_concurrency=3,
                                      staleness_exponent=0.5))
        history = run_simulation(tiny_scenario().algorithm, config)
        assert len(history.records) == 5
        assert sum(r.extras["received"] for r in history.records) == 5
        # With three clients in flight and aggregation on every arrival,
        # updates dispatched before the first aggregation arrive stale.
        assert history.stale_update_count() > 0
        for record in history.records:
            # buffer_size=1: the round's mean staleness/discount are the
            # single update's, so the FedBuff discount law is checkable.
            expected = (1.0 + record.extras["mean_staleness"]) ** -0.5
            assert abs(record.extras["mean_discount"] - expected) < 1e-12
            uploads = [e for e in record.events
                       if e["type"] == UPLOAD_COMPLETE]
            for upload in uploads:
                assert upload["discount"] == pytest.approx(
                    (1.0 + upload["staleness"]) ** -0.5)

    def test_versions_and_clock_advance(self):
        config = SimulationConfig(
            num_rounds=4, sample_ratio=0.3, eval_every=2, seed=3,
            execution=ExecutionConfig(policy="buffered", buffer_size=2))
        history = run_simulation(tiny_scenario().algorithm, config)
        assert [r.round_index for r in history.records] == [0, 1, 2, 3]
        times = [r.sim_time_s for r in history.records]
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert history.records[-1].global_accuracy is not None

    def test_buffered_stops_at_accuracy(self):
        config = SimulationConfig(
            num_rounds=6, sample_ratio=0.3, eval_every=1, seed=3,
            stop_at_accuracy=0.0,
            execution=ExecutionConfig(policy="buffered", buffer_size=2))
        history = run_simulation(tiny_scenario().algorithm, config)
        assert len(history.records) == 1

    def test_dropout_fleet_still_progresses(self):
        config = SimulationConfig(
            num_rounds=3, sample_ratio=0.3, eval_every=1, seed=3,
            execution=ExecutionConfig(policy="buffered", buffer_size=2,
                                      availability="dropout",
                                      availability_kwargs={"prob": 0.6}))
        history = run_simulation(tiny_scenario().algorithm, config)
        assert len(history.records) == 3
        assert history.dropped_counts().get("dropout", 0) > 0


class TestAvailabilityModels:
    def test_always_on(self):
        model = make_availability("always_on", 4)
        assert model.is_online(0, 1e9)
        assert model.online_until(0, 0.0) == math.inf
        assert not model.drops_round(0, 0)

    def test_diurnal_intervals_consistent(self):
        model = make_availability("diurnal", 8, seed=1, period_s=1000.0,
                                  duty=0.4)
        for cid in range(8):
            start = model.next_online(cid, 0.0)
            assert model.is_online(cid, start)
            end = model.online_until(cid, start)
            assert end > start
            assert not model.is_online(cid, end + 1e-6)
            # Periodicity: one full period later the client is online again
            # (probe mid-window to stay clear of boundary rounding).
            assert model.is_online(cid, (start + end) / 2.0 + 1000.0)

    def test_diurnal_full_duty_always_online(self):
        model = make_availability("diurnal", 2, seed=0, period_s=100.0,
                                  duty=1.0, duty_jitter=0.0)
        for t in (0.0, 37.0, 99.9):
            assert model.is_online(0, t)
        assert model.online_until(0, 0.0) == math.inf

    def test_markov_alternates_and_is_deterministic(self):
        a = make_availability("markov", 4, seed=2, mean_on_s=50.0,
                              mean_off_s=25.0)
        b = make_availability("markov", 4, seed=2, mean_on_s=50.0,
                              mean_off_s=25.0)
        probe_times = np.linspace(0.0, 2000.0, 64)
        for cid in range(4):
            states_a = [a.is_online(cid, t) for t in probe_times]
            # Query b in reverse order: traces must not depend on order.
            states_b = [b.is_online(cid, t) for t in reversed(probe_times)]
            assert states_a == list(reversed(states_b))
            assert any(states_a) and not all(states_a)
            if a.is_online(cid, 0.0):
                end = a.online_until(cid, 0.0)
                assert not a.is_online(cid, end + 1e-9)
            else:
                back = a.next_online(cid, 0.0)
                assert a.is_online(cid, back + 1e-9)

    def test_dropout_deterministic_per_dispatch(self):
        model = make_availability("dropout", 16, seed=5, prob=0.5)
        draws = [model.drops_round(cid, k) for cid in range(16)
                 for k in range(8)]
        again = [model.drops_round(cid, k) for cid in range(16)
                 for k in range(8)]
        assert draws == again
        assert any(draws) and not all(draws)
        assert model.is_online(3, 123.0)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_availability("quantum", 4)


class TestExecutionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionConfig(policy="psychic")
        with pytest.raises(ValueError):
            ExecutionConfig(buffer_size=0)
        with pytest.raises(ValueError):
            ExecutionConfig(over_select=-0.1)

    def test_spec_execution_config_carries_availability(self):
        spec = ConstraintSpec(availability="dropout",
                              availability_kwargs={"prob": 0.2})
        execution = spec.execution_config(policy="buffered", buffer_size=3)
        assert execution.policy == "buffered"
        assert execution.availability == "dropout"
        assert execution.availability_kwargs == {"prob": 0.2}
        assert execution.buffer_size == 3
        assert "dropout" in spec.label

    def test_spec_rejects_unknown_availability(self):
        with pytest.raises(ValueError):
            ConstraintSpec(availability="sometimes")

    def test_run_event_simulation_override(self):
        history = run_event_simulation(
            tiny_scenario().algorithm, SimulationConfig(**SIM),
            execution=ExecutionConfig(policy="buffered", buffer_size=2))
        assert len(history.records) == SIM["num_rounds"]

    def test_policy_classes_registered(self):
        assert ExecutionConfig(policy="sync")
        assert SynchronousPolicy.name == "sync"
        assert BufferedPolicy.name == "buffered"


class TestAsyncCompareExperiment:
    def test_runs_end_to_end(self):
        from repro.experiments import async_compare
        rows = async_compare.run(scale="smoke", algorithms=["sheterofl"],
                                 cases=[("computation",)])
        assert len(rows) == len(async_compare.MODES)
        assert {r["mode"] for r in rows} == set(async_compare.MODES)
        for row in rows:
            assert row["constraints"] == "comp/dropout"
            assert 0.0 <= row["final_acc"] <= 1.0
            assert row["total_s"] > 0
        by_mode = {r["mode"]: r for r in rows}
        assert by_mode["buffered"]["stale"] >= 0
