"""Tests for the four PracMHBench metrics."""

import numpy as np
import pytest

from repro.fl import History, RoundRecord
from repro.metrics import (MetricSummary, summarize, global_accuracy,
                           time_to_accuracy, stability, effectiveness)


def _history(accs, name="algo", dt=10.0, device_accs=(0.4, 0.6)):
    h = History(algorithm=name, dataset="ds")
    for i, acc in enumerate(accs):
        h.append(RoundRecord(round_index=i, sim_time_s=dt * (i + 1),
                             round_time_s=dt, train_loss=1.0,
                             global_accuracy=acc))
    h.final_device_accuracies = list(device_accs)
    return h


class TestMetrics:
    def test_global_accuracy_is_final(self):
        assert global_accuracy(_history([0.1, 0.5, 0.4])) == 0.4

    def test_time_to_accuracy_first_crossing(self):
        h = _history([0.1, 0.5, 0.4])
        assert time_to_accuracy(h, 0.45) == 20.0
        assert time_to_accuracy(h, 0.95) is None

    def test_stability_is_variance(self):
        h = _history([0.5], device_accs=[0.2, 0.8])
        assert abs(stability(h) - np.var([0.2, 0.8])) < 1e-12

    def test_effectiveness_sign(self):
        good = _history([0.6])
        baseline = _history([0.5], name="fedavg_smallest")
        assert effectiveness(good, baseline) == pytest.approx(0.1)
        worse = _history([0.4])
        assert effectiveness(worse, baseline) == pytest.approx(-0.1)

    def test_summarize_full(self):
        h = _history([0.3, 0.6])
        baseline = _history([0.5])
        summary = summarize(h, target_accuracy=0.55, baseline=baseline)
        assert isinstance(summary, MetricSummary)
        assert summary.global_accuracy == 0.6
        assert summary.time_to_accuracy_s == 20.0
        assert summary.effectiveness == pytest.approx(0.1)

    def test_summarize_without_baseline(self):
        summary = summarize(_history([0.3]), target_accuracy=0.9)
        assert summary.effectiveness is None

    def test_as_row_handles_misses(self):
        summary = summarize(_history([0.3]), target_accuracy=0.99)
        row = summary.as_row()
        assert row["tta_s"] is None
        assert row["effectiveness"] is None
        assert row["global_acc"] == 0.3
