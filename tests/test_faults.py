"""Tests for the fault-tolerance layer: deterministic fault injection,
coordinator defense (validation + quarantine), quorum degradation,
hardened executors and crash-safe checkpoint/resume.

The overarching contract mirrors the healthy runtime's: fault-injected
runs are byte-identical across executors and worker counts, resumed runs
are byte-identical to uninterrupted ones, and zero-fault runs serialise
(and content-hash) exactly as they did before the layer existed.
"""

import json
import threading
import time
from concurrent.futures import BrokenExecutor

import numpy as np
import pytest

from repro.algorithms import ClientUpdate
from repro.constraints import ConstraintSpec, build_scenario
from repro.data import load_dataset
from repro.experiments import RunSpec, execute_spec
from repro.experiments.cache import RunCache
from repro.experiments.runner import (Checkpointing, _spec_checkpoint,
                                      set_default_checkpointing)
from repro.fl import (ExecutionConfig, LocalTrainConfig, SimulationConfig,
                      run_simulation, validate_update)
from repro.fl.checkpoint import (CHECKPOINT_VERSION, CheckpointConfig,
                                 Checkpointer, make_checkpointer)
from repro.fl.executor import (DEFAULT_RETRIES, ClientResult, ClientWorkItem,
                               ExecutorError, InlineExecutor, ThreadExecutor,
                               TransientExecutorError, failure_is_transient,
                               make_executor)
from repro.fl.faults import FaultModel, FaultSpec, corrupt_update
from repro.models import build_model


def tiny_scenario(algorithm="sheterofl", seed=0):
    ds = load_dataset("harbox", seed=0, num_users=10, samples_per_user=10,
                      test_size=60)
    model = build_model("har_cnn", num_classes=ds.num_classes, seed=0)
    spec = ConstraintSpec(constraints=("computation",))
    config = LocalTrainConfig(batch_size=8, local_epochs=1, max_batches=1)
    return build_scenario(algorithm, model, ds, 10, spec,
                          train_config=config, seed=seed,
                          eval_max_samples=60)


SIM = dict(num_rounds=4, sample_ratio=0.3, eval_every=2, seed=3)

FAULTS = {"crash_prob": 0.1, "straggler_prob": 0.2, "corrupt_prob": 0.1}

SMOKE = ConstraintSpec(constraints=("computation",))


def _update(payload, loss=1.0, weight=2.0):
    return ClientUpdate(client_id=0, version=0, train_loss=loss,
                        round_time_s=5.0, weight=weight, payload=payload)


def _state_maps_payload():
    state = {"layer.w": np.arange(12, dtype=np.float32).reshape(3, 4),
             "layer.b": np.ones(3, dtype=np.float32)}
    maps = {"layer.w": (np.array([0, 1, 2]), np.array([0, 1, 2, 3])),
            "layer.b": (np.array([0, 1, 2]),)}
    return state, maps


# ----------------------------------------------------------------------
# FaultSpec / config plumbing
# ----------------------------------------------------------------------
class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="crash_prob"):
            FaultSpec(crash_prob=1.5)
        with pytest.raises(ValueError, match="corrupt_mode"):
            FaultSpec(corrupt_mode="bitflip")
        with pytest.raises(ValueError, match="straggler_factor"):
            FaultSpec(straggler_factor=0.5)

    def test_enabled(self):
        assert not FaultSpec().enabled
        assert FaultSpec(crash_prob=0.1).enabled
        assert FaultSpec(straggler_prob=0.1).enabled
        assert FaultSpec(corrupt_prob=0.1).enabled

    def test_round_trip(self):
        spec = FaultSpec(crash_prob=0.1, corrupt_prob=0.2,
                         corrupt_mode="scale", corrupt_factor=10.0, seed=7)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_constraint_spec_validates_eagerly(self):
        with pytest.raises(ValueError):
            ConstraintSpec(faults={"crash_prob": 2.0})
        with pytest.raises(TypeError):
            ConstraintSpec(faults={"flux_capacitor": 1.21})

    def test_execution_config_coerces_dict(self):
        cfg = ExecutionConfig(faults={"crash_prob": 0.3})
        assert isinstance(cfg.faults, FaultSpec)
        assert cfg.faults.crash_prob == 0.3

    def test_execution_config_knob_validation(self):
        with pytest.raises(ValueError, match="quorum"):
            ExecutionConfig(quorum=0.0)
        with pytest.raises(ValueError, match="quorum"):
            ExecutionConfig(quorum=1.5)
        with pytest.raises(ValueError, match="synchronous"):
            ExecutionConfig(policy="buffered", quorum=0.5)
        with pytest.raises(ValueError, match="item_timeout_s"):
            ExecutionConfig(item_timeout_s=0.0)
        with pytest.raises(ValueError, match="item_retries"):
            ExecutionConfig(item_retries=-1)

    def test_fault_model_none_when_disabled(self):
        assert ExecutionConfig().fault_model(0) is None
        assert ExecutionConfig(faults=FaultSpec()).fault_model(0) is None
        assert ExecutionConfig(faults=FAULTS).fault_model(0) is not None


class TestZeroFaultHashStability:
    """Robustness knobs must be invisible in every pre-existing spec's
    serialised form — no cached content hash may ever move."""

    LEGACY_KEYS = {"policy", "availability", "availability_kwargs",
                   "deadline_s", "over_select", "buffer_size",
                   "max_concurrency", "staleness_exponent",
                   "availability_seed", "record_events"}

    def test_execution_config_default_form_unchanged(self):
        assert set(ExecutionConfig().to_dict()) == self.LEGACY_KEYS
        # an all-zero (disabled) spec serialises like no spec at all
        assert set(ExecutionConfig(faults=FaultSpec()).to_dict()) \
            == self.LEGACY_KEYS
        assert set(ExecutionConfig(item_timeout_s=30.0,
                                   item_retries=5).to_dict()) \
            == self.LEGACY_KEYS

    def test_execution_config_emits_when_set(self):
        payload = ExecutionConfig(faults=FAULTS, quorum=0.8, validate=False,
                                  norm_bound=1e4).to_dict()
        assert payload["faults"]["crash_prob"] == FAULTS["crash_prob"]
        assert payload["quorum"] == 0.8
        assert payload["validate"] is False
        assert payload["norm_bound"] == 1e4
        assert ExecutionConfig.from_dict(payload) \
            == ExecutionConfig(faults=FAULTS, quorum=0.8, validate=False,
                               norm_bound=1e4)

    def test_constraint_spec_form_unchanged(self):
        assert "faults" not in ConstraintSpec().to_dict()
        spec = ConstraintSpec(faults=FAULTS)
        assert spec.to_dict()["faults"] == FAULTS
        assert ConstraintSpec.from_dict(spec.to_dict()) == spec

    def test_run_spec_hash_stability(self):
        plain = RunSpec(algorithm="sheterofl", dataset="harbox",
                        constraints=SMOKE, scale="smoke", seed=0)
        empty = plain.replace(constraints=ConstraintSpec(
            constraints=("computation",), faults={}))
        faulted = plain.replace(constraints=ConstraintSpec(
            constraints=("computation",), faults=FAULTS))
        assert empty.content_hash() == plain.content_hash()
        assert faulted.content_hash() != plain.content_hash()
        assert RunSpec.from_json(faulted.to_json()) == faulted

    def test_faulted_spec_routes_to_event_engine(self):
        healthy = RunSpec(algorithm="sheterofl", dataset="harbox",
                          constraints=SMOKE, scale="smoke")
        faulted = healthy.replace(constraints=ConstraintSpec(
            constraints=("computation",), faults=FAULTS))
        assert healthy.resolved_execution() is None
        resolved = faulted.resolved_execution()
        assert resolved is not None and resolved.faults.enabled


# ----------------------------------------------------------------------
# FaultModel: the deterministic schedule
# ----------------------------------------------------------------------
class TestFaultModel:
    def test_plans_deterministic_across_instances(self):
        spec = FaultSpec(crash_prob=0.2, straggler_prob=0.3, corrupt_prob=0.2)
        a, b = FaultModel(spec, 42), FaultModel(spec, 42)
        for version in range(5):
            for cid in range(8):
                for dispatch in range(3):
                    assert a.plan(version, cid, dispatch) \
                        == b.plan(version, cid, dispatch)

    def test_plans_stateless_order_independent(self):
        spec = FaultSpec(crash_prob=0.5)
        model = FaultModel(spec, 0)
        forward = [model.plan(0, cid) for cid in range(10)]
        backward = [model.plan(0, cid) for cid in reversed(range(10))]
        assert forward == list(reversed(backward))

    def test_keys_and_seed_differentiate(self):
        spec = FaultSpec(crash_prob=0.5, straggler_prob=0.5, corrupt_prob=0.5)
        model = FaultModel(spec, 1)
        grid = [model.plan(v, c, d)
                for v in range(4) for c in range(8) for d in range(2)]
        assert len(set(grid)) > 1    # keys actually matter
        other = FaultModel(FaultSpec(**{**spec.to_dict(), "seed": 9}), 1)
        assert any(model.plan(v, c) != other.plan(v, c)
                   for v in range(4) for c in range(8))

    def test_draw_order_pinned(self):
        """Adding a later probability must not reshuffle earlier draws."""
        crash_only = FaultModel(FaultSpec(crash_prob=0.3), 5)
        combined = FaultModel(FaultSpec(crash_prob=0.3, corrupt_prob=0.4), 5)
        for version in range(4):
            for cid in range(10):
                assert crash_only.plan(version, cid).crash \
                    == combined.plan(version, cid).crash

    def test_disabled_always_clean(self):
        model = FaultModel(FaultSpec(), 3)
        assert all(model.plan(v, c).clean
                   for v in range(3) for c in range(5))

    def test_rates_track_probabilities(self):
        model = FaultModel(FaultSpec(crash_prob=0.3), 11)
        draws = [model.plan(v, c) for v in range(100) for c in range(20)]
        rate = sum(p.crash for p in draws) / len(draws)
        assert 0.25 < rate < 0.35


# ----------------------------------------------------------------------
# Corruption + coordinator defense
# ----------------------------------------------------------------------
class TestCorruption:
    def test_nan_mode_poisons_floats_only(self):
        state, maps = _state_maps_payload()
        update = _update((state, maps))
        corrupt_update(update, "nan")
        new_state, new_maps = update.payload
        assert np.isnan(update.train_loss)
        assert np.isnan(new_state["layer.w"]).any()
        # integer index maps ride through untouched
        np.testing.assert_array_equal(new_maps["layer.w"][0], [0, 1, 2])
        # copy-on-corrupt: the trained arrays are never mutated
        assert not np.isnan(state["layer.w"]).any()

    def test_inf_scale_zero_modes(self):
        for mode, check in [
            ("inf", lambda a: np.isinf(a).any()),
            ("scale", lambda a: np.max(np.abs(a)) > 1e5),
            ("zero", lambda a: not a.any()),
        ]:
            update = _update(_state_maps_payload())
            corrupt_update(update, mode)
            assert check(update.payload[0]["layer.w"]), mode

    def test_bare_array_payload(self):
        update = _update(np.ones((4, 3), dtype=np.float64))
        corrupt_update(update, "scale", factor=100.0)
        assert float(update.payload.max()) == 100.0


class TestValidateUpdate:
    def test_healthy_passes(self):
        assert validate_update(_update(_state_maps_payload())) is None

    def test_nonfinite_payload_and_loss(self):
        update = _update(_state_maps_payload())
        corrupt_update(update, "nan")
        assert validate_update(update) == "nonfinite"
        update = _update(_state_maps_payload())
        corrupt_update(update, "inf")
        assert validate_update(update) == "nonfinite"
        assert validate_update(
            _update(_state_maps_payload(), loss=float("nan"))) == "nonfinite"

    def test_norm_bound_catches_scaling(self):
        update = _update(_state_maps_payload())
        corrupt_update(update, "scale", factor=1e6)
        assert validate_update(update) is None      # finite: passes bare
        assert validate_update(update, norm_bound=1e3) == "norm"

    def test_zeroed_payload_passes_deliberately(self):
        update = _update(_state_maps_payload())
        corrupt_update(update, "zero")
        assert validate_update(update) is None
        assert validate_update(update, norm_bound=1e3) is None

    def test_malformed(self):
        assert validate_update(object()) == "malformed"
        assert validate_update(
            _update(_state_maps_payload(), weight=-1.0)) == "malformed"
        assert validate_update(
            _update(_state_maps_payload(),
                    weight=float("inf"))) == "malformed"

    def test_shape_family(self):
        state, maps = _state_maps_payload()
        assert validate_update(
            _update(({"layer.w": [1, 2, 3]}, maps))) == "shape"
        assert validate_update(_update((state, {}))) == "shape"


# ----------------------------------------------------------------------
# Fault-injected rounds end to end
# ----------------------------------------------------------------------
class TestFaultedRounds:
    def test_crashes_recorded_and_survived(self):
        execution = ExecutionConfig(faults={"crash_prob": 0.5})
        history = run_simulation(tiny_scenario().algorithm,
                                 SimulationConfig(**SIM, execution=execution))
        assert len(history.records) == SIM["num_rounds"]
        dropped = history.dropped_counts()
        assert dropped.get("crash", 0) > 0
        failures = [e for r in history.records for e in r.events
                    if e["type"] == "client_failed"]
        assert len(failures) == dropped["crash"]
        assert all(np.isfinite(r.train_loss) for r in history.records)

    def test_corruption_quarantined(self):
        execution = ExecutionConfig(faults={"corrupt_prob": 0.6})
        history = run_simulation(tiny_scenario().algorithm,
                                 SimulationConfig(**SIM, execution=execution))
        dropped = history.dropped_counts()
        assert dropped.get("quarantined", 0) > 0
        rejections = [e for r in history.records for e in r.events
                      if e["type"] == "update_rejected"]
        assert len(rejections) == dropped["quarantined"]
        assert all(e["reason"] == "nonfinite" for e in rejections)
        # quarantine kept the aggregate healthy
        assert all(np.isfinite(r.train_loss) for r in history.records)
        assert np.isfinite(history.final_accuracy)

    def test_stragglers_stretch_rounds(self):
        base = run_simulation(tiny_scenario().algorithm,
                              SimulationConfig(**SIM,
                                               execution=ExecutionConfig()))
        slowed = run_simulation(
            tiny_scenario().algorithm,
            SimulationConfig(**SIM, execution=ExecutionConfig(
                faults={"straggler_prob": 0.9, "straggler_factor": 8.0})))
        assert slowed.total_sim_time_s > base.total_sim_time_s

    def test_deterministic_across_runs(self):
        execution = ExecutionConfig(faults=FAULTS)
        config = SimulationConfig(**SIM, execution=execution)
        first = run_simulation(tiny_scenario().algorithm, config)
        second = run_simulation(tiny_scenario().algorithm, config)
        assert first.to_json() == second.to_json()

    def test_executor_identity_under_faults(self):
        spec = RunSpec(algorithm="sheterofl", dataset="harbox",
                       constraints=ConstraintSpec(
                           constraints=("computation",), faults=FAULTS),
                       scale="smoke", seed=0)
        inline = execute_spec(spec.replace(workers=1, executor="inline"))
        thread = execute_spec(spec.replace(workers=2, executor="thread"))
        assert inline.history.to_json() == thread.history.to_json()

    def test_buffered_policy_faults(self):
        execution = ExecutionConfig(policy="buffered", buffer_size=2,
                                    faults={"crash_prob": 0.3,
                                            "corrupt_prob": 0.3})
        config = SimulationConfig(**SIM, execution=execution)
        first = run_simulation(tiny_scenario().algorithm, config)
        second = run_simulation(tiny_scenario().algorithm, config)
        assert first.to_json() == second.to_json()
        dropped = first.dropped_counts()
        assert dropped.get("crash", 0) + dropped.get("quarantined", 0) > 0

    def test_zero_fault_run_bit_identical_to_pre_layer(self):
        """A disabled fault spec must not perturb a single byte."""
        plain = run_simulation(tiny_scenario().algorithm,
                               SimulationConfig(**SIM,
                                                execution=ExecutionConfig()))
        gated = run_simulation(
            tiny_scenario().algorithm,
            SimulationConfig(**SIM,
                             execution=ExecutionConfig(faults=FaultSpec())))
        assert plain.to_json() == gated.to_json()


class TestQuorum:
    def _fleet_times(self, algorithm):
        return sorted(algorithm.client_round_time_s(algorithm.clients[c])
                      for c in algorithm.clients)

    def test_extension_recovers_stragglers(self):
        scen = tiny_scenario()
        deadline = self._fleet_times(scen.algorithm)[3]
        quorum = run_simulation(
            tiny_scenario().algorithm,
            SimulationConfig(**SIM, execution=ExecutionConfig(
                deadline_s=deadline, quorum=0.9)))
        for record in quorum.records:
            assert record.extras["quorum_met"]
            assert record.extras["received"] == record.extras["dispatched"]
            assert "dropped_deadline" not in record.extras
        assert any(r.extras.get("deadline_extended")
                   for r in quorum.records)
        # without a quorum the same deadline sheds uploads
        bare = run_simulation(
            tiny_scenario().algorithm,
            SimulationConfig(**SIM,
                             execution=ExecutionConfig(deadline_s=deadline)))
        assert sum(r.extras["received"] for r in bare.records) \
            < sum(r.extras["received"] for r in quorum.records)

    def test_unmeetable_quorum_skips_rounds_never_crashes(self):
        scen = tiny_scenario()
        deadline = self._fleet_times(scen.algorithm)[0] * 0.5
        history = run_simulation(
            tiny_scenario().algorithm,
            SimulationConfig(**SIM, execution=ExecutionConfig(
                deadline_s=deadline, quorum=1.0)))
        assert len(history.records) == SIM["num_rounds"]
        for record in history.records:
            assert record.extras["quorum_met"] is False
            assert record.extras["deadline_extended"] is True
            assert record.extras["received"] == 0
            assert record.extras["quorum_target"] \
                == record.extras["dispatched"]
            assert record.train_loss == 0.0
        assert history.final_device_accuracies

    def test_no_quorum_same_deadline_unchanged(self):
        """quorum=None must leave the deadline path bit-exact (the horizon
        only widens when a quorum could use the extension)."""
        scen = tiny_scenario()
        deadline = self._fleet_times(scen.algorithm)[3]
        a = run_simulation(tiny_scenario().algorithm,
                           SimulationConfig(**SIM, execution=ExecutionConfig(
                               deadline_s=deadline)))
        b = run_simulation(tiny_scenario().algorithm,
                           SimulationConfig(**SIM, execution=ExecutionConfig(
                               deadline_s=deadline)))
        assert a.to_json() == b.to_json()


# ----------------------------------------------------------------------
# Hardened executors
# ----------------------------------------------------------------------
class _ScriptedExecutor(ThreadExecutor):
    """Thread pool whose work is a per-item script of failures, so retry
    and rebuild behaviour can be pinned without real crashes."""

    def __init__(self, failures, exception=TransientExecutorError, **kwargs):
        self.failures = failures        # attempts that should fail per item
        self.exception = exception
        self.calls = {}
        self._calls_lock = threading.Lock()
        super().__init__(algorithm=None, workers=2, **kwargs)

    def _submit_raw(self, item):
        def work():
            with self._calls_lock:
                attempt = self.calls.get(item.client_id, 0)
                self.calls[item.client_id] = attempt + 1
            if attempt < self.failures:
                raise self.exception(f"scripted failure {attempt}")
            return ClientResult(client_id=item.client_id, update=None)
        return self._pool.submit(work)


def _item(cid=0):
    return ClientWorkItem(client_id=cid, version=0, run_seed=0)


class TestExecutorHardening:
    def test_transient_classification(self):
        assert failure_is_transient(TransientExecutorError("x"))
        assert failure_is_transient(BrokenExecutor())
        assert failure_is_transient(TimeoutError())
        assert failure_is_transient(ConnectionResetError())
        assert not failure_is_transient(ExecutorError("permanent"))
        assert not failure_is_transient(ValueError("bug"))

    def test_retry_recovers_transient_failures(self):
        with _ScriptedExecutor(failures=DEFAULT_RETRIES) as executor:
            result = executor.submit(_item()).result()
        assert isinstance(result, ClientResult)
        assert executor.calls[0] == DEFAULT_RETRIES + 1

    def test_retry_budget_exhausts(self):
        with _ScriptedExecutor(failures=DEFAULT_RETRIES + 1) as executor:
            with pytest.raises(TransientExecutorError):
                executor.submit(_item()).result()
        assert executor.calls[0] == DEFAULT_RETRIES + 1

    def test_zero_retries_fails_fast(self):
        with _ScriptedExecutor(failures=1, retries=0) as executor:
            with pytest.raises(TransientExecutorError):
                executor.submit(_item()).result()
        assert executor.calls[0] == 1

    def test_permanent_failure_not_retried(self):
        with _ScriptedExecutor(failures=1, exception=ValueError) as executor:
            with pytest.raises(ValueError):
                executor.submit(_item()).result()
        assert executor.calls[0] == 1

    def test_broken_pool_rebuilt_once_and_redispatched(self):
        with _ScriptedExecutor(failures=1,
                               exception=BrokenExecutor) as executor:
            first_pool = executor._pool
            result = executor.submit(_item()).result()
            assert isinstance(result, ClientResult)
            assert executor._pool is not first_pool
            assert executor._generation == 1

    def test_item_timeout_enforced(self):
        class Hanging(ThreadExecutor):
            def _submit_raw(self, item):
                return self._pool.submit(time.sleep, 30)

        with Hanging(algorithm=None, workers=1, timeout_s=0.05,
                     retries=0) as executor:
            with pytest.raises(TimeoutError):
                executor.submit(_item()).result()

    def test_make_executor_threads_knobs(self):
        executor = make_executor(None, workers=2, kind="thread",
                                 timeout_s=12.5, retries=4)
        try:
            assert executor.timeout_s == 12.5
            assert executor.retries == 4
        finally:
            executor.close()
        # pools default to the bounded retry budget
        executor = make_executor(None, workers=2, kind="thread")
        try:
            assert executor.retries == DEFAULT_RETRIES
        finally:
            executor.close()
        # inline has no failure modes: knobs are ignored
        inline = make_executor(None, workers=1, timeout_s=1.0, retries=9)
        assert isinstance(inline, InlineExecutor)
        assert inline.retries == 0


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
class _ToyAlgorithm:
    name = "toy"
    dataset_name = "synthetic"

    def __init__(self):
        self.global_state = {"w": np.arange(6, dtype=np.float32).reshape(2, 3)}

    def checkpoint_state(self):
        return {"global_state": {k: v.copy()
                                 for k, v in self.global_state.items()}}

    def restore_checkpoint_state(self, state):
        self.global_state = {k: np.asarray(v)
                             for k, v in state["global_state"].items()}


class TestCheckpointer:
    def _checkpointer(self, tmp_path, **kwargs):
        return Checkpointer(CheckpointConfig(
            path=tmp_path / "run.ckpt.json", **kwargs))

    def _save(self, ckpt, algorithm=None, rng=None):
        from repro.fl import History
        algorithm = algorithm or _ToyAlgorithm()
        rng = rng or np.random.default_rng(0)
        ckpt.save(algorithm, rng, History(algorithm="toy",
                                          dataset="synthetic"),
                  next_round=3, sim_time_s=21.5, participation={4: 2})
        return algorithm, rng

    def test_due_cadence(self, tmp_path):
        ckpt = self._checkpointer(tmp_path, every=2)
        assert [ckpt.due(i) for i in range(4)] == [False, True, False, True]
        with pytest.raises(ValueError):
            CheckpointConfig(path="x", every=0)

    def test_save_load_round_trip(self, tmp_path):
        ckpt = self._checkpointer(tmp_path)
        algorithm, rng = self._save(ckpt)
        rng.random(5)    # advance past the snapshot
        payload = ckpt.load()
        assert payload["next_round"] == 3
        assert payload["participation"] == {"4": 2}
        # resume restores rng + algorithm state bit-exactly
        resumed = self._checkpointer(tmp_path, resume=True)
        fresh_algo, fresh_rng = _ToyAlgorithm(), np.random.default_rng(99)
        fresh_algo.global_state["w"][:] = -1.0
        history, next_round, sim_time, participation = \
            resumed.maybe_resume(fresh_algo, fresh_rng)
        assert (next_round, sim_time) == (3, 21.5)
        assert participation == {4: 2}
        np.testing.assert_array_equal(fresh_algo.global_state["w"],
                                      algorithm.global_state["w"])
        saved_rng = np.random.default_rng(0)
        np.testing.assert_array_equal(fresh_rng.random(3),
                                      saved_rng.random(3))

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        ckpt = self._checkpointer(tmp_path)
        self._save(ckpt)
        self._save(ckpt)    # overwrite in place
        assert sorted(p.name for p in tmp_path.iterdir()) == ["run.ckpt.json"]

    def test_not_resuming_and_missing_read_as_fresh(self, tmp_path):
        assert self._checkpointer(tmp_path).maybe_resume(
            _ToyAlgorithm(), np.random.default_rng(0)) is None
        resumed = self._checkpointer(tmp_path, resume=True)
        assert resumed.maybe_resume(_ToyAlgorithm(),
                                    np.random.default_rng(0)) is None

    def test_corrupt_and_version_skewed_read_as_fresh(self, tmp_path):
        ckpt = self._checkpointer(tmp_path, resume=True)
        ckpt.path.write_text("{ torn")
        assert ckpt.load() is None
        self._save(ckpt)
        payload = json.loads(ckpt.path.read_text())
        payload["checkpoint_version"] = CHECKPOINT_VERSION + 1
        ckpt.path.write_text(json.dumps(payload))
        assert ckpt.load() is None
        assert ckpt.maybe_resume(_ToyAlgorithm(),
                                 np.random.default_rng(0)) is None

    def test_wrong_run_raises(self, tmp_path):
        ckpt = self._checkpointer(tmp_path, resume=True)
        self._save(ckpt)
        other = _ToyAlgorithm()
        other.name = "different"
        with pytest.raises(ValueError, match="belongs to"):
            ckpt.maybe_resume(other, np.random.default_rng(0))

    def test_clear(self, tmp_path):
        ckpt = self._checkpointer(tmp_path)
        self._save(ckpt)
        ckpt.clear()
        assert not ckpt.path.exists()
        ckpt.clear()    # idempotent

    def test_make_checkpointer(self, tmp_path):
        assert make_checkpointer(None) is None
        bare = make_checkpointer(tmp_path / "x.json")
        assert isinstance(bare, Checkpointer)
        assert bare.config.every == 1 and not bare.config.resume


class _Interrupt(RuntimeError):
    pass


class TestKillAndResume:
    """Resume must reproduce the uninterrupted run byte for byte."""

    @pytest.mark.parametrize("faulted", [False, True])
    def test_resume_identity(self, tmp_path, faulted):
        algorithm = "fedproto"
        path = tmp_path / "run.ckpt.json"
        execution = (ExecutionConfig(faults=FAULTS) if faulted
                     else None)

        def config(checkpoint):
            return SimulationConfig(**SIM, execution=execution,
                                    checkpoint=checkpoint)

        reference = run_simulation(tiny_scenario(algorithm).algorithm,
                                   config(None))

        # interrupt after two aggregations
        scen = tiny_scenario(algorithm)
        real_ingest, calls = scen.algorithm.ingest, {"n": 0}

        def bomb(updates, round_index, rng):
            if calls["n"] >= 2:
                raise _Interrupt()
            calls["n"] += 1
            return real_ingest(updates, round_index, rng)

        scen.algorithm.ingest = bomb
        with pytest.raises(_Interrupt):
            run_simulation(scen.algorithm,
                           config(CheckpointConfig(path=path, every=1)))
        assert path.exists()

        resumed = run_simulation(
            tiny_scenario(algorithm).algorithm,
            config(CheckpointConfig(path=path, every=1, resume=True)))
        assert resumed.to_json() == reference.to_json()
        assert not path.exists()    # cleared after a completed run

    def test_buffered_policy_declines_with_warning(self, tmp_path):
        execution = ExecutionConfig(policy="buffered", buffer_size=2)
        with pytest.warns(UserWarning, match="buffered"):
            history = run_simulation(
                tiny_scenario().algorithm,
                SimulationConfig(**SIM, execution=execution,
                                 checkpoint=CheckpointConfig(
                                     path=tmp_path / "b.ckpt.json")))
        assert len(history.records) > 0
        assert not (tmp_path / "b.ckpt.json").exists()


class TestRunnerCheckpointing:
    def test_spec_checkpoint_derives_per_spec_path(self, tmp_path):
        spec = RunSpec(algorithm="sheterofl", dataset="harbox",
                       constraints=SMOKE, scale="smoke", seed=0)
        assert _spec_checkpoint(spec) is None
        previous = set_default_checkpointing(
            Checkpointing(directory=tmp_path, every=3, resume=True))
        try:
            checkpoint = _spec_checkpoint(spec)
            assert checkpoint.path \
                == tmp_path / f"{spec.content_hash()}.ckpt.json"
            assert checkpoint.every == 3 and checkpoint.resume
            other = _spec_checkpoint(spec.with_seed(1))
            assert other.path != checkpoint.path
        finally:
            set_default_checkpointing(previous)


# ----------------------------------------------------------------------
# Satellite regressions
# ----------------------------------------------------------------------
class TestCachePutLeak:
    def test_failed_put_leaves_no_files(self, tmp_path):
        from repro.fl import History, RoundRecord
        cache = RunCache(tmp_path)
        spec = RunSpec(algorithm="sheterofl", dataset="harbox",
                       constraints=SMOKE, scale="smoke", seed=0)
        history = History(algorithm="a", dataset="d")
        history.append(RoundRecord(round_index=0, sim_time_s=1.0,
                                   round_time_s=1.0, train_loss=1.0,
                                   extras={"poison": object()}))
        with pytest.raises(TypeError):
            cache.put(spec, history)
        assert list(tmp_path.iterdir()) == []
