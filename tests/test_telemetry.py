"""Runtime telemetry: metrics math, tracing, logging, and the
observation-only contract.

The load-bearing test here is byte-identity: ``History.to_json()`` must be
the same bytes with telemetry on or off, across executors and worker
counts — telemetry observes runs, it never participates in them.  The
rest pins the primitives (nearest-rank percentiles, registry merge,
Chrome-trace structure, the JSON log format) and the plumbing
(session/run-scope merge, per-client wall timings, the telemetry sidecar
next to cache entries).
"""

import json
import logging

import pytest

from repro.constraints import ConstraintSpec
from repro.experiments import RunSpec, execute_spec
from repro.experiments.cache import RunCache
from repro.experiments.registry import get_artifact
from repro.fl import history_to_dict
from repro.fl.history import History, RoundRecord
from repro.telemetry import (Histogram, JsonLogFormatter, MetricsRegistry,
                             RunTelemetry, Span, Tracer, configure_logging,
                             get_logger, percentile, report_rows,
                             reset_logging, run_scope, telemetry_session,
                             validate_chrome_trace)
from repro.telemetry import runtime as telemetry_runtime

SMOKE = ConstraintSpec(constraints=("computation",))


def smoke_spec(algorithm="sheterofl", seed=0, workers=None, executor=None):
    return RunSpec(algorithm=algorithm, dataset="harbox", constraints=SMOKE,
                   scale="smoke", seed=seed, workers=workers,
                   executor=executor)


@pytest.fixture(autouse=True)
def _clean_logging():
    yield
    reset_logging()


class TestPercentiles:
    def test_nearest_rank_returns_observations(self):
        values = [15.0, 20.0, 35.0, 40.0, 50.0]
        assert percentile(values, 0) == 15.0
        assert percentile(values, 30) == 20.0
        assert percentile(values, 40) == 20.0
        assert percentile(values, 50) == 35.0
        assert percentile(values, 100) == 50.0

    def test_single_value(self):
        assert percentile([7.0], 1) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], 101)
        with pytest.raises(ValueError, match="0, 100"):
            percentile([1.0], -1)


class TestHistogram:
    def test_summary(self):
        h = Histogram()
        for v in range(1, 101):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        assert s["p50"] == 50.0
        assert s["p90"] == 90.0
        assert s["p99"] == 99.0

    def test_empty_summary(self):
        assert Histogram().summary() == {"count": 0, "sum": 0.0}


class TestMetricsRegistry:
    def test_labeled_series_are_distinct(self):
        r = MetricsRegistry()
        r.inc("drops", 2, reason="deadline")
        r.inc("drops", 1, reason="crash")
        r.inc("drops", 3, reason="deadline")
        assert r.counter_value("drops", reason="deadline") == 5
        assert r.counter_value("drops", reason="crash") == 1
        assert r.counter_total("drops") == 6

    def test_gauges(self):
        r = MetricsRegistry()
        r.set_gauge("depth", 3)
        r.set_gauge("depth", 2)
        assert r.gauge_value("depth") == 2
        r.max_gauge("peak", 3)
        r.max_gauge("peak", 1)
        assert r.gauge_value("peak") == 3

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n", 1)
        b.inc("n", 2)
        a.set_gauge("g", 5)
        b.set_gauge("g", 3)
        a.observe("h", 1.0)
        b.observe("h", 9.0)
        a.merge(b)
        assert a.counter_value("n") == 3
        assert a.gauge_value("g") == 5          # gauges keep the max
        assert a.histogram("h").count == 2
        assert a.histogram("h").max == 9.0

    def test_to_from_dict_round_trip(self):
        r = MetricsRegistry()
        r.inc("items", 4, kind="process")
        r.set_gauge("speedup", 12.5, policy="sync")
        r.observe("latency", 0.25)
        r.observe("latency", 0.75)
        back = MetricsRegistry.from_dict(r.to_dict())
        assert back.to_dict() == r.to_dict()
        assert back.counter_value("items", kind="process") == 4
        assert back.histogram("latency").values == [0.25, 0.75]


class TestTracer:
    def test_span_nesting_and_depth(self):
        tracer = Tracer()
        with tracer.span("outer", round=0):
            with tracer.span("inner", client=3):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["inner"].depth == 1
        assert by_name["outer"].depth == 0
        assert by_name["outer"].duration_s >= by_name["inner"].duration_s
        assert by_name["inner"].labels == {"client": 3}

    def test_round_trip(self):
        tracer = Tracer()
        with tracer.span("work", round=1):
            pass
        back = Tracer.from_dict(tracer.to_dict())
        assert [s.to_dict() for s in back.spans] \
            == [s.to_dict() for s in tracer.spans]

    def test_absorb_shares_epoch(self):
        parent = Tracer()
        child = Tracer(epoch=parent.epoch)
        with child.span("child_work"):
            pass
        parent.absorb(child)
        assert [s.name for s in parent.spans] == ["child_work"]
        assert parent.spans[0].start_s >= 0

    def test_chrome_events_structure(self):
        tracer = Tracer()
        with tracer.span("step", client=1):
            pass
        (event,) = tracer.chrome_events(pid=1)
        assert event["ph"] == "X" and event["pid"] == 1
        assert event["ts"] >= 0 and event["dur"] >= 0
        assert event["args"] == {"client": 1}


class TestChromeTraceValidation:
    def _trace(self, **overrides):
        event = dict({"name": "s", "ph": "X", "pid": 1, "tid": 0,
                      "ts": 1.0, "dur": 2.0}, **overrides)
        return {"traceEvents": [event]}

    def test_valid(self):
        assert validate_chrome_trace(self._trace()) == 1

    def test_metadata_events_skip_ts(self):
        trace = {"traceEvents": [{"name": "process_name", "ph": "M",
                                  "pid": 1, "tid": 0, "args": {"name": "x"}}]}
        assert validate_chrome_trace(trace) == 1

    def test_rejects_bad_payloads(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(self._trace(ph="Z"))
        with pytest.raises(ValueError, match="invalid ts"):
            validate_chrome_trace(self._trace(ts=-1.0))
        with pytest.raises(ValueError, match="invalid dur"):
            validate_chrome_trace(self._trace(dur=None))
        with pytest.raises(ValueError, match="lacks a name"):
            validate_chrome_trace(self._trace(name=""))

    def test_session_trace_round_trips_through_json(self):
        with telemetry_session(meta={"artifact": "test"}) as session:
            with telemetry_runtime.span("alpha", round=0):
                pass
            record = RoundRecord(round_index=0, sim_time_s=10.0,
                                 round_time_s=8.0, train_loss=1.0,
                                 extras={"dispatched": 3},
                                 events=[{"t": 1.0, "type": "upload_start",
                                          "client": 2}])
            telemetry_runtime.record_round(record)
        trace = json.loads(json.dumps(session.chrome_trace()))
        count = validate_chrome_trace(trace)
        names = [e["name"] for e in trace["traceEvents"]]
        assert "alpha" in names and "round 0" in names \
            and "upload_start" in names
        assert count == len(trace["traceEvents"])
        assert trace["otherData"]["meta"] == {"artifact": "test"}


class TestJsonLogging:
    def test_json_lines(self, capsys):
        configure_logging(level="debug", json_format=True)
        get_logger("test").info("round %d done", 3, extra={"round": 3})
        line = capsys.readouterr().err.strip()
        payload = json.loads(line)
        assert payload["message"] == "round 3 done"
        assert payload["level"] == "info"
        assert payload["logger"] == "repro.test"
        assert payload["round"] == 3
        assert isinstance(payload["ts"], float)

    def test_plain_lines_are_bare_messages(self, capsys):
        configure_logging()
        get_logger("test").info("hits=4 misses=0")
        assert capsys.readouterr().err == "hits=4 misses=0\n"

    def test_level_filtering(self, capsys):
        configure_logging(level="warning")
        get_logger("test").info("invisible")
        get_logger("test").warning("visible")
        err = capsys.readouterr().err
        assert "invisible" not in err and "visible" in err

    def test_exception_serialised(self):
        formatter = JsonLogFormatter()
        try:
            raise RuntimeError("boom")
        except RuntimeError:
            record = logging.LogRecord("repro.test", logging.ERROR, "", 0,
                                       "failed", (), __import__("sys")
                                       .exc_info())
        payload = json.loads(formatter.format(record))
        assert "RuntimeError: boom" in payload["exception"]

    def test_reconfigure_is_idempotent(self):
        configure_logging()
        configure_logging(json_format=True)
        logger = get_logger()
        managed = [h for h in logger.handlers
                   if getattr(h, "_repro_managed", False)]
        assert len(managed) == 1

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="verbose")


class TestRuntimeScopes:
    def test_helpers_noop_when_disabled(self):
        assert telemetry_runtime.current() is None
        telemetry_runtime.inc("x")
        telemetry_runtime.observe("y", 1.0)
        telemetry_runtime.set_gauge("z", 2.0)
        with telemetry_runtime.span("quiet"):
            pass
        assert telemetry_runtime.current() is None

    def test_session_collects(self):
        with telemetry_session() as session:
            assert telemetry_runtime.enabled()
            telemetry_runtime.inc("n", 2)
            with telemetry_runtime.span("s"):
                pass
        assert not telemetry_runtime.enabled()
        assert session.metrics.counter_value("n") == 2
        assert [s.name for s in session.tracer.spans] == ["s"]

    def test_run_scope_merges_into_session(self):
        with telemetry_session(meta={"artifact": "a"}) as session:
            with run_scope(spec="abc123") as child:
                telemetry_runtime.inc("n")
                with telemetry_runtime.span("inner"):
                    pass
            assert child.meta == {"artifact": "a", "spec": "abc123"}
            assert telemetry_runtime.current() is session
        assert session.metrics.counter_value("n") == 1
        assert [s.name for s in session.tracer.spans] == ["inner"]

    def test_run_scope_without_session_yields_none(self):
        with run_scope(spec="abc") as child:
            assert child is None

    def test_telemetry_round_trip(self):
        with telemetry_session(meta={"k": "v"}) as session:
            telemetry_runtime.inc("c", 3, kind="x")
            telemetry_runtime.observe("h", 1.5)
            with telemetry_runtime.span("s"):
                pass
        back = RunTelemetry.from_dict(
            json.loads(json.dumps(session.to_dict())))
        assert back.to_dict() == session.to_dict()

    def test_version_gate(self):
        with pytest.raises(ValueError, match="telemetry version"):
            RunTelemetry.from_dict({"telemetry_version": 99})


class TestObservationOnly:
    """Telemetry must never change what a run computes."""

    def _history_json(self, workers=None, executor=None, telemetry=False):
        spec = smoke_spec(workers=workers, executor=executor)
        if not telemetry:
            return execute_spec(spec, cache=None).history.to_json()
        with telemetry_session(meta={"test": "byte-identity"}):
            return execute_spec(spec, cache=None).history.to_json()

    def test_histories_byte_identical_with_telemetry(self):
        reference = self._history_json()
        assert self._history_json(telemetry=True) == reference
        assert self._history_json(workers=2, executor="thread",
                                  telemetry=True) == reference
        assert self._history_json(workers=2, executor="process",
                                  telemetry=True) == reference

    def test_content_hash_unchanged_by_session(self):
        spec = smoke_spec()
        reference = spec.content_hash()
        with telemetry_session():
            assert smoke_spec().content_hash() == reference

    def test_session_observed_the_run(self):
        with telemetry_session() as session:
            execute_spec(smoke_spec(), cache=None)
        assert session.metrics.counter_total("aggregation.rounds") > 0
        assert session.metrics.counter_total("executor.items") > 0
        names = {s.name for s in session.tracer.spans}
        assert {"execute_spec", "run_simulation", "round"} <= names
        assert session.sim_rounds, "round timeline not recorded"
        assert session.sim_rounds[0]["wall"]["clients"] > 0
        rows = report_rows(session)
        sections = {row["section"] for row in rows}
        assert {"cache", "counter", "span", "round"} <= sections


class TestClientTimings:
    def test_in_memory_but_never_serialised(self):
        result = execute_spec(smoke_spec(), cache=None)
        record = result.history.records[0]
        timings = record.extras["client_timings"]
        assert timings, "executor should report per-client wall timings"
        for timing in timings.values():
            assert timing["execute_s"] >= 0
            assert timing["total_s"] >= timing["execute_s"] >= 0
            assert timing["wait_s"] >= 0
            assert timing["retries"] == 0
        payload = history_to_dict(result.history)
        for serialised in payload["records"]:
            assert "client_timings" not in serialised["extras"]
        restored = History.from_json(result.history.to_json())
        assert all("client_timings" not in r.extras
                   for r in restored.records)

    def test_strip_leaves_clean_extras_untouched(self):
        h = History(algorithm="a", dataset="d")
        extras = {"dispatched": 3}
        h.append(RoundRecord(round_index=0, sim_time_s=1.0, round_time_s=1.0,
                             train_loss=0.5, extras=extras))
        payload = history_to_dict(h)
        # No volatile keys -> the same dict object, not a copy.
        assert payload["records"][0]["extras"] is extras


class TestTelemetrySidecar:
    def test_written_next_to_cache_entry(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = smoke_spec()
        with telemetry_session():
            execute_spec(spec, cache=cache)
        sidecar = cache.telemetry_path_for(spec)
        assert sidecar.name == f"{spec.content_hash()}.telemetry.json"
        payload = json.loads(sidecar.read_text())
        assert payload["spec"] == spec.to_dict()
        restored = RunTelemetry.from_dict(payload["telemetry"])
        assert restored.metrics.counter_total("aggregation.rounds") > 0

    def test_not_written_without_session(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = smoke_spec()
        execute_spec(spec, cache=cache)
        assert cache.path_for(spec).exists()
        assert not cache.telemetry_path_for(spec).exists()

    def test_cache_hit_leaves_sidecar_alone(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = smoke_spec()
        execute_spec(spec, cache=cache)
        with telemetry_session() as session:
            result = execute_spec(spec, cache=cache)
        assert result.from_cache
        assert not cache.telemetry_path_for(spec).exists()
        assert session.metrics.counter_total("cache.hits") == 1


class TestTelemetryReportArtifact:
    def test_registered_with_expected_params(self):
        artifact = get_artifact("telemetry_report")
        assert artifact.module == "repro.experiments.telemetry_report"
        assert {"scale", "dataset", "algorithm"} <= set(artifact.params)

    def test_produces_sectioned_rows(self, tmp_path, monkeypatch):
        from repro.experiments.cache import set_default_cache
        previous = set_default_cache(RunCache(tmp_path))
        try:
            rows = get_artifact("telemetry_report").run(
                scale="smoke", dataset="harbox", algorithm="sheterofl")
        finally:
            set_default_cache(previous)
        sections = {row["section"] for row in rows}
        assert {"cache", "counter", "span", "round"} <= sections
        cache_stats = {row["name"]: row["value"] for row in rows
                       if row["section"] == "cache"}
        assert cache_stats["lookups"] == cache_stats["hits"] \
            + cache_stats["misses"]
