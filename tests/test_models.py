"""Tests for the model zoo: staged protocol, variants, slicing maps."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.models import (build_model, known_architectures, MODEL_FAMILIES,
                          family_of, width_index_maps, extract_substate,
                          scatter_accumulate, finalize_mean, zeros_like_state,
                          scaled_channels, HAR_INPUT_SHAPE)
from repro import autograd as ag


def _input_for(arch, batch=2, seed=0):
    rng = np.random.default_rng(seed)
    if arch.startswith("albert") or arch == "transformer":
        return rng.integers(0, 256, size=(batch, 12))
    if arch.startswith("har"):
        return rng.standard_normal((batch,) + HAR_INPUT_SHAPE).astype(np.float32)
    return rng.standard_normal((batch, 3, 16, 16)).astype(np.float32)


CNN_ARCHS = ["resnet18", "resnet50", "mobilenet_v2", "mobilenet_v3_small",
             "har_cnn"]
TEXT_ARCHS = ["transformer", "albert_base"]
REPRESENTATIVE = CNN_ARCHS + TEXT_ARCHS


class TestForwardProtocol:
    @pytest.mark.parametrize("arch", REPRESENTATIVE)
    def test_logits_shape(self, arch):
        model = build_model(arch, num_classes=7, seed=0)
        assert model(_input_for(arch)).shape == (2, 7)

    @pytest.mark.parametrize("arch", REPRESENTATIVE)
    def test_features_shape_matches_head(self, arch):
        model = build_model(arch, num_classes=7, seed=0)
        feats = model.features(_input_for(arch))
        assert feats.shape == (2, model.feature_dim)

    @pytest.mark.parametrize("arch", ["resnet18", "mobilenet_v2", "albert_base"])
    def test_all_heads_forward(self, arch):
        model = build_model(arch, num_classes=5, head_mode="all", seed=0)
        outs = model.forward_all_heads(_input_for(arch))
        assert [i for i, _ in outs] == list(range(model.total_stages))
        for _, logits in outs:
            assert logits.shape == (2, 5)

    def test_eval_mode_deterministic(self):
        model = build_model("resnet18", num_classes=5, seed=0).eval()
        x = _input_for("resnet18")
        with ag.no_grad():
            a, b = model(x).data, model(x).data
        np.testing.assert_array_equal(a, b)

    def test_gradients_flow_to_all_parameters(self):
        model = build_model("mobilenet_v3_small", num_classes=4, seed=0)
        x = _input_for("mobilenet_v3_small", batch=4)
        y = np.array([0, 1, 2, 3])
        ag.cross_entropy(model(x), y).backward()
        missing = [n for n, p in model.named_parameters() if p.grad is None]
        assert not missing, f"no gradient reached: {missing[:5]}"


class TestVariants:
    @pytest.mark.parametrize("arch", REPRESENTATIVE)
    @pytest.mark.parametrize("mult", [0.25, 0.5, 0.75])
    def test_width_variant_shrinks(self, arch, mult):
        model = build_model(arch, num_classes=5, seed=0)
        sub = model.variant(width_mult=mult)
        assert sub.num_parameters() < model.num_parameters()
        assert sub(_input_for(arch)).shape == (2, 5)

    @pytest.mark.parametrize("arch", ["resnet101", "mobilenet_v2", "har_cnn",
                                      "albert_large", "transformer"])
    def test_depth_variant_names_are_subset(self, arch):
        # Depth-level servers keep a head at every stage boundary
        # (head_mode="all"), so any shallower client's names are a subset.
        model = build_model(arch, num_classes=5, head_mode="all", seed=0)
        shallow = model.variant(num_stages=2)
        full_names = set(model.state_dict())
        sub_names = set(shallow.state_dict())
        assert sub_names <= full_names

    def test_depth_variant_reduces_flops(self):
        model = build_model("resnet101", num_classes=5, seed=0)
        shallow = model.variant(num_stages=1)
        x = _input_for("resnet101", batch=1)
        with ag.no_grad():
            with ag.profile() as full_report:
                model(x)
            with ag.profile() as shallow_report:
                shallow(x)
        assert shallow_report.flops < full_report.flops

    def test_albert_depth_keeps_parameter_count(self):
        # Cross-layer sharing: fewer repeats, same parameters (minus heads).
        model = build_model("albert_xxlarge", num_classes=5, seed=0)
        shallow = model.variant(num_stages=2)
        assert shallow.num_parameters() == model.num_parameters()

    def test_variant_override_merges_kwargs(self):
        model = build_model("resnet18", num_classes=5, seed=3)
        sub = model.variant(width_mult=0.5)
        assert sub._build_kwargs["seed"] == 3
        assert sub._build_kwargs["num_classes"] == 5

    def test_invalid_num_stages_rejected(self):
        model = build_model("resnet18", num_classes=5, seed=0)
        with pytest.raises(ValueError):
            model.variant(num_stages=9)

    def test_set_trainable_stages(self):
        model = build_model("resnet18", num_classes=5, seed=0)
        model.set_trainable_stages([1], train_stem=False)
        trainable = {n for n, p in model.named_parameters() if p.requires_grad}
        assert any(n.startswith("stages.1.") for n in trainable)
        assert not any(n.startswith("stages.0.") for n in trainable)
        assert not any(n.startswith("stem.") for n in trainable)
        x = _input_for("resnet18", batch=2)
        ag.cross_entropy(model(x), np.array([0, 1])).backward()
        frozen_grads = [p.grad for n, p in model.named_parameters()
                        if n.startswith("stages.0.") and p.grad is not None]
        assert not frozen_grads


class TestWidthSlicing:
    @pytest.mark.parametrize("arch", REPRESENTATIVE)
    @pytest.mark.parametrize("mode", ["prefix", "rolling"])
    def test_extract_load_roundtrip(self, arch, mode):
        model = build_model(arch, num_classes=5, seed=0)
        sub = model.variant(width_mult=0.5)
        g_state = model.state_dict()
        maps = width_index_maps(
            {k: v.shape for k, v in g_state.items()},
            {k: v.shape for k, v in sub.state_dict().items()},
            model.state_scale_axes(), mode=mode, shift=3)
        sub.load_state_dict(extract_substate(g_state, maps))
        # Forward must run (channel wiring consistent).
        assert sub(_input_for(arch)).shape == (2, 5)

    def test_full_width_slice_is_identity(self):
        model = build_model("resnet18", num_classes=5, seed=0)
        clone = model.variant()
        g_state = model.state_dict()
        maps = width_index_maps(
            {k: v.shape for k, v in g_state.items()},
            {k: v.shape for k, v in clone.state_dict().items()},
            model.state_scale_axes(), mode="prefix")
        extracted = extract_substate(g_state, maps)
        clone.load_state_dict(extracted)
        x = _input_for("resnet18")
        with ag.no_grad():
            np.testing.assert_allclose(model.eval()(x).data,
                                       clone.eval()(x).data, rtol=1e-5)

    def test_prefix_slice_matches_manual_slice(self):
        model = build_model("har_cnn", num_classes=5, seed=0)
        sub = model.variant(width_mult=0.5)
        g_state = model.state_dict()
        maps = width_index_maps(
            {k: v.shape for k, v in g_state.items()},
            {k: v.shape for k, v in sub.state_dict().items()},
            model.state_scale_axes(), mode="prefix")
        extracted = extract_substate(g_state, maps)
        w = "stages.1.0.conv.weight"
        s_out, s_in = extracted[w].shape[:2]
        np.testing.assert_array_equal(extracted[w],
                                      g_state[w][:s_out, :s_in])

    def test_rolling_wraps_around(self):
        model = build_model("har_cnn", num_classes=5, seed=0)
        sub = model.variant(width_mult=0.5)
        g_state = model.state_dict()
        name = "stages.3.0.conv.weight"
        g_dim = g_state[name].shape[0]
        maps = width_index_maps(
            {k: v.shape for k, v in g_state.items()},
            {k: v.shape for k, v in sub.state_dict().items()},
            model.state_scale_axes(), mode="rolling", shift=g_dim - 1)
        idx = maps[name][0]
        assert idx[0] == g_dim - 1 and idx[1] == 0  # wrapped

    def test_scatter_accumulate_conservation(self):
        """Aggregating the extracted slice back reproduces the global values."""
        model = build_model("mobilenet_v2", num_classes=5, seed=0)
        sub = model.variant(width_mult=0.5)
        g_state = model.state_dict()
        maps = width_index_maps(
            {k: v.shape for k, v in g_state.items()},
            {k: v.shape for k, v in sub.state_dict().items()},
            model.state_scale_axes(), mode="prefix")
        extracted = extract_substate(g_state, maps)
        sums = zeros_like_state(g_state)
        counts = zeros_like_state(g_state)
        scatter_accumulate(sums, counts, extracted, maps, weight=2.0)
        merged = finalize_mean(sums, counts, g_state)
        for name in g_state:
            np.testing.assert_allclose(merged[name], g_state[name], rtol=1e-5)

    def test_untouched_coordinates_keep_fallback(self):
        model = build_model("har_cnn", num_classes=5, seed=0)
        sub = model.variant(width_mult=0.25)
        g_state = model.state_dict()
        maps = width_index_maps(
            {k: v.shape for k, v in g_state.items()},
            {k: v.shape for k, v in sub.state_dict().items()},
            model.state_scale_axes(), mode="prefix")
        extracted = extract_substate(g_state, maps)
        for v in extracted.values():
            v[...] = 0.0
        sums = zeros_like_state(g_state)
        counts = zeros_like_state(g_state)
        scatter_accumulate(sums, counts, extracted, maps)
        merged = finalize_mean(sums, counts, g_state)
        name = "stages.3.0.conv.weight"
        s_out = extracted[name].shape[0]
        # Sliced block zeroed, remainder untouched.
        assert np.all(merged[name][:s_out, :extracted[name].shape[1]] == 0.0)
        np.testing.assert_array_equal(merged[name][s_out:],
                                      g_state[name][s_out:])

    def test_incompatible_shapes_rejected(self):
        with pytest.raises(ValueError):
            width_index_maps({"w": (4, 4)}, {"w": (2, 4)}, {"w": ()})

    def test_unknown_parameter_rejected(self):
        with pytest.raises(KeyError):
            width_index_maps({"w": (4,)}, {"ghost": (4,)}, {})


class TestZoo:
    def test_families_complete(self):
        for family, members in MODEL_FAMILIES.items():
            for arch in members:
                assert family_of(arch) == family
                assert arch in known_architectures()

    def test_unknown_arch_rejected(self):
        with pytest.raises(ValueError):
            build_model("vgg16", num_classes=10)

    def test_family_param_ordering(self):
        """Within a family, the declared order is smallest -> largest."""
        for family in ("resnet", "albert", "mobilenet"):
            sizes = [build_model(a, num_classes=10, seed=0).num_parameters()
                     for a in MODEL_FAMILIES[family]]
            assert sizes == sorted(sizes), f"{family}: {sizes}"

    def test_same_seed_same_weights(self):
        a = build_model("resnet18", num_classes=5, seed=11)
        b = build_model("resnet18", num_classes=5, seed=11)
        for (n1, v1), (n2, v2) in zip(sorted(a.state_dict().items()),
                                      sorted(b.state_dict().items())):
            np.testing.assert_array_equal(v1, v2)

    def test_paper_scale_is_larger(self):
        tiny = build_model("resnet50", num_classes=10, seed=0)
        paper = build_model("resnet50", num_classes=10, seed=0, scale="paper")
        assert paper.num_parameters() > 10 * tiny.num_parameters()


class TestScaledChannels:
    @given(base=st.integers(1, 512),
           mult=st.sampled_from([0.25, 0.5, 0.75, 1.0]),
           divisor=st.sampled_from([1, 2, 4]))
    @settings(max_examples=60, deadline=None)
    def test_positive_and_divisible(self, base, mult, divisor):
        value = scaled_channels(base, mult, divisor)
        assert value >= 1
        assert value % divisor == 0

    @given(base=st.integers(1, 512))
    @settings(max_examples=30, deadline=None)
    def test_identity_at_full_width(self, base):
        assert scaled_channels(base, 1.0) == base

    @given(base=st.integers(4, 512), divisor=st.sampled_from([1, 2, 4]))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_multiplier(self, base, divisor):
        values = [scaled_channels(base, m, divisor)
                  for m in (0.25, 0.5, 0.75, 1.0)]
        assert values == sorted(values)


class TestIndexMapProperties:
    @given(g_dim=st.integers(2, 64), frac=st.floats(0.1, 1.0),
           shift=st.integers(0, 200))
    @settings(max_examples=60, deadline=None)
    def test_rolling_covers_each_coordinate_at_most_once(self, g_dim, frac,
                                                         shift):
        s_dim = max(1, min(g_dim, int(round(g_dim * frac))))
        maps = width_index_maps({"w": (g_dim,)}, {"w": (s_dim,)},
                                {"w": (0,)}, mode="rolling", shift=shift)
        idx = maps["w"][0]
        if idx is not None:
            assert len(np.unique(idx)) == len(idx)
            assert idx.min() >= 0 and idx.max() < g_dim

    @given(g_dim=st.integers(2, 64), frac=st.floats(0.1, 0.99))
    @settings(max_examples=40, deadline=None)
    def test_all_shifts_cover_all_coordinates(self, g_dim, frac):
        """Over g_dim consecutive rounds, rolling touches every coordinate."""
        s_dim = max(1, min(g_dim - 1, int(round(g_dim * frac))))
        touched = np.zeros(g_dim, dtype=bool)
        for shift in range(g_dim):
            maps = width_index_maps({"w": (g_dim,)}, {"w": (s_dim,)},
                                    {"w": (0,)}, mode="rolling", shift=shift)
            touched[maps["w"][0]] = True
        assert touched.all()
