"""The declarative experiment API: RunSpec, run cache, registry, CLI.

Pins the PR-3 acceptance criteria: stable spec hashing and JSON round
trips, cache hit/miss semantics ("a hit trains nothing", asserted via the
simulation run counter), bit-for-bit equivalence of the RunSpec path with
the historical imperative ``run_one`` sequence, registry completeness, and
CLI argument parsing including ``--seeds`` and ``--out json``.
"""

import dataclasses
import json

import pytest

from repro.__main__ import main as cli_main, _parse_int_list
from repro.algorithms import get_algorithm
from repro.constraints import ConstraintSpec, build_scenario
from repro.data.registry import load_dataset
from repro.experiments import (RunCache, RunSpec, aggregate_seed_rows,
                               all_artifacts, artifact_names, execute_spec,
                               format_table, get_scale, resolve_scale,
                               rows_to_csv, rows_to_json, run_one, run_suite,
                               set_default_cache, write_rows)
from repro.experiments.mapping import build_base_model
from repro.experiments.spec import spec_scale_fields
from repro.fl import simulation
from repro.fl.aggregation import ExecutionConfig
from repro.fl.client import LocalTrainConfig
from repro.fl.serialization import history_to_dict
from repro.fl.simulation import SimulationConfig, run_simulation
from repro.metrics import MetricSummary, aggregate_summaries

SMOKE = ConstraintSpec(constraints=("computation",))


def _smoke_spec(**overrides) -> RunSpec:
    base = dict(algorithm="sheterofl", dataset="harbox", constraints=SMOKE,
                scale="smoke", seed=0)
    base.update(overrides)
    return RunSpec(**base)


class TestRunSpecSerialization:
    def _rich_spec(self) -> RunSpec:
        return RunSpec(
            algorithm="depthfl", dataset="cifar10",
            constraints=ConstraintSpec(constraints=("memory", "computation"),
                                       availability="dropout",
                                       availability_kwargs={"prob": 0.2}),
            scale="smoke", scale_overrides={"num_rounds": 7},
            execution=ExecutionConfig(policy="buffered", buffer_size=3,
                                      availability="dropout",
                                      availability_kwargs={"prob": 0.2}),
            partition_scheme="dirichlet", alpha=0.3, num_clients=6,
            seed=3, tag="t")

    def test_dict_round_trip(self):
        spec = self._rich_spec()
        assert RunSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = self._rich_spec()
        assert RunSpec.from_json(spec.to_json()) == spec
        # canonical form is deterministic
        assert spec.to_json() == self._rich_spec().to_json()

    def test_hash_stable(self):
        assert self._rich_spec().content_hash() == \
            self._rich_spec().content_hash()
        assert _smoke_spec().content_hash() == _smoke_spec().content_hash()

    def test_any_field_change_changes_hash(self):
        spec = self._rich_spec()
        base_hash = spec.content_hash()
        changed = {
            "algorithm": "fjord",
            "dataset": "harbox",
            "constraints": ConstraintSpec(constraints=("communication",)),
            "scale": "demo",
            "scale_overrides": {"num_rounds": 8},
            "execution": None,
            "partition_scheme": "iid",
            "alpha": 0.7,
            "num_clients": 9,
            "seed": 4,
            "tag": "other",
        }
        # Parallelism fields are execution mechanics: by the executor
        # determinism contract they cannot change results, so they are
        # excluded from serialisation and hashing (asserted below).
        mechanics = {"workers": 4, "executor": "process"}
        assert set(changed) | set(mechanics) == \
            {f.name for f in dataclasses.fields(RunSpec)}
        for field_name, value in changed.items():
            mutated = spec.replace(**{field_name: value})
            assert mutated.content_hash() != base_hash, field_name
        for field_name, value in mechanics.items():
            mutated = spec.replace(**{field_name: value})
            assert mutated.content_hash() == base_hash, field_name
            assert field_name not in mutated.to_dict()

    def test_version_guard(self):
        payload = _smoke_spec().to_dict()
        payload["version"] = 999
        with pytest.raises(ValueError):
            RunSpec.from_dict(payload)

    def test_spec_scale_fields(self):
        assert spec_scale_fields("demo") == ("demo", {})
        preset = get_scale("smoke")
        assert spec_scale_fields(preset) == ("smoke", {})
        tweaked = preset.with_overrides(num_rounds=9)
        assert spec_scale_fields(tweaked) == ("smoke", {"num_rounds": 9})

    def test_resolved_scale_overrides(self):
        spec = _smoke_spec(scale_overrides={"num_rounds": 2})
        scale = spec.resolved_scale()
        assert scale.num_rounds == 2
        assert scale.batch_size == get_scale("smoke").batch_size

    def test_unknown_override_raises(self):
        with pytest.raises(ValueError, match="unknown scale override"):
            resolve_scale("smoke", {"num_round": 2})

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError, match="unknown scale"):
            resolve_scale("galactic")

    def test_resolved_execution_availability_fallback(self):
        spec = _smoke_spec(constraints=ConstraintSpec(
            constraints=("computation",), availability="dropout",
            availability_kwargs={"prob": 0.1}))
        execution = spec.resolved_execution()
        assert execution is not None and execution.availability == "dropout"
        assert _smoke_spec().resolved_execution() is None


class TestRunCache:
    def test_miss_then_hit_trains_nothing(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _smoke_spec()
        first = execute_spec(spec, cache=cache)
        assert not first.from_cache and cache.misses == 1
        before = simulation.RUN_COUNT
        second = execute_spec(spec, cache=cache)
        assert second.from_cache and cache.hits == 1
        assert simulation.RUN_COUNT == before, \
            "cache hit must not run a simulation"
        assert history_to_dict(second.history) == \
            history_to_dict(first.history)
        assert second.num_classes == first.num_classes
        assert second.level_distribution() == first.level_distribution()
        assert second.scenario is None

    def test_no_cache_always_runs(self, tmp_path):
        spec = _smoke_spec()
        before = simulation.RUN_COUNT
        execute_spec(spec, cache=None)
        execute_spec(spec, cache=None)
        assert simulation.RUN_COUNT == before + 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = _smoke_spec()
        execute_spec(spec, cache=cache)
        cache.path_for(spec).write_text("{not json")
        result = execute_spec(spec, cache=cache)
        assert not result.from_cache

    def test_different_seed_different_entry(self, tmp_path):
        cache = RunCache(tmp_path)
        execute_spec(_smoke_spec(), cache=cache)
        result = execute_spec(_smoke_spec(seed=1), cache=cache)
        assert not result.from_cache
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_mutating_hooks_require_tag(self, tmp_path):
        cache = RunCache(tmp_path)
        with pytest.raises(ValueError, match="tag"):
            execute_spec(_smoke_spec(), cache=cache,
                         mutate=lambda algorithm: None)


class TestLegacyEquivalence:
    """The RunSpec path reproduces the pre-RunSpec imperative sequence."""

    def _legacy_run(self, algorithm, dataset_name, spec, scale_name, seed):
        scale = get_scale(scale_name)
        dataset = load_dataset(dataset_name, seed=seed,
                               **scale.kwargs_for(dataset_name))
        level = get_algorithm(algorithm).level
        model_level = "width" if level == "homogeneous" else level
        base_model = build_base_model(dataset, model_level, seed=seed)
        scenario = build_scenario(
            algorithm, base_model, dataset, scale.clients_for(dataset_name),
            spec,
            train_config=LocalTrainConfig(batch_size=scale.batch_size,
                                          local_epochs=scale.local_epochs,
                                          max_batches=scale.max_batches),
            partition_scheme="auto", alpha=0.5, seed=seed,
            eval_max_samples=scale.eval_max_samples)
        execution = None
        if spec.availability != "always_on":
            execution = spec.execution_config()
        sim = SimulationConfig(num_rounds=scale.num_rounds,
                               sample_ratio=scale.sample_ratio,
                               eval_every=scale.eval_every, seed=seed,
                               execution=execution)
        return run_simulation(scenario.algorithm, sim)

    def test_bit_for_bit_always_on(self):
        legacy = self._legacy_run("sheterofl", "harbox", SMOKE, "smoke", 0)
        modern = run_one("sheterofl", "harbox", SMOKE, scale="smoke",
                         seed=0, cache=None)
        assert history_to_dict(modern.history) == history_to_dict(legacy)

    def test_bit_for_bit_availability_scenario(self):
        spec = ConstraintSpec(constraints=("computation",),
                              availability="dropout",
                              availability_kwargs={"prob": 0.2})
        legacy = self._legacy_run("fedepth", "harbox", spec, "smoke", 1)
        modern = run_one("fedepth", "harbox", spec, scale="smoke", seed=1,
                         cache=None)
        assert history_to_dict(modern.history) == history_to_dict(legacy)


class TestMultiSeed:
    def test_run_suite_single_seed_rows_unchanged(self):
        summaries = run_suite(["sheterofl"], "harbox", SMOKE, scale="smoke",
                              seed=0, cache=None)
        row = summaries[0].as_row()
        assert set(row) == {"algorithm", "dataset", "global_acc", "tta_s",
                            "stability_var", "effectiveness"}
        assert summaries[0].num_seeds == 1

    def test_run_suite_seed_sweep(self):
        summaries = run_suite(["sheterofl"], "harbox", SMOKE, scale="smoke",
                              seeds=[0, 1], cache=None)
        summary = summaries[0]
        assert summary.num_seeds == 2
        assert summary.global_accuracy_std is not None
        row = summary.as_row()
        assert row["seeds"] == 2 and "global_acc_std" in row
        text = format_table([row])
        assert "±" in text
        assert "global_acc_std" not in text.splitlines()[0]

    def test_aggregate_summaries_guards(self):
        a = MetricSummary("a", "d", 0.5, 10.0, 0.01, 0.1)
        b = MetricSummary("b", "d", 0.6, None, 0.02, 0.2)
        assert aggregate_summaries([a]) is a
        with pytest.raises(ValueError):
            aggregate_summaries([a, b])

    def test_aggregate_summaries_tta_none_handling(self):
        rows = [MetricSummary("a", "d", 0.5, None, 0.01, None),
                MetricSummary("a", "d", 0.7, 20.0, 0.03, None)]
        merged = aggregate_summaries(rows)
        assert merged.global_accuracy == pytest.approx(0.6)
        assert merged.time_to_accuracy_s == pytest.approx(20.0)
        assert merged.time_to_accuracy_s_std is None
        assert merged.effectiveness is None

    def test_aggregate_seed_rows(self):
        per_seed = [[{"algorithm": "a", "accuracy": 0.4}],
                    [{"algorithm": "a", "accuracy": 0.6}]]
        merged = aggregate_seed_rows(per_seed, ["accuracy"])
        assert merged[0]["accuracy"] == pytest.approx(0.5)
        assert merged[0]["accuracy_std"] is not None
        assert merged[0]["seeds"] == 2

    def test_aggregate_seed_rows_identity_mismatch(self):
        per_seed = [[{"algorithm": "a", "accuracy": 0.4}],
                    [{"algorithm": "b", "accuracy": 0.6}]]
        with pytest.raises(ValueError, match="identity"):
            aggregate_seed_rows(per_seed, ["accuracy"])


class TestNumClassesPlumbing:
    def test_run_result_exposes_num_classes(self):
        result = run_one("sheterofl", "harbox", SMOKE, scale="smoke",
                         cache=None)
        scale = get_scale("smoke")
        dataset = load_dataset("harbox", seed=0,
                               **scale.kwargs_for("harbox"))
        assert result.num_classes == dataset.num_classes
        assert result.scenario.num_classes == dataset.num_classes

    def test_run_suite_loads_dataset_once_per_run(self, monkeypatch):
        from repro.experiments import runner
        calls = []
        original = runner.load_dataset

        def counting(name, **kwargs):
            calls.append(name)
            return original(name, **kwargs)

        monkeypatch.setattr(runner, "load_dataset", counting)
        run_suite(["sheterofl", "fjord"], "harbox", SMOKE, scale="smoke",
                  cache=None)
        # 2 algorithms + 1 baseline; no extra reload for num_classes.
        assert len(calls) == 3


class TestRegistry:
    EXPECTED = {"table1", "table2", "table3", "fig1", "fig3", "fig4", "fig5",
                "fig6", "fig7", "fig8", "fig9", "ablations", "async_compare",
                "fault_compare", "telemetry_report"}

    def test_registry_complete_and_sorted(self):
        names = artifact_names()
        assert set(names) == self.EXPECTED
        assert names == sorted(names)
        assert len(names) == len(set(names))

    def test_every_artifact_lives_in_its_module(self):
        for name, artifact in all_artifacts().items():
            assert artifact.module == f"repro.experiments.{name}"
            assert callable(artifact.run)
            assert "scale" in artifact.params

    def test_describe_every_artifact(self, capsys):
        for name in artifact_names():
            assert cli_main(["describe", name]) == 0
            out = capsys.readouterr().out
            assert name in out and "options:" in out

    def test_duplicate_registration_rejected(self):
        from repro.experiments.registry import register_artifact

        def imposter():  # pragma: no cover - registration must fail
            return []

        imposter.__module__ = "repro.experiments.imposter"
        with pytest.raises(ValueError, match="already registered"):
            register_artifact("fig4")(imposter)


class TestCLI:
    def test_parse_int_list(self):
        assert _parse_int_list("0,1,2") == [0, 1, 2]
        import argparse
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_int_list("0,x")

    def test_run_out_json(self, capsys):
        assert cli_main(["run", "table3", "--out", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {r["device"] for r in rows} >= {"jetson_nano"}

    def test_run_out_csv(self, capsys):
        assert cli_main(["run", "table3", "--out", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("device,")

    def test_unknown_artifact_is_exit_2(self, capsys):
        assert cli_main(["run", "fig99"]) == 2
        assert cli_main(["fig99"]) == 2

    def test_deprecated_positional_form(self, capsys):
        assert cli_main(["table3"]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "raspberry_pi_4b" in captured.out

    def test_unsupported_option_warns(self, capsys):
        assert cli_main(["run", "table3", "--rounds", "3"]) == 0
        assert "does not support --rounds" in capsys.readouterr().err

    def test_run_with_seeds_and_cache(self, tmp_path, capsys):
        argv = ["run", "fig4", "--scale", "smoke", "--datasets", "harbox",
                "--algorithms", "sheterofl", "--seeds", "0", "--out", "json",
                "--cache-dir", str(tmp_path)]
        assert cli_main(argv) == 0
        first = capsys.readouterr()
        assert "misses=0" not in first.err
        before = simulation.RUN_COUNT
        assert cli_main(argv) == 0
        second = capsys.readouterr()
        assert simulation.RUN_COUNT == before, \
            "second CLI invocation must be fully cache-served"
        assert "misses=0" in second.err
        assert json.loads(second.out) == json.loads(first.out)

    def test_no_cache_flag_bypasses(self, tmp_path, capsys):
        argv = ["run", "fig4", "--scale", "smoke", "--datasets", "harbox",
                "--algorithms", "sheterofl", "--no-cache"]
        before = simulation.RUN_COUNT
        assert cli_main(argv) == 0
        assert simulation.RUN_COUNT > before
        assert "# cache:" not in capsys.readouterr().err

    def test_direct_module_execution(self, tmp_path):
        """`python -m repro.experiments.<artifact>` registers the module
        once as __main__ and once under its real name; that must not trip
        the duplicate-registration guard."""
        import pathlib
        import subprocess
        import sys
        out = subprocess.run(
            [sys.executable, "-m", "repro.experiments.table3"],
            capture_output=True, text=True,
            cwd=pathlib.Path(__file__).resolve().parent.parent)
        assert out.returncode == 0, out.stderr
        assert "raspberry_pi_4b" in out.stdout

    def test_default_cache_restored_after_run(self, tmp_path):
        from repro.experiments import default_cache
        sentinel = RunCache(tmp_path / "outer")
        previous = set_default_cache(sentinel)
        try:
            cli_main(["run", "table3", "--cache-dir",
                      str(tmp_path / "inner")])
            assert default_cache() is sentinel
        finally:
            set_default_cache(previous)


class TestReportingWriters:
    ROWS = [{"a": 1, "b": None}, {"a": 2.5, "b": "x", "c": 3}]

    def test_json_round_trip(self):
        assert json.loads(rows_to_json(self.ROWS)) == self.ROWS

    def test_csv_union_and_none(self):
        text = rows_to_csv(self.ROWS)
        lines = text.splitlines()
        assert lines[0] == "a,b,c"
        assert lines[1] == "1,,"

    def test_write_rows_dispatch(self):
        assert write_rows(self.ROWS, out="csv").startswith("a,b,c")
        assert json.loads(write_rows(self.ROWS, out="json")) == self.ROWS
        with pytest.raises(ValueError):
            write_rows(self.ROWS, out="yaml")

    def test_format_table_std_merging(self):
        rows = [{"algorithm": "a", "acc": 0.5, "acc_std": 0.1, "seeds": 2}]
        text = format_table(rows)
        assert "0.5 ± 0.1" in text
        assert "acc_std" not in text
        # single-seed rows (no std keys) render exactly as before
        plain = format_table([{"algorithm": "a", "acc": 0.5}])
        assert "±" not in plain
