"""Tests for the ablation harness, CLI entry point and example scripts."""

import pathlib
import subprocess
import sys

import pytest

from repro.experiments import ablations


class TestAblations:
    def test_registry_covers_design_choices(self):
        assert set(ablations.ABLATIONS) == {
            "depthfl_no_distill", "inclusivefl_no_momentum",
            "fjord_no_ordered_dropout", "fedrolex_static_window"}

    def test_smoke_ablation_rows(self):
        rows = ablations.run(scale="smoke", names=["fedrolex_static_window"])
        assert len(rows) == 1
        row = rows[0]
        assert {"acc_full", "acc_ablated", "mechanism_gain"} <= set(row)
        assert row["mechanism_gain"] == pytest.approx(
            row["acc_full"] - row["acc_ablated"], abs=1e-6)

    def test_mutations_change_behaviour(self):
        """Each mutation actually disables its mechanism."""
        from repro.algorithms import ALGORITHMS
        from repro.data import load_dataset, partition_dataset
        from repro.hw import sample_fleet
        from repro.models import build_model
        from repro.algorithms import assign_levels_uniformly

        ds = load_dataset("harbox", seed=0, num_users=8, samples_per_user=8,
                          test_size=40)
        fleet = sample_fleet(8, seed=1)
        shards = partition_dataset(ds, 8, seed=2)

        def make(name):
            cls = ALGORITHMS[name]
            base = build_model("har_cnn", num_classes=ds.num_classes, seed=0,
                               **cls.base_model_overrides)
            pool = cls.build_pool(base)
            clients = assign_levels_uniformly(pool, fleet, ds, shards)
            return cls(base, ds, clients, pool=pool)

        depthfl = make("depthfl")
        ablations.ABLATIONS["depthfl_no_distill"][2](depthfl)
        assert depthfl.distill_weight == 0.0

        inclusive = make("inclusivefl")
        ablations.ABLATIONS["inclusivefl_no_momentum"][2](inclusive)
        assert inclusive.momentum_beta == 0.0

        fedrolex = make("fedrolex")
        ablations.ABLATIONS["fedrolex_static_window"][2](fedrolex)
        assert fedrolex.rolling_shift(5) == 0


class TestCLI:
    def test_list(self):
        out = subprocess.run([sys.executable, "-m", "repro", "list"],
                             capture_output=True, text=True)
        assert out.returncode == 0
        assert "table1" in out.stdout and "fig9" in out.stdout

    def test_unknown_artifact(self):
        out = subprocess.run([sys.executable, "-m", "repro", "fig99"],
                             capture_output=True, text=True)
        assert out.returncode == 2

    def test_table3_via_cli(self):
        out = subprocess.run([sys.executable, "-m", "repro", "table3"],
                             capture_output=True, text=True)
        assert out.returncode == 0
        assert "raspberry_pi_4b" in out.stdout


class TestExamples:
    """Examples run at demo scale (minutes); here we verify they compile and
    reference only real public API names."""

    @pytest.mark.parametrize("script", sorted(
        pathlib.Path(__file__).resolve().parent.parent.joinpath(
            "examples").glob("*.py")))
    def test_compiles(self, script):
        source = script.read_text()
        compile(source, str(script), "exec")
        assert "def main()" in source

    def test_fast_example_runs(self):
        out = subprocess.run(
            [sys.executable, "examples/model_pool_tour.py"],
            capture_output=True, text=True,
            cwd=pathlib.Path(__file__).resolve().parent.parent)
        assert out.returncode == 0
        assert "largest variant" in out.stdout
