"""Tests for the hardware substrate: measurement, cost models, fleet, pool."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw import (measure_model, dummy_input, get_device, EDGE_DEVICES,
                      CostModel, DEFAULT_COST_MODEL, sample_fleet,
                      MEMORY_TIERS, ModelPool)
from repro.models import build_model
from repro.models.base import depth_variant_of


@pytest.fixture(scope="module")
def resnet():
    return build_model("resnet18", num_classes=10, seed=0)


class TestMeasurement:
    def test_params_match_model(self, resnet):
        stats = measure_model(resnet)
        assert stats.params == resnet.num_parameters()
        assert stats.trainable_params == stats.params

    def test_flops_scale_with_width(self, resnet):
        full = measure_model(resnet)
        half = measure_model(resnet.variant(width_mult=0.5))
        # Conv FLOPs scale ~quadratically in the multiplier.
        assert 0.15 < half.flops_per_sample / full.flops_per_sample < 0.55

    def test_depth_variant_cheaper_but_activation_heavy(self):
        """The Table I effect: depth x0.5 keeps early high-res activations."""
        base = build_model("resnet101", num_classes=10, seed=0)
        width = measure_model(base.variant(width_mult=0.5))
        depth = measure_model(depth_variant_of(base, 0.5, head_mode="all"))
        assert depth.activation_bytes_per_sample > width.activation_bytes_per_sample

    def test_frozen_params_counted(self, resnet):
        model = resnet.variant()
        model.set_trainable_stages([1])
        stats = measure_model(model)
        assert stats.trainable_params < stats.params

    def test_dummy_input_shapes(self):
        assert dummy_input(build_model("resnet18", num_classes=3),
                           batch_size=2).shape == (2, 3, 16, 16)
        assert dummy_input(build_model("har_cnn", num_classes=3),
                           batch_size=2).shape == (2, 9, 8, 4)
        tokens = dummy_input(build_model("transformer", num_classes=3),
                             batch_size=2)
        assert tokens.shape[0] == 2 and tokens.dtype.kind == "i"

    def test_measure_restores_training_mode(self, resnet):
        resnet.train()
        measure_model(resnet)
        assert resnet.training

    def test_batch_size_invariance(self, resnet):
        one = measure_model(resnet, dummy_input(resnet, 1))
        four = measure_model(resnet, dummy_input(resnet, 4))
        assert abs(one.flops_per_sample - four.flops_per_sample) \
            / one.flops_per_sample < 0.01


class TestCostModel:
    def test_training_time_monotone_in_flops(self, resnet):
        cm = DEFAULT_COST_MODEL
        device = get_device("jetson_nano")
        small = measure_model(resnet.variant(width_mult=0.25))
        large = measure_model(resnet)
        assert cm.training_time_s(small, device, 100) < \
            cm.training_time_s(large, device, 100)

    def test_faster_device_trains_faster(self, resnet):
        cm = DEFAULT_COST_MODEL
        stats = measure_model(resnet)
        t_orin = cm.training_time_s(stats, get_device("jetson_orin_nx"), 100)
        t_rpi = cm.training_time_s(stats, get_device("raspberry_pi_4b"), 100)
        assert t_orin < t_rpi

    def test_training_time_linear_in_samples(self, resnet):
        cm = CostModel()
        device = get_device("jetson_nano")
        stats = measure_model(resnet)
        t100 = cm.training_time_s(stats, device, 100)
        t200 = cm.training_time_s(stats, device, 200)
        compute100 = t100 - device.round_overhead_s
        compute200 = t200 - device.round_overhead_s
        assert abs(compute200 - 2 * compute100) < 1e-6

    def test_communication_time_uses_both_directions(self, resnet):
        cm = DEFAULT_COST_MODEL
        device = get_device("jetson_nano")
        stats = measure_model(resnet)
        expected = stats.param_bytes / device.downlink_bps + \
            stats.param_bytes / device.uplink_bps
        assert abs(cm.communication_time_s(stats, device) - expected) < 1e-9

    def test_round_time_is_train_plus_comm(self, resnet):
        cm = DEFAULT_COST_MODEL
        device = get_device("jetson_nano")
        stats = measure_model(resnet)
        expected = cm.training_time_s(stats, device, 100) \
            + cm.communication_time_s(stats, device)
        assert abs(cm.round_time_s(stats, device, 100) - expected) < 1e-9

    def test_fleet_round_time_quantile_brackets_fleet(self, resnet):
        cm = DEFAULT_COST_MODEL
        stats = measure_model(resnet)
        devices = [cap.as_device() for cap in sample_fleet(20, seed=0)]
        times = [cm.round_time_s(stats, d, 100) for d in devices]
        q80 = cm.fleet_round_time_quantile(stats, devices, 0.8, 100)
        assert min(times) <= q80 <= max(times)
        assert q80 >= cm.fleet_round_time_quantile(stats, devices, 0.2, 100)

    def test_memory_monotone_in_batch(self, resnet):
        cm = DEFAULT_COST_MODEL
        stats = measure_model(resnet)
        assert cm.training_memory_bytes(stats, 4) < \
            cm.training_memory_bytes(stats, 32)

    def test_freezing_reduces_memory(self, resnet):
        cm = DEFAULT_COST_MODEL
        frozen = resnet.variant()
        frozen.set_trainable_stages([3], train_stem=False)
        assert cm.training_memory_bytes(measure_model(frozen), 8) < \
            cm.training_memory_bytes(measure_model(resnet), 8)

    def test_fits_in_memory(self, resnet):
        cm = DEFAULT_COST_MODEL
        stats = measure_model(resnet)
        assert cm.fits_in_memory(stats, get_device("jetson_orin_nx"))

    def test_table1_calibration(self):
        """Paper-scale R101 x0.5 round time lands near Table I's numbers."""
        cm = DEFAULT_COST_MODEL
        base = build_model("resnet101", num_classes=100, seed=0, scale="paper")
        stats = measure_model(base.variant(width_mult=0.5))
        t_nano = cm.training_time_s(stats, get_device("jetson_nano"), 500)
        t_orin = cm.training_time_s(stats, get_device("jetson_orin_nx"), 500)
        assert 350 < t_nano < 520      # paper: 430.24
        assert 170 < t_orin < 260      # paper: 212.72

    def test_table1_depth_memory_pattern(self):
        """Depth-pruned x0.5 uses more training memory than width x0.5."""
        cm = DEFAULT_COST_MODEL
        base = build_model("resnet101", num_classes=100, seed=0, scale="paper")
        width = measure_model(base.variant(width_mult=0.5))
        depth = measure_model(depth_variant_of(base, 0.5, head_mode="all"))
        assert cm.training_memory_bytes(depth, 8) > \
            cm.training_memory_bytes(width, 8)


class TestFleet:
    def test_deterministic(self):
        a = sample_fleet(20, seed=5)
        b = sample_fleet(20, seed=5)
        assert [c.compute_flops for c in a] == [c.compute_flops for c in b]

    def test_size_and_ids(self):
        fleet = sample_fleet(30, seed=0)
        assert len(fleet) == 30
        assert [c.client_id for c in fleet] == list(range(30))

    def test_heterogeneity_spread(self):
        fleet = sample_fleet(400, seed=1)
        compute = np.array([c.compute_flops for c in fleet])
        assert np.percentile(compute, 95) / np.percentile(compute, 5) > 4.0

    def test_memory_tiers_present(self):
        fleet = sample_fleet(500, seed=2)
        tiers = {c.tier for c in fleet}
        assert tiers == {t[0] for t in MEMORY_TIERS}

    def test_tier_shares_roughly_match(self):
        fleet = sample_fleet(2000, seed=3)
        for label, _, _, share in MEMORY_TIERS:
            observed = sum(c.tier == label for c in fleet) / len(fleet)
            assert abs(observed - share) < 0.06

    def test_no_gpu_devices_slower(self):
        fleet = sample_fleet(600, seed=4)
        gpu = np.mean([c.compute_flops for c in fleet if c.has_gpu])
        cpu = np.mean([c.compute_flops for c in fleet if not c.has_gpu])
        assert cpu < gpu

    def test_as_device_roundtrip(self):
        cap = sample_fleet(1, seed=0)[0]
        device = cap.as_device()
        assert device.effective_train_flops == cap.compute_flops
        assert device.memory_bytes == cap.memory_bytes


class TestModelPool:
    WIDTHS = {"x1.00": {"width_mult": 1.0}, "x0.75": {"width_mult": 0.75},
              "x0.50": {"width_mult": 0.5}, "x0.25": {"width_mult": 0.25}}

    @pytest.fixture(scope="class")
    def pool(self):
        base = build_model("resnet18", num_classes=10, seed=0)
        return ModelPool.from_variants(base, self.WIDTHS)

    def test_ordered_by_flops(self, pool):
        flops = [e.stats.flops_per_sample for e in pool]
        assert flops == sorted(flops)
        assert pool.smallest.key == "x0.25"
        assert pool.largest.key == "x1.00"

    def test_get_by_key(self, pool):
        assert pool.get("x0.50").proportion == 0.5
        with pytest.raises(KeyError):
            pool.get("x0.33")

    def test_build_reconstructs_variant(self, pool):
        model = pool.get("x0.50").build(pool.base_model)
        assert model.num_parameters() == \
            pool.base_model.variant(width_mult=0.5).num_parameters()

    def test_time_constrained_selection_monotone(self, pool):
        device = get_device("jetson_nano")
        tight = pool.largest_within_time(device, deadline_s=6.0,
                                         num_samples=200)
        loose = pool.largest_within_time(device, deadline_s=1e9,
                                         num_samples=200)
        assert loose.key == "x1.00"
        assert tight.stats.flops_per_sample <= loose.stats.flops_per_sample

    def test_comm_constrained_selection(self, pool):
        device = get_device("jetson_nano")
        loose = pool.largest_within_comm(device, budget_s=1e9)
        tight = pool.largest_within_comm(device, budget_s=1e-6)
        assert loose.key == "x1.00"
        assert tight.key == "x0.25"  # falls back to smallest

    def test_memory_constrained_selection(self, pool):
        orin = get_device("jetson_orin_nx")
        assert pool.largest_within_memory(orin).key == "x1.00"

    def test_empty_pool_rejected(self):
        base = build_model("resnet18", num_classes=10, seed=0)
        with pytest.raises(ValueError):
            ModelPool(base, [])
