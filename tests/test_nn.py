"""Tests for the module system, layers, containers and optimisers."""

import numpy as np
import pytest

from repro import nn
from repro import autograd as ag
from repro.autograd import Tensor, check_gradients


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestModuleSystem:
    def _mlp(self):
        rng = _rng()
        return nn.Sequential(nn.Linear(4, 8, rng), nn.Linear(8, 3, rng))

    def test_named_parameters_paths(self):
        mlp = self._mlp()
        names = {name for name, _ in mlp.named_parameters()}
        assert names == {"0.weight", "0.bias", "1.weight", "1.bias"}

    def test_state_dict_roundtrip(self):
        mlp = self._mlp()
        state = mlp.state_dict()
        other = self._mlp()
        for value in other.state_dict().values():
            value += 1.0  # make sure load actually changes something
        other.load_state_dict(state)
        for key, value in other.state_dict().items():
            np.testing.assert_array_equal(value, state[key])

    def test_state_dict_is_a_copy(self):
        mlp = self._mlp()
        state = mlp.state_dict()
        state["0.weight"][...] = 99.0
        assert not np.any(mlp.state_dict()["0.weight"] == 99.0)

    def test_load_state_dict_shape_mismatch(self):
        mlp = self._mlp()
        state = mlp.state_dict()
        state["0.weight"] = np.zeros((2, 2), np.float32)
        with pytest.raises(ValueError, match="shape mismatch"):
            mlp.load_state_dict(state)

    def test_load_state_dict_missing_key(self):
        mlp = self._mlp()
        state = mlp.state_dict()
        del state["0.weight"]
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)

    def test_load_state_dict_extra_key(self):
        mlp = self._mlp()
        state = mlp.state_dict()
        state["ghost"] = np.zeros(3, np.float32)
        with pytest.raises(KeyError):
            mlp.load_state_dict(state)
        mlp.load_state_dict(state, strict=False)  # tolerated when not strict

    def test_train_eval_propagates(self):
        mlp = self._mlp()
        mlp.eval()
        assert all(not m.training for _, m in mlp.named_modules())
        mlp.train()
        assert all(m.training for _, m in mlp.named_modules())

    def test_buffers_in_state_dict(self):
        bn = nn.BatchNorm2d(4)
        state = bn.state_dict()
        assert "running_mean" in state and "running_var" in state

    def test_scale_axes_metadata(self):
        rng = _rng()
        conv = nn.Conv2d(3, 8, 3, rng, scale_in=False)
        assert conv.weight.scale_axes == (0,)
        conv2 = nn.Conv2d(8, 8, 3, rng)
        assert conv2.weight.scale_axes == (0, 1)
        dw = nn.Conv2d(8, 8, 3, rng, groups=8)
        assert dw.weight.scale_axes == (0,)
        bn = nn.BatchNorm2d(8)
        axes = bn.state_scale_axes()
        assert axes["running_mean"] == (0,)
        assert axes["weight"] == (0,)

    def test_num_parameters(self):
        mlp = self._mlp()
        assert mlp.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3


class TestLayers:
    def test_linear_forward_shape(self):
        layer = nn.Linear(5, 7, _rng())
        out = layer(Tensor(np.zeros((3, 5), np.float32)))
        assert out.shape == (3, 7)

    def test_conv_forward_shape(self):
        layer = nn.Conv2d(3, 6, 3, _rng(), stride=2, padding=1)
        out = layer(Tensor(np.zeros((2, 3, 8, 8), np.float32)))
        assert out.shape == (2, 6, 4, 4)

    def test_batchnorm_normalises(self):
        bn = nn.BatchNorm2d(3)
        rng = _rng(1)
        x = Tensor(rng.standard_normal((16, 3, 4, 4)) * 5 + 2)
        out = bn(x)
        assert abs(out.data.mean()) < 1e-5
        assert abs(out.data.std() - 1.0) < 1e-2

    def test_embedding_shape(self):
        emb = nn.Embedding(20, 8, _rng())
        out = emb(np.array([[0, 1], [2, 3], [4, 5]]))
        assert out.shape == (3, 2, 8)

    def test_dropout_deterministic_given_seed(self):
        d1, d2 = nn.Dropout(0.5, seed=7), nn.Dropout(0.5, seed=7)
        x = Tensor(np.ones((4, 4), np.float32))
        np.testing.assert_array_equal(d1(x).data, d2(x).data)

    def test_sequential_iteration(self):
        seq = nn.Sequential(nn.Identity(), nn.Identity())
        assert len(seq) == 2
        seq.append(nn.Identity())
        assert len(seq) == 3
        assert isinstance(seq[2], nn.Identity)

    def test_module_list_not_callable(self):
        ml = nn.ModuleList([nn.Identity()])
        with pytest.raises(RuntimeError):
            ml(1)

    def test_attention_shapes(self):
        attn = nn.MultiHeadAttention(8, 2, _rng())
        x = Tensor(np.zeros((2, 5, 8), np.float32))
        assert attn(x).shape == (2, 5, 8)

    def test_attention_grad(self):
        rng = _rng(2)
        attn = nn.MultiHeadAttention(4, 2, rng)
        for p in attn.parameters():
            p.data = p.data.astype(np.float64)
        x = Tensor(rng.standard_normal((2, 3, 4)), requires_grad=True)
        check_gradients(lambda: attn(x).sum(), [x] + attn.parameters())

    def test_transformer_layer_shapes(self):
        layer = nn.TransformerEncoderLayer(8, 2, 16, _rng())
        x = Tensor(np.zeros((2, 5, 8), np.float32))
        assert layer(x).shape == (2, 5, 8)


class TestOptim:
    def _quadratic_problem(self):
        rng = _rng(3)
        target = rng.standard_normal((4, 4)).astype(np.float32)
        param = nn.Parameter(np.zeros((4, 4), np.float32))
        return param, target

    def test_sgd_converges(self):
        param, target = self._quadratic_problem()
        opt = nn.SGD([param], lr=0.3)
        for _ in range(100):
            opt.zero_grad()
            loss = ag.mse_loss(param, target)
            loss.backward()
            opt.step()
        assert ag.mse_loss(param, target).item() < 1e-3

    def test_sgd_momentum_converges(self):
        param, target = self._quadratic_problem()
        opt = nn.SGD([param], lr=0.1, momentum=0.9)
        for _ in range(100):
            opt.zero_grad()
            ag.mse_loss(param, target).backward()
            opt.step()
        assert ag.mse_loss(param, target).item() < 1e-3

    def test_adam_converges(self):
        param, target = self._quadratic_problem()
        opt = nn.Adam([param], lr=0.05)
        for _ in range(200):
            opt.zero_grad()
            ag.mse_loss(param, target).backward()
            opt.step()
        assert ag.mse_loss(param, target).item() < 1e-3

    def test_weight_decay_shrinks(self):
        param = nn.Parameter(np.ones((4,), np.float32))
        opt = nn.SGD([param], lr=0.1, weight_decay=0.5)
        opt.zero_grad()
        (param * 0.0).sum().backward()
        opt.step()
        assert np.all(param.data < 1.0)

    def test_grad_clipping(self):
        param = nn.Parameter(np.ones((4,), np.float32))
        opt = nn.SGD([param], lr=1.0, max_grad_norm=1.0)
        param.grad = np.full((4,), 100.0, np.float32)
        opt.step()
        # Update magnitude bounded by lr * max_norm.
        assert np.linalg.norm(1.0 - param.data) <= 1.0 + 1e-5

    def test_invalid_lr_rejected(self):
        with pytest.raises(ValueError):
            nn.SGD([], lr=0.0)

    def test_mlp_learns_xor(self):
        rng = _rng(4)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], np.float32)
        y = np.array([0, 1, 1, 0])
        model = nn.Sequential(nn.Linear(2, 16, rng), _Relu(),
                              nn.Linear(16, 2, rng))
        opt = nn.Adam(model.parameters(), lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            loss = ag.cross_entropy(model(Tensor(x)), y)
            loss.backward()
            opt.step()
        preds = model(Tensor(x)).data.argmax(axis=1)
        np.testing.assert_array_equal(preds, y)


class _Relu(nn.Module):
    def forward(self, x):
        return ag.relu(x)
