"""Fast-path validation for the rewritten autograd hot path.

The strided-im2col conv2d, slice-fast-path getitem, reduceat embedding
scatter and the stash-free backward engine are checked here against
*independent* references: a convolution composed purely from separately
grad-checked primitives (pad/slice/matmul/concat), numpy ``np.add.at``
scatters, and central-difference numerical gradients.
"""

import numpy as np
import pytest

from repro import autograd as ag
from repro import nn
from repro.autograd import Tensor, check_gradients
from repro.autograd.grad_check import compare_gradients


def _t(shape, seed=0, scale=1.0):
    """Float64 test tensor: central differences need the extra precision."""
    rng = np.random.default_rng(seed)
    return Tensor(rng.standard_normal(shape) * scale, requires_grad=True)


def conv2d_reference(x, weight, bias, stride, padding, groups):
    """Convolution built only from primitive ops (pad/slice/matmul/concat).

    Slow but independently differentiable: every op it uses has its own
    numerical grad check, so its analytic gradients are a trustworthy
    reference for the fused strided-im2col implementation.
    """
    xp = ag.pad2d(x, padding)
    n, c, hp, wp = xp.shape
    oc, cg, kh, kw = weight.shape
    ocg = oc // groups
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    outs = []
    for g in range(groups):
        xg = xp[:, g * cg:(g + 1) * cg]
        wg = weight[g * ocg:(g + 1) * ocg]
        acc = None
        for i in range(kh):
            for j in range(kw):
                patch = xg[:, :, i:i + stride * oh:stride,
                           j:j + stride * ow:stride]
                wij = wg[:, :, i, j]                       # (ocg, cg)
                term = ag.matmul(patch.transpose((0, 2, 3, 1)),
                                 wij.transpose((1, 0)))    # (n, oh, ow, ocg)
                acc = term if acc is None else acc + term
        outs.append(acc.transpose((0, 3, 1, 2)))
    out = outs[0] if groups == 1 else ag.concat(outs, axis=1)
    if bias is not None:
        out = out + bias.reshape(1, oc, 1, 1)
    return out


CONV_CONFIGS = [
    # (x shape, w shape, stride, padding, groups, id)
    ((2, 3, 6, 6), (4, 3, 3, 3), 1, 1, 1),
    ((2, 4, 8, 8), (6, 4, 3, 3), 2, 1, 1),
    ((1, 4, 7, 7), (4, 2, 3, 3), 1, 0, 2),
    ((2, 4, 9, 9), (8, 2, 3, 3), 2, 2, 2),
    ((2, 4, 6, 6), (4, 1, 3, 3), 1, 1, 4),      # depthwise
    ((2, 4, 5, 5), (6, 4, 1, 1), 1, 0, 1),      # pointwise fast path
    ((2, 4, 5, 5), (6, 4, 1, 1), 1, 1, 1),      # pointwise + padding
    ((2, 6, 6, 6), (6, 3, 1, 1), 1, 0, 2),      # grouped pointwise
    ((1, 3, 8, 8), (5, 3, 5, 5), 1, 2, 1),      # large kernel
]


class TestConvStridedFastPath:
    @pytest.mark.parametrize("xs,ws,stride,padding,groups", CONV_CONFIGS)
    def test_matches_primitive_reference(self, xs, ws, stride, padding, groups):
        x, w = _t(xs, 1), _t(ws, 2, 0.3)
        b = _t((ws[0],), 3)
        compare_gradients(
            lambda: ag.conv2d(x, w, b, stride=stride, padding=padding,
                              groups=groups).sum(),
            lambda: conv2d_reference(x, w, b, stride=stride, padding=padding,
                                     groups=groups).sum(),
            [x, w, b], atol=1e-9, rtol=1e-7)

    @pytest.mark.parametrize("xs,ws,stride,padding,groups", [
        ((2, 4, 8, 8), (6, 4, 3, 3), 2, 1, 1),
        ((2, 4, 6, 6), (4, 1, 3, 3), 1, 1, 4),
        ((2, 4, 5, 5), (6, 4, 1, 1), 1, 0, 1),
    ])
    def test_numerical_gradients(self, xs, ws, stride, padding, groups):
        x, w = _t(xs, 4), _t(ws, 5, 0.3)
        check_gradients(
            lambda: ag.conv2d(x, w, stride=stride, padding=padding,
                              groups=groups).sum(), [x, w])

    def test_weighted_loss_gradients(self):
        """Non-uniform output gradient (catches transposed-layout bugs)."""
        x, w = _t((2, 3, 6, 6), 6), _t((4, 3, 3, 3), 7, 0.3)
        rng = np.random.default_rng(8)
        weights = Tensor(rng.standard_normal((2, 4, 6, 6)))
        compare_gradients(
            lambda: (ag.conv2d(x, w, stride=1, padding=1) * weights).sum(),
            lambda: (conv2d_reference(x, w, None, 1, 1, 1) * weights).sum(),
            [x, w], atol=1e-9, rtol=1e-7)


class TestGetitemFastPath:
    @pytest.mark.parametrize("index", [
        slice(1, 4),
        (slice(None), 2),
        (slice(None, None, 2), slice(1, None)),
        (1, slice(None)),
        (Ellipsis, 0),
        (slice(None), None, slice(2, None)),    # newaxis insert
    ])
    def test_slice_matches_numerical(self, index):
        a = _t((6, 4), 11)
        check_gradients(lambda: a[index].sum(), [a])

    def test_slice_matches_fancy_equivalent(self):
        """Basic-slice fast path == fancy-index scatter-add path."""
        a = _t((8, 5), 12)
        rows = np.arange(2, 7)                   # fancy: routes via np.add.at
        compare_gradients(lambda: (a[2:7] * a[2:7]).sum(),
                          lambda: (a[rows] * a[rows]).sum(),
                          [a], atol=1e-12, rtol=1e-12)

    def test_fancy_duplicates_still_accumulate(self):
        a = _t((5, 3), 13)
        idx = np.array([0, 2, 2, 4])
        out = a[idx].sum()
        out.backward()
        expected = np.zeros_like(a.data)
        np.add.at(expected, idx, np.ones((4, 3)))
        np.testing.assert_allclose(a.grad, expected)


class TestEmbeddingScatter:
    def test_duplicate_indices_match_add_at(self):
        w = _t((10, 4), 14)
        idx = np.array([[1, 3, 3], [3, 0, 9]])
        ag.embedding(w, idx).sum().backward()
        expected = np.zeros_like(w.data)
        np.add.at(expected, idx, np.ones(idx.shape + (4,)))
        np.testing.assert_allclose(w.grad, expected)

    def test_unique_indices_match_add_at(self):
        w = _t((12, 3), 15)
        idx = np.array([7, 2, 9, 0])
        rng = np.random.default_rng(16)
        weights = Tensor(rng.standard_normal((4, 3)))
        (ag.embedding(w, idx) * weights).sum().backward()
        expected = np.zeros_like(w.data)
        np.add.at(expected, idx, weights.data)
        np.testing.assert_allclose(w.grad, expected, atol=1e-12)


class TestBackwardReentrancy:
    """The stash removal makes backward state purely local — verify it."""

    def test_backward_inside_backward(self):
        """An inner backward running mid-pass must not corrupt the outer."""
        a = _t((3,), 20)
        b = _t((3,), 21)
        outer = (a * 2.0).sum()

        inner_loss = (b * 3.0).sum()
        fired = []
        original = outer._backward

        def hijacked(grad):
            # Simulate a callback (metric hook / distillation) that runs a
            # full backward of an unrelated graph mid-traversal.
            inner_loss.backward()
            fired.append(True)
            return original(grad)

        outer._backward = hijacked
        outer.backward()
        assert fired
        np.testing.assert_allclose(a.grad, 2.0 * np.ones(3))
        np.testing.assert_allclose(b.grad, 3.0 * np.ones(3))

    def test_repeated_backward_is_exact(self):
        a = _t((4,), 22)
        loss = (a * a).sum()
        loss.backward()
        first = a.grad.copy()
        loss.backward()          # reuses the cached topological order
        np.testing.assert_allclose(a.grad, 2.0 * first)

    def test_shared_leaf_graphs_do_not_leak(self):
        a = _t((3,), 23)
        loss1 = (a * 2.0).sum()
        loss2 = (a * 5.0).sum()
        loss1.backward()
        np.testing.assert_allclose(a.grad, 2.0 * np.ones(3))
        loss2.backward()
        np.testing.assert_allclose(a.grad, 7.0 * np.ones(3))

    def test_leaf_grad_buffers_are_independent(self):
        """Identity-op fan-out must never alias two leaves' grad buffers."""
        a, b = _t((4,), 24), _t((4,), 25)
        (a + b).sum().backward()
        a.grad += 100.0
        np.testing.assert_allclose(b.grad, np.ones(4))

    def test_param_grad_not_aliased_to_user_array(self):
        a = _t((3,), 26)
        seed_grad = np.ones(3)
        (a * 1.0).sum().backward()
        before = a.grad.copy()
        a.grad += 5.0
        np.testing.assert_allclose(before, np.ones(3))
        assert a.grad is not seed_grad


class TestTmax:
    def test_global_max_gradient(self):
        a = _t((4, 5), 30)
        check_gradients(lambda: a.max(), [a])

    def test_global_max_value(self):
        a = _t((3, 7), 31)
        assert a.max().item() == pytest.approx(a.data.max())

    def test_global_max_keepdims(self):
        a = _t((2, 3), 32)
        out = a.max(keepdims=True)
        assert out.shape == (1, 1)
        check_gradients(lambda: a.max(keepdims=True).sum(), [a])

    def test_axis_max_still_works(self):
        a = _t((5, 7), 33)
        check_gradients(lambda: a.max(axis=1).sum(), [a])

    def test_ties_split_gradient(self):
        a = Tensor(np.array([1.0, 3.0, 3.0, 0.0]), requires_grad=True)
        a.max().backward()
        np.testing.assert_allclose(a.grad, [0.0, 0.5, 0.5, 0.0])

    def test_unsupported_kwargs_raise(self):
        a = _t((3, 3), 34)
        with pytest.raises(TypeError, match="unsupported keyword"):
            a.max(axis=1, initial=0.0)
        with pytest.raises(TypeError, match="axis must be an int"):
            a.max(axis=(0, 1))


class TestDropoutDeterminism:
    def test_training_requires_rng(self):
        x = _t((4, 4), 40)
        with pytest.raises(ValueError, match="Generator"):
            ag.dropout(x, 0.5, training=True)

    def test_layer_is_reproducible(self):
        x = np.ones((64, 64), np.float32)
        outs = []
        for _ in range(2):
            layer = nn.Dropout(0.5, seed=7)
            outs.append(layer(Tensor(x)).data)
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_rng_derived_layers_are_distinct(self):
        x = np.ones((64, 64), np.float32)
        rng = np.random.default_rng(3)
        first = nn.Dropout(0.5, rng=rng)
        second = nn.Dropout(0.5, rng=rng)
        assert not np.array_equal(first(Tensor(x)).data,
                                  second(Tensor(x)).data)

    def test_seed_and_rng_are_exclusive(self):
        with pytest.raises(ValueError, match="not both"):
            nn.Dropout(0.5, seed=1, rng=np.random.default_rng(0))
