"""Tests for synthetic datasets and federated partitioners."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import (load_dataset, DATASET_NAMES, DATASET_TRACKS,
                        iid_partition, dirichlet_partition, by_user_partition,
                        partition_dataset, batches, FederatedDataset)


SMALL_KW = {
    "cifar10": {"train_per_class": 20, "test_per_class": 5},
    "cifar100": {"train_per_class": 3, "test_per_class": 1},
    "agnews": {"train_size": 200, "test_size": 40},
    "stackoverflow": {"num_users": 20, "samples_per_user": 10, "test_size": 40},
    "harbox": {"num_users": 20, "samples_per_user": 8, "test_size": 40},
    "ucihar": {"num_users": 10, "samples_per_user": 10, "test_size": 40},
}


def _small(name, seed=0):
    return load_dataset(name, seed=seed, **SMALL_KW[name])


class TestDatasets:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_loads_and_shapes(self, name):
        ds = _small(name)
        assert ds.num_train > 0 and ds.num_test > 0
        assert ds.y_train.max() < ds.num_classes
        assert ds.y_test.max() < ds.num_classes
        assert ds.x_train.dtype in (np.float32, np.int64)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic_given_seed(self, name):
        a, b = _small(name, seed=3), _small(name, seed=3)
        np.testing.assert_array_equal(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_seed_changes_data(self, name):
        a, b = _small(name, seed=1), _small(name, seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_natural_datasets_have_user_ids(self):
        for name in ("stackoverflow", "harbox", "ucihar"):
            assert _small(name).user_ids is not None
        for name in ("cifar10", "cifar100", "agnews"):
            assert _small(name).user_ids is None

    def test_tracks_cover_all_datasets(self):
        listed = sorted(n for names in DATASET_TRACKS.values() for n in names)
        assert listed == DATASET_NAMES

    def test_unknown_dataset_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("imagenet")

    def test_class_signal_exists(self):
        """Class-conditional means differ (the task is not pure noise)."""
        ds = load_dataset("cifar10", train_per_class=50, test_per_class=5)
        means = np.stack([ds.x_train[ds.y_train == c].mean(axis=0)
                          for c in range(3)])
        spread = np.abs(means[0] - means[1]).mean()
        assert spread > 0.1

    def test_stackoverflow_user_skew(self):
        """Per-user label distributions are skewed (natural non-IID)."""
        ds = _small("stackoverflow")
        entropies = []
        for user in np.unique(ds.user_ids):
            labels = ds.y_train[ds.user_ids == user]
            counts = np.bincount(labels, minlength=ds.num_classes)
            probs = counts / counts.sum()
            probs = probs[probs > 0]
            entropies.append(-(probs * np.log(probs)).sum())
        # Mean user entropy well below the uniform entropy.
        assert np.mean(entropies) < 0.8 * np.log(ds.num_classes)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            FederatedDataset(name="x", modality="image",
                             x_train=np.zeros((3, 1)), y_train=np.zeros(2),
                             x_test=np.zeros((1, 1)), y_test=np.zeros(1),
                             num_classes=2)

    def test_subset_and_label_distribution(self):
        ds = _small("cifar10")
        shard = ds.subset(np.arange(10))
        assert len(shard) == 10
        assert shard.label_distribution().sum() == 10


class TestBatches:
    def test_covers_all_samples(self):
        x, y = np.arange(10)[:, None], np.arange(10)
        seen = [yb for _, yb in batches(x, y, 3)]
        assert sorted(np.concatenate(seen)) == list(range(10))

    def test_drop_last(self):
        x, y = np.arange(10)[:, None], np.arange(10)
        out = list(batches(x, y, 4, drop_last=True))
        assert all(len(yb) == 4 for _, yb in out)
        assert len(out) == 2

    def test_shuffled_when_rng_given(self):
        x, y = np.arange(100)[:, None], np.arange(100)
        rng = np.random.default_rng(0)
        first = next(iter(batches(x, y, 100, rng)))[1]
        assert not np.array_equal(first, y)


class TestPartitions:
    @given(n=st.integers(10, 300), k=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_iid_exactly_covers(self, n, k):
        rng = np.random.default_rng(0)
        shards = iid_partition(n, k, rng)
        merged = np.concatenate(shards)
        assert len(merged) == n
        assert len(np.unique(merged)) == n

    @given(alpha=st.sampled_from([0.1, 0.5, 5.0, 100.0]),
           k=st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_dirichlet_exactly_covers(self, alpha, k):
        rng = np.random.default_rng(1)
        labels = np.repeat(np.arange(5), 40)
        shards = dirichlet_partition(labels, k, alpha, rng)
        merged = np.concatenate(shards)
        assert len(merged) == len(labels)
        assert len(np.unique(merged)) == len(labels)

    def test_dirichlet_skew_ordering(self):
        """Smaller alpha produces more label-skewed shards."""
        rng = np.random.default_rng(2)
        labels = np.repeat(np.arange(10), 100)

        def mean_entropy(alpha):
            shards = dirichlet_partition(labels, 10, alpha,
                                         np.random.default_rng(2))
            ents = []
            for shard in shards:
                counts = np.bincount(labels[shard], minlength=10)
                probs = counts[counts > 0] / counts.sum()
                ents.append(-(probs * np.log(probs)).sum())
            return np.mean(ents)

        assert mean_entropy(0.1) < mean_entropy(5.0) < mean_entropy(1000.0) + 1e-9

    def test_dirichlet_invalid_alpha(self):
        with pytest.raises(ValueError):
            dirichlet_partition(np.zeros(10, int), 2, 0.0,
                                np.random.default_rng(0))

    def test_by_user_groups_users(self):
        user_ids = np.array([0, 0, 1, 1, 2, 2])
        shards = by_user_partition(user_ids)
        assert len(shards) == 3
        for shard in shards:
            assert len(np.unique(user_ids[shard])) == 1

    def test_by_user_merges_when_fewer_clients(self):
        user_ids = np.repeat(np.arange(6), 2)
        shards = by_user_partition(user_ids, num_clients=3)
        assert len(shards) == 3
        assert sum(len(s) for s in shards) == len(user_ids)

    def test_by_user_cannot_split(self):
        with pytest.raises(ValueError):
            by_user_partition(np.array([0, 0, 1]), num_clients=5)

    def test_partition_dataset_auto(self):
        iid_ds = _small("cifar10")
        assert len(partition_dataset(iid_ds, 5)) == 5
        natural = _small("ucihar")
        shards = partition_dataset(natural, 10)
        assert len(shards) == 10

    def test_partition_dataset_unknown_scheme(self):
        with pytest.raises(ValueError):
            partition_dataset(_small("cifar10"), 5, scheme="magic")
