"""Parallel client execution: pure work items, executors, determinism.

The contract under test: a client's local round is a pure function of
``(run_seed, round, client_id)`` plus the broadcast state, so
``run_simulation``/``run_event_simulation`` produce **byte-identical**
``History.to_json()`` for any executor (inline / thread / process) and any
worker count; sweeps fan out with identical results; the run cache
tolerates concurrent writers; and every algorithm's uplink payload
round-trips both pickle (pool transport) and the JSON codec.
"""

import json
import pickle
import threading

import numpy as np
import pytest

from repro import autograd as ag
from repro import nn
from repro.algorithms import ClientUpdate
from repro.constraints import ConstraintSpec
from repro.experiments import (RunSpec, execute_spec, execute_specs,
                               prepare_scenario, set_default_parallelism)
from repro.experiments.cache import RunCache
from repro.fl import (ExecutionConfig, ExecutorError, InlineExecutor,
                      ProcessExecutor, SimulationConfig, ThreadExecutor,
                      client_rng, client_update_from_dict,
                      client_update_to_dict, execute_work_item,
                      history_to_dict, reseed_dropout, run_simulation,
                      sample_clients)
from repro.fl.executor import (ScenarioHandle, make_executor, make_work_item,
                               resolve_executor_kind)
from repro.fl.history import History, RoundRecord
from repro.fl.seeding import client_seed_key

SMOKE = ConstraintSpec(constraints=("computation",))


def smoke_spec(algorithm="sheterofl", seed=0, workers=None, executor=None,
               execution=None):
    return RunSpec(algorithm=algorithm, dataset="harbox",
                   constraints=SMOKE, scale="smoke", seed=seed,
                   execution=execution, workers=workers, executor=executor)


def run_history(algorithm="sheterofl", workers=None, executor=None,
                execution=None, seed=0) -> str:
    spec = smoke_spec(algorithm, seed=seed, workers=workers,
                      executor=executor, execution=execution)
    return execute_spec(spec, cache=None).history.to_json()


class TestSeeding:
    def test_client_rng_deterministic_and_distinct(self):
        a = client_rng(3, 5, 7).integers(0, 2 ** 31, size=8)
        b = client_rng(3, 5, 7).integers(0, 2 ** 31, size=8)
        assert np.array_equal(a, b)
        for other_key in ((4, 5, 7), (3, 6, 7), (3, 5, 8)):
            other = client_rng(*other_key).integers(0, 2 ** 31, size=8)
            assert not np.array_equal(a, other)

    def test_seed_key_canonical(self):
        assert client_seed_key(1, np.int64(2), np.int64(3)) == (1, 2, 3)

    def test_reseed_dropout_restarts_mask_stream(self):
        class Tiny(nn.Module):
            def __init__(self):
                super().__init__()
                self.drop = nn.Dropout(0.5, seed=3)

        x = np.ones((4, 6), dtype=np.float32)
        tiny = Tiny()
        first = tiny.drop.forward(ag.Tensor(x)).data
        # Advance the stream, then reseed from the same derived generator
        # twice: the masks must repeat exactly.
        tiny.drop.forward(ag.Tensor(x))
        reseed_dropout(tiny, client_rng(0, 1, 2))
        masked_a = tiny.drop.forward(ag.Tensor(x)).data
        reseed_dropout(tiny, client_rng(0, 1, 2))
        masked_b = tiny.drop.forward(ag.Tensor(x)).data
        assert np.array_equal(masked_a, masked_b)
        assert first.shape == masked_a.shape

    def test_no_grad_is_thread_local(self):
        from repro import autograd as ag
        seen = {}
        release = threading.Event()
        inside = threading.Event()

        def holder():
            with ag.no_grad():
                inside.set()
                release.wait(timeout=5)

        thread = threading.Thread(target=holder)
        thread.start()
        assert inside.wait(timeout=5)
        seen["main"] = ag.is_grad_enabled()
        release.set()
        thread.join()
        assert seen["main"] is True


class TestWorkItems:
    @pytest.mark.parametrize("algorithm",
                             ["sheterofl", "fedproto", "fedet"])
    def test_items_and_results_pickle(self, algorithm):
        scenario, _ = prepare_scenario(smoke_spec(algorithm))
        algo = scenario.algorithm
        cid = sorted(algo.clients)[0]
        item = make_work_item(algo, cid, 0, 0, needs_broadcast=True)
        clone = pickle.loads(pickle.dumps(item))
        assert clone.client_id == cid and clone.scenario.payload is not None
        result = execute_work_item(item, algo)
        back = pickle.loads(pickle.dumps(result))
        assert back.update.client_id == cid
        algo.apply_client_state(back.client_id, back.client_state)

    def test_inline_matches_injected_broadcast(self):
        """broadcast=None (live state) and a packed broadcast are
        bit-identical — the inline/process split cannot change numbers."""
        scenario_a, _ = prepare_scenario(smoke_spec())
        scenario_b, _ = prepare_scenario(smoke_spec())
        cid = sorted(scenario_a.algorithm.clients)[0]
        live = scenario_a.algorithm.run_client(cid, 0, client_rng(0, 0, cid))
        packed = scenario_b.algorithm.run_client(
            cid, 0, client_rng(0, 0, cid),
            broadcast=scenario_b.algorithm.pack_broadcast(cid, 0))
        state_a, _ = live.payload
        state_b, _ = packed.payload
        assert live.train_loss == packed.train_loss
        for name in state_a:
            assert np.array_equal(state_a[name], state_b[name]), name

    def test_same_version_redispatch_trains_fresh_draw(self):
        """A buffered re-dispatch of the same client at an unchanged
        server version must not replay the first dispatch bit-for-bit
        (it would double-weight one gradient in the buffer)."""
        scenario, _ = prepare_scenario(smoke_spec())
        algo = scenario.algorithm
        cid = sorted(algo.clients)[0]
        first = execute_work_item(
            make_work_item(algo, cid, 0, 0, needs_broadcast=True), algo)
        repeat = execute_work_item(
            make_work_item(algo, cid, 0, 0, needs_broadcast=True,
                           dispatch_index=1), algo)
        replay = execute_work_item(
            make_work_item(algo, cid, 0, 0, needs_broadcast=True), algo)
        # dispatch 0 is reproducible; dispatch 1 is a fresh draw.
        assert replay.update.train_loss == first.update.train_loss
        assert repeat.update.train_loss != first.update.train_loss

    def test_resolve_executor_kind(self):
        assert resolve_executor_kind("auto", 1, True) == "inline"
        assert resolve_executor_kind(None, 4, True) == "process"
        assert resolve_executor_kind("auto", 4, False) == "thread"
        assert resolve_executor_kind("thread", 1, True) == "thread"
        with pytest.raises(ValueError):
            resolve_executor_kind("quantum", 2, True)

    def test_process_executor_requires_spec(self):
        class Bare:
            spec_payload = None

        with pytest.raises(ExecutorError):
            ProcessExecutor(algorithm=Bare())

    def test_worker_rejects_unspecced_item(self):
        item = make_work_item(object.__new__(object), 0, 0, 0,
                              needs_broadcast=False)
        # ^ no spec_payload attribute -> handle without payload
        with pytest.raises(ExecutorError):
            execute_work_item(item)

    def test_execution_config_validates_parallelism(self):
        with pytest.raises(ValueError):
            ExecutionConfig(workers=0)
        with pytest.raises(ValueError):
            ExecutionConfig(executor="quantum")
        cfg = ExecutionConfig(workers=3, executor="thread")
        assert "workers" not in cfg.to_dict()
        assert "executor" not in cfg.to_dict()
        assert ExecutionConfig.from_dict(cfg.to_dict()) == ExecutionConfig()


class TestPayloadSerialization:
    """ClientUpdate round-trips for every uplink family (the satellite
    coverage that process-pool transport rests on)."""

    def _round_trip(self, update: ClientUpdate) -> ClientUpdate:
        wire = json.dumps(client_update_to_dict(update))
        return client_update_from_dict(json.loads(wire))

    def _assert_payload_equal(self, a, b):
        if isinstance(a, np.ndarray):
            assert isinstance(b, np.ndarray)
            assert a.dtype == b.dtype and np.array_equal(a, b)
        elif isinstance(a, tuple):
            assert isinstance(b, tuple) and len(a) == len(b)
            for x, y in zip(a, b):
                self._assert_payload_equal(x, y)
        elif isinstance(a, dict):
            assert set(a) == set(b)
            for key in a:
                self._assert_payload_equal(a[key], b[key])
        else:
            assert a == b

    @pytest.mark.parametrize("algorithm",
                             ["sheterofl", "fedproto", "fedet"])
    def test_update_round_trip(self, algorithm):
        scenario, _ = prepare_scenario(smoke_spec(algorithm))
        algo = scenario.algorithm
        cid = sorted(algo.clients)[0]
        update = algo.run_client(cid, 0, client_rng(0, 0, cid))
        back = self._round_trip(update)
        assert back.client_id == update.client_id
        assert back.version == update.version
        assert back.train_loss == update.train_loss
        assert back.round_time_s == update.round_time_s
        assert back.weight == update.weight
        self._assert_payload_equal(update.payload, back.payload)

    def test_state_and_maps_survive(self):
        """Index maps (None / int arrays per axis) are part of the
        parameter-averaging payload and must survive bit-exact."""
        scenario, _ = prepare_scenario(smoke_spec("fedrolex"))
        algo = scenario.algorithm
        cid = sorted(algo.clients)[0]
        update = algo.run_client(cid, 2, client_rng(0, 2, cid))
        state, maps = self._round_trip(update).payload
        orig_state, orig_maps = update.payload
        assert set(maps) == set(orig_maps)
        for name, axes in orig_maps.items():
            assert isinstance(maps[name], tuple)
            for got, want in zip(maps[name], axes):
                if want is None:
                    assert got is None
                else:
                    assert np.array_equal(got, want)
        for name in orig_state:
            assert orig_state[name].dtype == state[name].dtype


class TestWorkerCountInvariance:
    """The acceptance contract: byte-identical History JSON for workers
    1 (inline), 2 and 4, through the spec layer, for both runtimes."""

    @pytest.mark.parametrize("algorithm", ["sheterofl", "fedproto"])
    def test_sync_loop(self, algorithm):
        reference = run_history(algorithm, workers=1, executor="inline")
        assert run_history(algorithm, workers=2, executor="thread") \
            == reference
        assert run_history(algorithm, workers=2, executor="process") \
            == reference
        assert run_history(algorithm, workers=4, executor="process") \
            == reference

    def test_event_engine_buffered(self):
        execution = ExecutionConfig(policy="buffered", buffer_size=2,
                                    availability="dropout",
                                    availability_kwargs={"prob": 0.2})
        reference = run_history("sheterofl", workers=1, executor="inline",
                                execution=execution)
        assert run_history("sheterofl", workers=2, executor="process",
                           execution=execution) == reference
        assert run_history("sheterofl", workers=2, executor="thread",
                           execution=execution) == reference

    def test_event_engine_sync_policy(self):
        execution = ExecutionConfig(over_select=0.5, availability="markov")
        reference = run_history("fedepth", workers=1, executor="inline",
                                execution=execution)
        assert run_history("fedepth", workers=3, executor="process",
                           execution=execution) == reference


class TestInlineReferenceSemantics:
    """The executor stack adds no numerics: the inline path reproduces a
    plain sequential loop (the pre-refactor round semantics with the
    canonical derived seeds) bit-for-bit, and stays pinned to recorded
    golden values so future refactors cannot drift silently."""

    #: goldens recorded at the refactor (harbox smoke, computation case,
    #: seed 0).  Derived per-client seeding is part of the contract: these
    #: move only if the seeding scheme or the training math changes.
    GOLDEN_FINAL_ACC = {"sheterofl": 0.16666666666666666,
                        "fedproto": 0.18541666666666665}
    GOLDEN_FIRST_LOSS = {"sheterofl": 1.7707054615020752,
                         "fedproto": 1.6007339656352997}

    def _reference_history(self, algorithm, config) -> History:
        rng = np.random.default_rng(config.seed)
        history = History(algorithm=algorithm.name,
                          dataset=algorithm.dataset_name)
        sim_time = 0.0
        for round_index in range(config.num_rounds):
            sampled = sample_clients(algorithm.num_clients,
                                     config.sample_ratio, rng)
            outcome = algorithm.run_round(round_index, sampled, rng,
                                          run_seed=config.seed)
            round_time = outcome.slowest_client_s + config.server_overhead_s
            sim_time += round_time
            is_eval = (round_index % config.eval_every == 0
                       or round_index == config.num_rounds - 1)
            acc = algorithm.evaluate_global() if is_eval else None
            history.append(RoundRecord(
                round_index=round_index, sim_time_s=sim_time,
                round_time_s=round_time,
                train_loss=outcome.mean_train_loss, global_accuracy=acc,
                extras=dict(outcome.extras)))
        history.final_device_accuracies = algorithm.per_device_accuracies()
        return history

    @pytest.mark.parametrize("algorithm", ["sheterofl", "fedproto"])
    def test_stack_matches_reference_loop(self, algorithm):
        spec = smoke_spec(algorithm)
        scale = spec.resolved_scale()
        config = SimulationConfig(num_rounds=scale.num_rounds,
                                  sample_ratio=scale.sample_ratio,
                                  eval_every=scale.eval_every, seed=0)
        reference = self._reference_history(
            prepare_scenario(spec)[0].algorithm, config)
        stack = run_simulation(prepare_scenario(spec)[0].algorithm, config)
        assert history_to_dict(stack) == history_to_dict(reference)
        assert stack.final_accuracy == pytest.approx(
            self.GOLDEN_FINAL_ACC[algorithm], abs=1e-9)
        assert stack.records[0].train_loss == pytest.approx(
            self.GOLDEN_FIRST_LOSS[algorithm], abs=1e-7)


class TestCacheConcurrency:
    def test_parallel_puts_never_corrupt(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = smoke_spec()
        history = History(algorithm="sheterofl", dataset="harbox")
        history.append(RoundRecord(round_index=0, sim_time_s=1.0,
                                   round_time_s=1.0, train_loss=0.5,
                                   global_accuracy=0.25))
        errors = []

        def writer():
            try:
                for _ in range(10):
                    cache.put(spec, history, num_classes=5)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=writer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        entry = cache.get(spec)
        assert entry is not None and entry.num_classes == 5
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix == ".tmp"]
        assert leftovers == []

    def test_put_is_atomic_rename(self, tmp_path):
        cache = RunCache(tmp_path)
        spec = smoke_spec()
        history = History(algorithm="sheterofl", dataset="harbox")
        path = cache.put(spec, history)
        assert path.name == f"{spec.content_hash()}.json"
        json.loads(path.read_text())  # complete, parseable entry


class TestParallelSweeps:
    def _grid(self):
        return [smoke_spec("sheterofl", seed=s) for s in (0, 1)] \
            + [smoke_spec("fedavg_smallest", seed=0)]

    def test_parallel_matches_sequential(self, tmp_path):
        sequential = execute_specs(self._grid(), cache=None)
        parallel = execute_specs(self._grid(), cache=None, workers=2)
        assert [history_to_dict(r.history) for r in sequential] \
            == [history_to_dict(r.history) for r in parallel]
        assert [r.num_classes for r in sequential] \
            == [r.num_classes for r in parallel]
        assert [r.level_distribution() for r in sequential] \
            == [r.level_distribution() for r in parallel]

    def test_parallel_sweep_populates_shared_cache(self, tmp_path):
        cache = RunCache(tmp_path)
        execute_specs(self._grid(), cache=cache, workers=2)
        assert cache.misses == 3 and cache.hits == 0
        again = execute_specs(self._grid(), cache=cache, workers=2)
        assert cache.hits == 3
        assert all(r.from_cache for r in again)

    def test_default_parallelism_round_trip(self):
        previous = set_default_parallelism(workers=2, executor="thread")
        try:
            from repro.experiments import default_parallelism
            assert default_parallelism().workers == 2
            assert default_parallelism().executor == "thread"
        finally:
            set_default_parallelism(previous.workers, previous.executor)

    def test_spec_payload_cleared_for_mutations(self, tmp_path):
        spec = smoke_spec("fjord").replace(tag="ablation-test")

        seen = {}

        def mutate(algorithm):
            seen["payload_at_mutate"] = algorithm.spec_payload

        result = execute_spec(spec, cache=None, mutate=mutate)
        assert seen["payload_at_mutate"] is not None
        assert result.scenario.algorithm.spec_payload is None


class TestScenarioHandle:
    def test_handle_key_stable(self):
        payload = smoke_spec().to_dict()
        a = ScenarioHandle.from_spec_payload(payload)
        b = ScenarioHandle.from_spec_payload(dict(payload))
        assert a.key == b.key
        assert ScenarioHandle.from_spec_payload(None).payload is None

    def test_prepare_scenario_attaches_payload(self):
        scenario, _ = prepare_scenario(smoke_spec())
        payload = scenario.algorithm.spec_payload
        assert payload is not None
        assert RunSpec.from_dict(payload) == smoke_spec()

    def test_executor_factory_auto(self):
        scenario, _ = prepare_scenario(smoke_spec())
        ex = make_executor(scenario.algorithm, workers=1, kind="auto")
        assert isinstance(ex, InlineExecutor)
        ex2 = make_executor(scenario.algorithm, workers=2, kind="auto")
        try:
            assert isinstance(ex2, ProcessExecutor)
        finally:
            ex2.close()
        bare = type("Bare", (), {"spec_payload": None})()
        ex3 = make_executor(bare, workers=2, kind="auto")
        try:
            assert isinstance(ex3, ThreadExecutor)
        finally:
            ex3.close()
