"""Tests for the FL engine: local training, history, simulation loop."""

import json

import numpy as np
import pytest

from repro import autograd as ag
from repro.algorithms import ClientUpdate
from repro.constraints import ConstraintSpec, build_scenario
from repro.data import load_dataset
from repro.fl import (LocalTrainConfig, train_local, make_optimizer,
                      accuracy, predict, History, RoundRecord,
                      SimulationConfig, client_update_from_dict,
                      client_update_to_dict, run_simulation, sample_clients)
from repro.models import build_model


@pytest.fixture(scope="module")
def tiny_task():
    ds = load_dataset("harbox", seed=0, num_users=10, samples_per_user=10,
                      test_size=60)
    model = build_model("har_cnn", num_classes=ds.num_classes, seed=0)
    return ds, model


class TestLocalTraining:
    def test_config_resolve_modality(self):
        cnn = build_model("har_cnn", num_classes=3, seed=0)
        text = build_model("transformer", num_classes=3, seed=0)
        auto = LocalTrainConfig()
        assert auto.resolve(cnn).optimizer == "sgd"
        assert auto.resolve(text).optimizer == "adam"

    def test_config_resolve_lr_defaults(self):
        cnn = build_model("har_cnn", num_classes=3, seed=0)
        assert LocalTrainConfig().resolve(cnn).lr == 0.05
        assert LocalTrainConfig(optimizer="adam").resolve(cnn).lr == 2e-3

    def test_explicit_lr_kept(self):
        cnn = build_model("har_cnn", num_classes=3, seed=0)
        assert LocalTrainConfig(lr=0.7).resolve(cnn).lr == 0.7

    def test_make_optimizer_trainable_only(self):
        model = build_model("har_cnn", num_classes=3, seed=0)
        model.set_trainable_stages([3], train_stem=False)
        opt = make_optimizer(model, LocalTrainConfig().resolve(model))
        assert len(opt.params) == len(model.trainable_parameters())

    def test_training_reduces_loss(self, tiny_task):
        ds, model = tiny_task
        model = model.variant(seed=7)
        x, y = ds.x_train[:64], ds.y_train[:64]
        rng = np.random.default_rng(0)
        config = LocalTrainConfig(batch_size=16, local_epochs=1)
        first = train_local(model, x, y, config, rng)
        for _ in range(5):
            last = train_local(model, x, y, config, rng)
        assert last < first

    def test_max_batches_caps_steps(self, tiny_task):
        ds, model = tiny_task
        model = model.variant(seed=8)
        steps = []

        def counting_loss(m, xb, yb):
            steps.append(1)
            return ag.cross_entropy(m(xb), yb)

        config = LocalTrainConfig(batch_size=4, local_epochs=2, max_batches=3)
        train_local(model, ds.x_train[:40], ds.y_train[:40], config,
                    np.random.default_rng(0), loss_fn=counting_loss)
        assert len(steps) == 6  # 3 batches x 2 epochs

    def test_custom_loss_used(self, tiny_task):
        ds, model = tiny_task
        model = model.variant(seed=9)
        config = LocalTrainConfig(batch_size=8, max_batches=1)
        loss = train_local(model, ds.x_train[:16], ds.y_train[:16], config,
                           np.random.default_rng(0),
                           loss_fn=lambda m, xb, yb: ag.cross_entropy(m(xb), yb) * 0.0)
        assert loss == 0.0

    def test_empty_config_invalid_optimizer(self, tiny_task):
        _, model = tiny_task
        with pytest.raises(ValueError):
            make_optimizer(model, LocalTrainConfig(optimizer="lbfgs", lr=0.1))


class TestEvaluate:
    def test_accuracy_range(self, tiny_task):
        ds, model = tiny_task
        acc = accuracy(model, ds.x_test, ds.y_test)
        assert 0.0 <= acc <= 1.0

    def test_predict_shape(self, tiny_task):
        ds, model = tiny_task
        preds = predict(model, ds.x_test, batch_size=16)
        assert preds.shape == (ds.num_test,)

    def test_eval_restores_training_mode(self, tiny_task):
        ds, model = tiny_task
        model.train()
        accuracy(model, ds.x_test[:8], ds.y_test[:8])
        assert model.training


class TestHistory:
    def _history(self):
        h = History(algorithm="a", dataset="d")
        for i, acc in enumerate([None, 0.3, None, 0.5, 0.7]):
            h.append(RoundRecord(round_index=i, sim_time_s=10.0 * (i + 1),
                                 round_time_s=10.0, train_loss=1.0,
                                 global_accuracy=acc))
        return h

    def test_final_best_accuracy(self):
        h = self._history()
        assert h.final_accuracy == 0.7
        assert h.best_accuracy == 0.7

    def test_time_to_accuracy(self):
        h = self._history()
        assert h.time_to_accuracy(0.4) == 40.0
        assert h.time_to_accuracy(0.3) == 20.0
        assert h.time_to_accuracy(0.9) is None

    def test_accuracy_curve(self):
        times, accs = self._history().accuracy_curve()
        np.testing.assert_array_equal(times, [20.0, 40.0, 50.0])
        np.testing.assert_array_equal(accs, [0.3, 0.5, 0.7])

    def test_stability(self):
        h = self._history()
        h.final_device_accuracies = [0.5, 0.7]
        assert abs(h.stability() - np.var([0.5, 0.7])) < 1e-12

    def test_empty_history_raises(self):
        h = History(algorithm="a", dataset="d")
        with pytest.raises(ValueError, match="no evaluated rounds"):
            _ = h.final_accuracy
        with pytest.raises(ValueError, match="no evaluated rounds"):
            _ = h.best_accuracy
        with pytest.raises(ValueError):
            h.stability()

    def test_json_round_trip(self):
        h = self._history()
        h.final_device_accuracies = [0.4, 0.6]
        h.records[0].extras = {"dispatched": 3, "dropped_deadline": 1}
        h.records[0].events = [{"t": 0.0, "type": "download_start",
                                "client": 2},
                               {"t": 4.5, "type": "upload_complete",
                                "client": 2, "staleness": 1}]
        restored = History.from_json(h.to_json())
        assert restored.algorithm == h.algorithm
        assert restored.dataset == h.dataset
        assert restored.final_device_accuracies == h.final_device_accuracies
        assert len(restored.records) == len(h.records)
        for a, b in zip(h.records, restored.records):
            assert (a.round_index, a.sim_time_s, a.round_time_s,
                    a.train_loss, a.global_accuracy) \
                == (b.round_index, b.sim_time_s, b.round_time_s,
                    b.train_loss, b.global_accuracy)
            assert a.extras == b.extras
            assert a.events == b.events
        assert restored.dropped_counts() == {"deadline": 1}

    def test_json_round_trip_failure_timeline(self):
        """The fault-injection event types and extras survive the trip."""
        h = self._history()
        h.records[1].extras = {"dispatched": 4, "received": 2,
                               "dropped_crash": 1, "dropped_quarantined": 1,
                               "quorum_target": 2, "quorum_met": True,
                               "deadline_extended": True}
        h.records[1].events = [
            {"t": 3.0, "type": "client_failed", "client": 5,
             "reason": "crash"},
            {"t": 4.5, "type": "update_rejected", "client": 6,
             "reason": "nonfinite"},
        ]
        restored = History.from_json(h.to_json())
        assert restored.records[1].extras == h.records[1].extras
        assert restored.records[1].events == h.records[1].events
        assert restored.dropped_counts() == {"crash": 1, "quarantined": 1}

    def test_dropped_and_stale_helpers(self):
        h = self._history()
        assert h.dropped_counts() == {}
        assert h.stale_update_count() == 0
        h.records[1].extras = {"dropped_churn": 2, "stale_updates": 3}
        h.records[2].extras = {"dropped_churn": 1, "dropped_dropout": 4}
        h.records[3].extras = {"dropped_crash": 2, "dropped_quarantined": 1}
        assert h.dropped_counts() == {"churn": 3, "dropout": 4,
                                      "crash": 2, "quarantined": 1}
        assert h.stale_update_count() == 3

    def test_total_sim_time(self):
        assert self._history().total_sim_time_s == 50.0

    def test_empty_history_time_metrics_raise(self):
        """An empty run has no clock: the old silent 0.0 / None answers
        poisoned downstream time metrics, so both now raise."""
        h = History(algorithm="a", dataset="d")
        with pytest.raises(ValueError, match="no rounds"):
            _ = h.total_sim_time_s
        with pytest.raises(ValueError, match="no rounds"):
            h.time_to_accuracy(0.5)


class TestClientUpdateRoundTrips:
    """Lossless JSON round-trips for every uplink payload family, on
    synthetic payloads (the scenario-level counterpart lives in
    ``tests/test_parallel_exec.py``)."""

    def _round_trip(self, update: ClientUpdate) -> ClientUpdate:
        wire = json.dumps(client_update_to_dict(update))
        return client_update_from_dict(json.loads(wire))

    def _update(self, payload) -> ClientUpdate:
        return ClientUpdate(client_id=3, version=2, train_loss=0.75,
                            round_time_s=6.5, weight=40.0, discount=0.5,
                            staleness=1, payload=payload)

    def test_scalar_fields(self):
        back = self._round_trip(self._update(None))
        assert (back.client_id, back.version, back.train_loss,
                back.round_time_s, back.weight, back.discount,
                back.staleness) == (3, 2, 0.75, 6.5, 40.0, 0.5, 1)
        assert back.payload is None

    def test_state_and_maps_family(self):
        """Parameter averaging: a (state, maps) tuple of dicts; float
        state arrays and integer index maps (with None axes) must all
        survive bit-exact, tuples staying tuples."""
        state = {"conv.w": np.arange(24, dtype=np.float32).reshape(2, 3, 4),
                 "head.b": np.array([1.5, -2.5], dtype=np.float64)}
        maps = {"conv.w": (np.array([0, 1]), None, np.array([0, 2, 3])),
                "head.b": (np.array([0, 1]),)}
        got_state, got_maps = self._round_trip(
            self._update((state, maps))).payload
        for name, want in state.items():
            assert got_state[name].dtype == want.dtype
            np.testing.assert_array_equal(got_state[name], want)
        for name, axes in maps.items():
            assert isinstance(got_maps[name], tuple)
            for got, want in zip(got_maps[name], axes):
                if want is None:
                    assert got is None
                else:
                    assert got.dtype == want.dtype
                    np.testing.assert_array_equal(got, want)

    def test_prototype_family(self):
        """FedProto: (per-class embedding sums, per-class counts)."""
        sums = np.random.default_rng(0).normal(size=(5, 16))
        counts = np.array([3.0, 0.0, 7.0, 1.0, 0.0])
        got_sums, got_counts = self._round_trip(
            self._update((sums, counts))).payload
        np.testing.assert_array_equal(got_sums, sums)
        np.testing.assert_array_equal(got_counts, counts)

    def test_logits_family(self):
        """Fed-ET: a bare public-set probability matrix."""
        probs = np.random.default_rng(1).random((10, 4)).astype(np.float32)
        back = self._round_trip(self._update(probs))
        assert back.payload.dtype == probs.dtype
        np.testing.assert_array_equal(back.payload, probs)


class TestSampling:
    def test_sample_count(self):
        rng = np.random.default_rng(0)
        assert len(sample_clients(100, 0.1, rng)) == 10
        assert len(sample_clients(5, 0.1, rng)) == 1   # at least one

    def test_no_duplicates(self):
        rng = np.random.default_rng(1)
        sampled = sample_clients(50, 0.5, rng)
        assert len(np.unique(sampled)) == len(sampled)

    def test_deterministic_given_seed(self):
        a = sample_clients(100, 0.2, np.random.default_rng(3))
        b = sample_clients(100, 0.2, np.random.default_rng(3))
        np.testing.assert_array_equal(a, b)


class TestSimulationEdges:
    """Round-loop edge cases: early stop, eval boundaries, determinism."""

    def _scenario(self):
        ds = load_dataset("harbox", seed=0, num_users=8, samples_per_user=10,
                          test_size=60)
        model = build_model("har_cnn", num_classes=ds.num_classes, seed=0)
        config = LocalTrainConfig(batch_size=8, local_epochs=1, max_batches=1)
        return build_scenario("fedavg_smallest", model, ds, 8,
                              ConstraintSpec(constraints=("computation",)),
                              train_config=config, seed=0,
                              eval_max_samples=60)

    def test_stop_at_accuracy_exits_early(self):
        config = SimulationConfig(num_rounds=6, sample_ratio=0.3,
                                  eval_every=2, seed=1, stop_at_accuracy=0.0)
        history = run_simulation(self._scenario().algorithm, config)
        # Round 0 is an eval round and any accuracy satisfies target 0.0.
        assert len(history.records) == 1
        assert history.records[0].global_accuracy is not None

    def test_stop_only_checks_eval_rounds(self):
        config = SimulationConfig(num_rounds=4, sample_ratio=0.3,
                                  eval_every=3, seed=1, stop_at_accuracy=0.0)
        history = run_simulation(self._scenario().algorithm, config)
        assert len(history.records) == 1  # rounds 1..2 never evaluate

    def test_eval_every_boundary_last_round_evaluated(self):
        config = SimulationConfig(num_rounds=5, sample_ratio=0.3,
                                  eval_every=3, seed=1)
        history = run_simulation(self._scenario().algorithm, config)
        evaluated = [r.round_index for r in history.records
                     if r.global_accuracy is not None]
        # Multiples of eval_every plus the final round, even off-cycle.
        assert evaluated == [0, 3, 4]

    def test_run_deterministic_given_seed(self):
        config = SimulationConfig(num_rounds=3, sample_ratio=0.4,
                                  eval_every=2, seed=7)
        first = run_simulation(self._scenario().algorithm, config)
        second = run_simulation(self._scenario().algorithm, config)
        for a, b in zip(first.records, second.records):
            assert (a.sim_time_s, a.train_loss, a.global_accuracy) \
                == (b.sim_time_s, b.train_loss, b.global_accuracy)
        assert first.final_device_accuracies == second.final_device_accuracies
