"""Tests for constraint specs, budget-driven assignment and scenarios."""

import numpy as np
import pytest

from repro.constraints import (ConstraintSpec, ConstraintAssigner,
                               build_scenario)
from repro.data import load_dataset, partition_dataset
from repro.hw import sample_fleet
from repro.models import build_model
from repro.algorithms import get_algorithm


@pytest.fixture(scope="module")
def setup():
    ds = load_dataset("harbox", seed=0, num_users=12, samples_per_user=10,
                      test_size=60)
    fleet = sample_fleet(12, seed=1)
    shards = partition_dataset(ds, 12, seed=2)
    base = build_model("har_cnn", num_classes=ds.num_classes, seed=0)
    pool = get_algorithm("sheterofl").build_pool(base)
    return ds, fleet, shards, base, pool


class TestSpec:
    def test_unknown_constraint_rejected(self):
        with pytest.raises(ValueError):
            ConstraintSpec(constraints=("bandwidth",))

    def test_label(self):
        spec = ConstraintSpec(constraints=("memory", "communication"))
        assert spec.label == "mem+comm"
        assert ConstraintSpec(constraints=()).label == "none"

    def test_with_constraints(self):
        spec = ConstraintSpec(constraints=("computation",))
        combo = spec.with_constraints("memory", "computation")
        assert combo.constraints == ("memory", "computation")
        assert combo.deadline_quantile == spec.deadline_quantile


class TestAssigner:
    def _assigner(self, setup, **spec_kwargs):
        ds, fleet, shards, base, pool = setup
        spec = ConstraintSpec(**spec_kwargs)
        return ConstraintAssigner(spec, pool, fleet,
                                  [len(s) for s in shards])

    def test_computation_assignment_monotone_in_compute(self, setup):
        """Faster devices get models at least as large."""
        ds, fleet, shards, base, pool = setup
        assigner = self._assigner(setup, constraints=("computation",))
        entries = assigner.assign()
        order = np.argsort([c.compute_flops for c in fleet])
        flops = [entries[i].stats.flops_per_sample for i in order]
        shard_sizes = [len(shards[i]) for i in order]
        # With equal shards, assignment is monotone; allow shard-size noise.
        big_and_slow = flops[0]
        big_and_fast = flops[-1]
        assert big_and_fast >= big_and_slow

    def test_computation_produces_heterogeneity(self, setup):
        assigner = self._assigner(setup, constraints=("computation",))
        keys = {e.key for e in assigner.assign()}
        assert len(keys) > 1, "constraint should yield mixed levels"

    def test_tight_deadline_shrinks_everyone(self, setup):
        assigner = self._assigner(setup, constraints=("computation",),
                                  round_deadline_s=1e-9)
        assert all(e.key == "x0.25" for e in assigner.assign())

    def test_loose_deadline_gives_largest(self, setup):
        assigner = self._assigner(setup, constraints=("computation",),
                                  round_deadline_s=1e9)
        assert all(e.key == "x1.00" for e in assigner.assign())

    def test_memory_respects_tiers(self, setup):
        ds, fleet, shards, base, pool = setup
        assigner = self._assigner(setup, constraints=("memory",))
        entries = assigner.assign()
        by_tier = {}
        for cap, entry in zip(fleet, entries):
            by_tier.setdefault(cap.tier, set()).add(entry.proportion)
        if "16gb_gpu" in by_tier and "no_gpu" in by_tier:
            assert max(by_tier["16gb_gpu"]) >= max(by_tier["no_gpu"])

    def test_combination_is_intersection(self, setup):
        single = self._assigner(setup, constraints=("computation",)).assign()
        combo = self._assigner(
            setup, constraints=("computation", "memory")).assign()
        for s, c in zip(single, combo):
            assert c.stats.flops_per_sample <= s.stats.flops_per_sample + 1e-9

    def test_homogeneous_assignment_uniform_and_feasible(self, setup):
        assigner = self._assigner(setup, constraints=("computation",))
        entries = assigner.assign_homogeneous()
        assert len({e.key for e in entries}) == 1
        hetero = assigner.assign()
        # The common model can be no larger than anyone's individual pick.
        assert all(entries[0].stats.flops_per_sample
                   <= e.stats.flops_per_sample + 1e-9 for e in hetero)

    def test_budget_resolution_quantile(self, setup):
        assigner = self._assigner(setup, constraints=("computation",),
                                  deadline_quantile=0.5)
        assert assigner.round_deadline_s is not None
        assert assigner.comm_budget_s is None

    def test_mismatched_fleet_rejected(self, setup):
        ds, fleet, shards, base, pool = setup
        with pytest.raises(ValueError):
            ConstraintAssigner(ConstraintSpec(), pool, fleet, [1, 2])


class TestScenario:
    def test_build_scenario_wires_everything(self, setup):
        ds, fleet, shards, base, pool = setup
        spec = ConstraintSpec(constraints=("computation",))
        scenario = build_scenario("sheterofl", base, ds, 12, spec, seed=0)
        assert scenario.algorithm.num_clients == 12
        dist = scenario.level_distribution()
        assert sum(dist.values()) == 12

    def test_homogeneous_baseline_scenario(self, setup):
        ds, fleet, shards, base, pool = setup
        spec = ConstraintSpec(constraints=("computation",))
        scenario = build_scenario("fedavg_smallest", base, ds, 12, spec,
                                  seed=0)
        assert len(scenario.level_distribution()) == 1

    def test_base_model_overrides_applied(self, setup):
        ds, fleet, shards, base, pool = setup
        spec = ConstraintSpec(constraints=("memory",))
        scenario = build_scenario("depthfl", base, ds, 12, spec, seed=0)
        # DepthFL's server model owns a head at every stage boundary.
        heads = [n for n in scenario.algorithm.global_state
                 if n.startswith("heads.")]
        stages = {n.split(".")[1] for n in heads}
        assert stages == {"0", "1", "2", "3"}

    def test_depthfl_memory_punished(self, setup):
        """The Figure 6 mechanism: DepthFL's memory-heavy variants are
        infeasible on small tiers, forcing small depth fractions."""
        ds, fleet, shards, base, pool = setup
        spec = ConstraintSpec(constraints=("memory",))
        depth = build_scenario("depthfl", base, ds, 12, spec, seed=0)
        width = build_scenario("sheterofl", base, ds, 12, spec, seed=0)
        mean_prop = lambda s: np.mean(  # noqa: E731
            [e.proportion for e in
             (s.algorithm.clients[i].entry for i in range(12))])
        assert mean_prop(depth) <= mean_prop(width) + 1e-9
