"""Benchmark: regenerate Figure 9 (scalability, memory-limited CIFAR-100).

Smoke scale with a 1:2 client sweep and one algorithm per width/depth level;
the paper's 100/200/500 sweep runs via
``python -m repro.experiments.fig9 paper``.
"""

from repro.experiments import fig9, format_table

_ALGOS = ["sheterofl", "fedepth"]


def test_fig9(run_once):
    rows = run_once(lambda: fig9.run(scale="smoke", algorithms=_ALGOS,
                                     client_counts=[4, 8]))
    print()
    print(format_table(rows, title="Figure 9 (smoke)"))
    assert {r["clients"] for r in rows} == {4, 8}
    assert len(rows) == 2 * len(_ALGOS)
