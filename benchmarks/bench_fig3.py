"""Benchmark: regenerate Figure 3 (the measured model pool)."""

from repro.experiments import fig3, format_table


def test_fig3(run_once):
    rows = run_once(lambda: fig3.run(scale="paper"))
    print()
    print(format_table(rows, title="Figure 3"))
    assert len(rows) == 12   # 3 width methods x 4 multipliers
    for method in ("fjord", "sheterofl", "fedrolex"):
        series = [r for r in rows if r["method"] == method]
        # Every measured quantity shrinks with the multiplier.
        for column in ("params_M", "gflops", "memory_MB", "train_time_s"):
            values = [r[column] for r in series]
            assert values == sorted(values, reverse=True), (method, column)
