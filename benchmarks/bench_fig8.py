"""Benchmark: regenerate Figure 8 (non-IID robustness, computation-limited).

Smoke scale on CIFAR-10 with one algorithm per heterogeneity level; full
three-dataset, eight-algorithm sweep via
``python -m repro.experiments.fig8 demo``.
"""

from repro.experiments import fig8, format_table

_ALGOS = ["fedrolex", "inclusivefl", "fedet"]


def test_fig8(run_once):
    rows = run_once(lambda: fig8.run(scale="smoke", datasets=["cifar10"],
                                     algorithms=_ALGOS))
    print()
    print(format_table(rows, title="Figure 8 (smoke)"))
    assert {r["partition"] for r in rows} == {"iid", "niid-0.5", "niid-5"}
    assert len(rows) == 3 * len(_ALGOS)
