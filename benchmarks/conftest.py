"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures through the
same harness the full-scale runs use (``repro.experiments.*``), at smoke
scale so the whole suite completes in minutes.  Each benchmark prints the
regenerated rows (visible with ``pytest benchmarks/ --benchmark-only -s``)
and asserts their shape.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark an expensive harness exactly once (no warmup repeats)."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
