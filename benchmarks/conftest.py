"""Shared benchmark fixtures.

Every benchmark regenerates one of the paper's tables/figures through the
same harness the full-scale runs use (``repro.experiments.*``), at smoke
scale so the whole suite completes in minutes.  Each benchmark prints the
regenerated rows (visible with ``pytest benchmarks/ --benchmark-only -s``)
and asserts their shape.

All ``bench_*.py`` files share a ``--bench-json PATH`` option: when given,
wall-clock timings (from :func:`run_once`) and explicitly recorded numbers
(via :func:`bench_record`) are written to ``PATH`` at session end.  Two such
files can be diffed with ``results/compare_bench.py``, which fails on >20%
regression of any entry.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", action="store", default=None, metavar="PATH",
        help="write benchmark timings/results to this JSON file")


class _BenchRecorder:
    """Session-wide sink for benchmark numbers (one JSON doc per run)."""

    def __init__(self):
        self.entries: dict[str, dict] = {}

    def add(self, name: str, numbers: dict) -> None:
        self.entries[name] = dict(numbers)

    def write(self, path: Path) -> None:
        doc = {"schema": "bench_suite/v1", "results": self.entries}
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


@pytest.fixture(scope="session")
def _bench_recorder(request):
    recorder = _BenchRecorder()
    yield recorder
    path = request.config.getoption("--bench-json")
    if path and recorder.entries:
        recorder.write(Path(path))


@pytest.fixture
def bench_record(_bench_recorder):
    """Record named benchmark numbers (dict of floats) into --bench-json."""
    return _bench_recorder.add


@pytest.fixture
def run_once(benchmark, _bench_recorder, request):
    """Benchmark an expensive harness exactly once (no warmup repeats)."""

    def _run(fn):
        start = time.perf_counter()
        result = benchmark.pedantic(fn, rounds=1, iterations=1)
        _bench_recorder.add(request.node.name,
                            {"seconds": round(time.perf_counter() - start, 4)})
        return result

    return _run
