"""Wall-clock benchmark for the parallel client executors.

Runs one figure-4 cell (an algorithm on one dataset under the computation
constraint, demo scale by default) at several worker counts and records
wall-clock plus speedup over the inline executor in ``BENCH_parallel.json``
at the repo root.  Every run's ``History.to_json()`` is compared against
the inline reference — the benchmark double-checks the determinism
contract while it measures.

Usage (standalone)::

    PYTHONPATH=src python benchmarks/bench_parallel.py
    PYTHONPATH=src python benchmarks/bench_parallel.py --workers 1 2 4 8 \
        --executor process --rounds 20

Interpretation: speedup tracks *physical cores*.  The process executor
wins when client steps are Python-bound (small models, small batches — the
common demo-scale case); the thread executor wins when steps are dominated
by BLAS GEMMs that release the GIL (large conv/linear layers).  On a
single-core host every executor degrades gracefully to ~1x with a small
pool/pickling overhead — determinism, not speed, is the invariant.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_parallel.json"


def _cell_spec(algorithm: str, dataset: str, scale: str,
               rounds: int | None, workers: int, executor: str):
    from repro.constraints import ConstraintSpec
    from repro.experiments import RunSpec
    overrides = {} if rounds is None else {"num_rounds": rounds}
    return RunSpec(algorithm=algorithm, dataset=dataset,
                   constraints=ConstraintSpec(constraints=("computation",)),
                   scale=scale, scale_overrides=overrides,
                   workers=workers, executor=executor)


def run_benchmark(algorithm: str = "sheterofl", dataset: str = "cifar100",
                  scale: str = "demo", rounds: int | None = None,
                  worker_counts=(1, 2, 4),
                  executor: str = "process") -> dict:
    """Time the cell at each worker count; returns the results document."""
    from repro.experiments import execute_spec

    results = {}
    reference_json = None
    for workers in worker_counts:
        kind = "inline" if workers == 1 else executor
        spec = _cell_spec(algorithm, dataset, scale, rounds, workers, kind)
        start = time.perf_counter()
        history = execute_spec(spec, cache=None).history
        elapsed = time.perf_counter() - start
        payload = history.to_json()
        if reference_json is None:
            reference_json = payload
        identical = payload == reference_json
        if not identical:  # pragma: no cover - contract violation
            raise AssertionError(
                f"history diverged at workers={workers} ({kind})")
        results[str(workers)] = {
            "executor": kind,
            "wall_clock_s": round(elapsed, 3),
            "identical_history": identical,
        }
    base = results[str(worker_counts[0])]["wall_clock_s"]
    for entry in results.values():
        entry["speedup_vs_inline"] = round(base / entry["wall_clock_s"], 3)
    return {
        "cell": {"algorithm": algorithm, "dataset": dataset, "scale": scale,
                 "rounds": rounds, "constraint": "computation"},
        "workers": results,
    }


def record(doc: dict, json_path: Path = DEFAULT_JSON) -> dict:
    doc = {
        "schema": "bench_parallel/v1",
        "machine": {"platform": platform.platform(),
                    "python": platform.python_version(),
                    "cpus": os.cpu_count()},
        **doc,
    }
    json_path.write_text(json.dumps(doc, indent=1))
    return doc


# ----------------------------------------------------------------------
# pytest hook (smoke scale so the suite stays fast)
# ----------------------------------------------------------------------

def test_bench_parallel(bench_record):
    doc = run_benchmark(scale="smoke", dataset="harbox",
                        worker_counts=(1, 2))
    for workers, entry in doc["workers"].items():
        assert entry["identical_history"]
        bench_record(f"parallel/workers{workers}", {
            "wall_clock_s": entry["wall_clock_s"],
            "speedup_vs_inline": entry["speedup_vs_inline"]})


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="sheterofl")
    parser.add_argument("--dataset", default="cifar100")
    parser.add_argument("--scale", default="demo")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the scale's num_rounds")
    parser.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--executor", default="process",
                        choices=("thread", "process"),
                        help="pool type for the multi-worker runs")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON)
    args = parser.parse_args(argv)

    doc = record(run_benchmark(
        algorithm=args.algorithm, dataset=args.dataset, scale=args.scale,
        rounds=args.rounds, worker_counts=tuple(args.workers),
        executor=args.executor), json_path=args.json)

    print(f"cell: {doc['cell']}")
    print(f"{'workers':>8}  {'executor':>8}  {'wall s':>8}  {'speedup':>8}")
    for workers, entry in doc["workers"].items():
        print(f"{workers:>8}  {entry['executor']:>8}  "
              f"{entry['wall_clock_s']:>8.2f}  "
              f"x{entry['speedup_vs_inline']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
