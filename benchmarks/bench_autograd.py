"""Micro-benchmarks for the autograd engine hot path.

Measures forward and forward+backward throughput (ops/sec) for the operators
that dominate every PracMHBench run — conv2d variants, linear, attention,
batch_norm — plus full MobileNet / ResNet training steps, and records the
numbers in ``BENCH_autograd.json`` at the repo root so subsequent PRs have a
perf trajectory to hold.

Besides wall-clock throughput each case also records two machine-independent
counter columns measured over a single fwd+bwd call: ``peak_alloc_bytes``
(tracemalloc peak — numpy >= 1.22 registers array data allocations with
tracemalloc, while BLAS-internal scratch is invisible, so the number does not
vary with CPU count) and ``gemm_calls`` (BLAS GEMM dispatches counted by the
engine profiler; batched matmul counts one per batch element).  These feed
the ``results/compare_bench.py`` counter gate, which stays tight even when
the wall-clock threshold is loosened for noisy CI hosts.

Usage (standalone)::

    PYTHONPATH=src python benchmarks/bench_autograd.py --label after

Labels accumulate in the JSON file; once both ``before`` and ``after`` runs
are present a ``speedup`` table is derived.  ``results/compare_bench.py``
diffs two such files and fails on regression.

The module is also collectable by pytest (smoke-scale) and feeds the shared
``--bench-json`` recorder from ``benchmarks/conftest.py``.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro import autograd as ag
from repro import nn
from repro.autograd import Tensor, profiler
from repro.autograd import functional as F
from repro.models.zoo import build_model
from repro.nn.attention import TransformerEncoderLayer

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_autograd.json"

# Throughput floor below which a run is considered noise (guards the JSON).
_MIN_OPS_PER_SEC = 1e-6


def _timeit(fn, min_time: float, samples: int = 3) -> float:
    """Return calls/sec of ``fn``: best of ``samples`` windows of
    ``min_time`` seconds each (the max filters out scheduler interference)."""
    fn()  # warmup (first call pays allocation / cache effects)
    best = _MIN_OPS_PER_SEC
    for _ in range(samples):
        iters = 0
        start = time.perf_counter()
        while True:
            fn()
            iters += 1
            elapsed = time.perf_counter() - start
            if elapsed >= min_time and iters >= 3:
                break
        best = max(best, iters / elapsed)
    return best


# ----------------------------------------------------------------------
# Benchmark cases
# ----------------------------------------------------------------------

def _conv_case(xshape, wshape, stride, padding, groups, bias=True):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(xshape).astype(np.float32)
    w = (rng.standard_normal(wshape) * 0.1).astype(np.float32)
    b = rng.standard_normal((wshape[0],)).astype(np.float32) if bias else None

    def forward():
        xt = Tensor(x)
        wt = Tensor(w)
        bt = Tensor(b) if b is not None else None
        with ag.no_grad():
            ag.conv2d(xt, wt, bt, stride=stride, padding=padding, groups=groups)

    def fwd_bwd():
        xt = Tensor(x, requires_grad=True)
        wt = Tensor(w, requires_grad=True)
        bt = Tensor(b, requires_grad=True) if b is not None else None
        out = ag.conv2d(xt, wt, bt, stride=stride, padding=padding,
                        groups=groups)
        out.sum().backward()

    return forward, fwd_bwd


def _linear_case(batch=64, in_f=256, out_f=256):
    rng = np.random.default_rng(1)
    x = rng.standard_normal((batch, in_f)).astype(np.float32)
    w = (rng.standard_normal((out_f, in_f)) * 0.05).astype(np.float32)
    b = rng.standard_normal((out_f,)).astype(np.float32)

    def forward():
        with ag.no_grad():
            ag.linear(Tensor(x), Tensor(w), Tensor(b))

    def fwd_bwd():
        xt, wt, bt = (Tensor(x, True), Tensor(w, True), Tensor(b, True))
        ag.linear(xt, wt, bt).sum().backward()

    return forward, fwd_bwd


def _batch_norm_case(shape=(16, 32, 16, 16)):
    rng = np.random.default_rng(2)
    x = rng.standard_normal(shape).astype(np.float32)
    g = np.ones(shape[1], np.float32)
    b = np.zeros(shape[1], np.float32)

    def forward():
        rm, rv = np.zeros(shape[1], np.float32), np.ones(shape[1], np.float32)
        with ag.no_grad():
            ag.batch_norm(Tensor(x), Tensor(g), Tensor(b), rm, rv,
                          training=True)

    def fwd_bwd():
        rm, rv = np.zeros(shape[1], np.float32), np.ones(shape[1], np.float32)
        xt, gt, bt = Tensor(x, True), Tensor(g, True), Tensor(b, True)
        ag.batch_norm(xt, gt, bt, rm, rv, training=True).sum().backward()

    return forward, fwd_bwd


def _attention_case(batch=4, seq=32, dim=64, heads=4, ffn=128):
    rng = np.random.default_rng(3)
    layer = TransformerEncoderLayer(dim, heads, ffn, rng)
    layer.eval()  # deterministic; dropout p=0 anyway
    x = rng.standard_normal((batch, seq, dim)).astype(np.float32)

    def forward():
        with ag.no_grad():
            layer(Tensor(x))

    def fwd_bwd():
        layer.zero_grad()
        layer(Tensor(x, requires_grad=True)).sum().backward()

    return forward, fwd_bwd


def _train_step_case(arch: str, batch=8, image=16, classes=10):
    model = build_model(arch, num_classes=classes, seed=0)
    rng = np.random.default_rng(4)
    x = rng.standard_normal((batch, 3, image, image)).astype(np.float32)
    labels = rng.integers(0, classes, size=batch)
    opt = nn.SGD(model.parameters(), lr=0.01, momentum=0.9)
    plan_key = ag.plan.model_plan_key(model)

    def forward():
        model.eval()
        with ag.no_grad():
            model(x)

    def fwd_bwd():
        # Mirror the production client loop: the whole step runs under a
        # cached step plan so schedule reuse and workspace arenas are in
        # the measured path.
        model.train()
        with ag.plan.step(plan_key, x.shape):
            opt.zero_grad()
            loss = ag.cross_entropy(model(x), labels)
            loss.backward()
            opt.step()

    return forward, fwd_bwd


def _attention_core_case(batch=4, heads=4, seq=64, head_dim=16):
    """Raw fused ``ag.attention`` op (no projections / residual / FFN)."""
    rng = np.random.default_rng(5)
    shape = (batch, heads, seq, head_dim)
    q = rng.standard_normal(shape).astype(np.float32)
    k = rng.standard_normal(shape).astype(np.float32)
    v = rng.standard_normal(shape).astype(np.float32)
    scale = 1.0 / float(np.sqrt(head_dim))

    def forward():
        with ag.no_grad():
            ag.attention(Tensor(q), Tensor(k), Tensor(v), scale)

    def fwd_bwd():
        qt, kt, vt = Tensor(q, True), Tensor(k, True), Tensor(v, True)
        ag.attention(qt, kt, vt, scale).sum().backward()

    return forward, fwd_bwd


def _depthwise_backward_case(xshape=(8, 32, 16, 16), kernel=3):
    """Depthwise conv with the backward pass isolated.

    The 'forward' column re-runs backward on a prebuilt graph (grads
    cleared each call) so the batched-depthwise-backward path is timed
    without forward/tape-construction overhead; fwd_bwd is a fresh full
    pass for comparability with the other conv cases.
    """
    rng = np.random.default_rng(6)
    c = xshape[1]
    x = rng.standard_normal(xshape).astype(np.float32)
    w = (rng.standard_normal((c, 1, kernel, kernel)) * 0.1).astype(np.float32)

    xt = Tensor(x, requires_grad=True)
    wt = Tensor(w, requires_grad=True)
    root = ag.conv2d(xt, wt, None, stride=1, padding=1, groups=c).sum()

    def backward_only():
        xt.grad = None
        wt.grad = None
        root.backward()

    def fwd_bwd():
        a = Tensor(x, requires_grad=True)
        b = Tensor(w, requires_grad=True)
        ag.conv2d(a, b, None, stride=1, padding=1, groups=c).sum().backward()

    return backward_only, fwd_bwd


def _col2im_case(n=8, c=16, size=16, kernel=3):
    """The im2col adjoint on an overlapping (stride 1) geometry.

    The 'forward' column calls the raw ``_col2im`` scatter-add directly;
    fwd_bwd runs the conv fwd+bwd that exercises it in context.
    """
    rng = np.random.default_rng(7)
    oh = ow = size - kernel + 1
    cols = rng.standard_normal(
        (n, c, kernel, kernel, oh, ow)).astype(np.float32)
    x_shape = (n, c, size, size)

    def scatter():
        F._col2im(cols, x_shape, kernel, kernel, stride=1)

    x = rng.standard_normal(x_shape).astype(np.float32)
    w = (rng.standard_normal((c, c, kernel, kernel)) * 0.05).astype(np.float32)

    def fwd_bwd():
        a = Tensor(x, requires_grad=True)
        b = Tensor(w, requires_grad=True)
        ag.conv2d(a, b, None, stride=1, padding=0).sum().backward()

    return scatter, fwd_bwd


CASES: dict[str, tuple] = {
    "conv2d": lambda: _conv_case((8, 16, 16, 16), (32, 16, 3, 3), 1, 1, 1),
    "conv2d_1x1": lambda: _conv_case((8, 32, 16, 16), (64, 32, 1, 1), 1, 0, 1),
    "conv2d_depthwise": lambda: _conv_case((8, 32, 16, 16), (32, 1, 3, 3),
                                           1, 1, 32, bias=False),
    "conv2d_stride2": lambda: _conv_case((4, 16, 32, 32), (32, 16, 3, 3),
                                         2, 1, 1),
    "linear": _linear_case,
    "batch_norm": _batch_norm_case,
    "attention": _attention_case,
    "attention_core": _attention_core_case,
    "depthwise_backward": _depthwise_backward_case,
    "col2im": _col2im_case,
    "mobilenet_step": lambda: _train_step_case("mobilenet_v2"),
    "resnet_step": lambda: _train_step_case("resnet18"),
}


def _count_one_call(fwd_bwd) -> dict[str, int]:
    """Deterministic per-call counters: tracemalloc peak + GEMM dispatches.

    Run after the timing loops so caches (col2im plans, workspace arenas)
    are warm — the numbers then depend only on the engine code path, not
    on machine speed or CPU count.
    """
    with profiler.profile() as report:
        tracemalloc.start()
        try:
            fwd_bwd()
            peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
    return {"peak_alloc_bytes": int(peak), "gemm_calls": int(report.gemm_calls)}


def run_benchmarks(min_time: float = 0.3,
                   cases: list[str] | None = None) -> dict[str, dict]:
    """Run the micro-benchmarks and return op -> throughput numbers."""
    results: dict[str, dict] = {}
    unknown = sorted(set(cases or ()) - set(CASES))
    if unknown:
        raise SystemExit(f"unknown benchmark case(s) {unknown}; "
                         f"choose from {sorted(CASES)}")
    for name in (cases or list(CASES)):
        forward, fwd_bwd = CASES[name]()
        results[name] = {
            "forward_ops_per_sec": round(_timeit(forward, min_time), 2),
            "fwd_bwd_ops_per_sec": round(_timeit(fwd_bwd, min_time), 2),
            **_count_one_call(fwd_bwd),
        }
    return results


# ----------------------------------------------------------------------
# JSON persistence
# ----------------------------------------------------------------------

def _speedups(runs: dict[str, dict]) -> dict[str, dict]:
    """Derive after/before throughput ratios when both runs are recorded."""
    if "before" not in runs or "after" not in runs:
        return {}
    table = {}
    before, after = runs["before"]["results"], runs["after"]["results"]
    for op in sorted(set(before) & set(after)):
        table[op] = {
            "forward": round(after[op]["forward_ops_per_sec"]
                             / before[op]["forward_ops_per_sec"], 2),
            "fwd_bwd": round(after[op]["fwd_bwd_ops_per_sec"]
                             / before[op]["fwd_bwd_ops_per_sec"], 2),
        }
    return table


def record(label: str, results: dict[str, dict],
           json_path: Path = DEFAULT_JSON) -> dict:
    """Merge a labelled run into the benchmark JSON file."""
    doc = {"schema": "bench_autograd/v1", "runs": {}}
    if json_path.exists():
        doc = json.loads(json_path.read_text())
        doc.setdefault("runs", {})
    run = doc["runs"].setdefault(label, {"results": {}})
    run["python"] = platform.python_version()
    run["numpy"] = np.__version__
    # Merge per-op so partial (--cases) runs refine an existing label.
    run.setdefault("results", {}).update(results)
    doc["speedup"] = _speedups(doc["runs"])
    json_path.write_text(json.dumps(doc, indent=2) + "\n")
    return doc


# ----------------------------------------------------------------------
# pytest entry point (smoke scale; records into --bench-json when given)
# ----------------------------------------------------------------------

def test_bench_autograd(bench_record):
    results = run_benchmarks(min_time=0.05,
                             cases=["conv2d", "linear", "batch_norm"])
    for op, numbers in results.items():
        assert numbers["fwd_bwd_ops_per_sec"] > 0
        bench_record(f"autograd/{op}", numbers)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--label", default="after",
                        help="run label stored in the JSON (before/after/...)")
    parser.add_argument("--json", type=Path, default=DEFAULT_JSON,
                        help="output JSON path (default: repo BENCH_autograd.json)")
    parser.add_argument("--min-time", type=float, default=0.3,
                        help="minimum seconds to sample each benchmark")
    parser.add_argument("--cases", nargs="*", default=None,
                        help="subset of cases to run (default: all)")
    args = parser.parse_args(argv)

    results = run_benchmarks(min_time=args.min_time, cases=args.cases)
    doc = record(args.label, results, json_path=args.json)

    width = max(len(op) for op in results)
    print(f"{'op':<{width}}  {'forward/s':>12}  {'fwd+bwd/s':>12}  "
          f"{'peak_kb':>9}  {'gemms':>6}")
    for op, numbers in results.items():
        print(f"{op:<{width}}  {numbers['forward_ops_per_sec']:>12.1f}  "
              f"{numbers['fwd_bwd_ops_per_sec']:>12.1f}  "
              f"{numbers['peak_alloc_bytes'] / 1024:>9.0f}  "
              f"{numbers['gemm_calls']:>6d}")
    if doc.get("speedup"):
        print("\nspeedup vs 'before':")
        for op, ratio in doc["speedup"].items():
            print(f"{op:<{width}}  forward x{ratio['forward']:<6} "
                  f"fwd+bwd x{ratio['fwd_bwd']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
