"""Benchmark: regenerate Figure 7 (constraint combinations on CIFAR-100).

Smoke scale with one representative algorithm per heterogeneity level; the
full eight-algorithm sweep runs via ``python -m repro.experiments.fig7 demo``.
"""

from repro.experiments import fig7, format_table

_ALGOS = ["sheterofl", "depthfl", "fedproto"]


def test_fig7(run_once):
    rows = run_once(lambda: fig7.run(scale="smoke", algorithms=_ALGOS))
    print()
    print(format_table(rows, title="Figure 7 (smoke)"))
    labels = {r["constraints"] for r in rows}
    assert labels == {"comp", "mem", "comm", "mem+comm", "mem+comm+comp"}
    assert len(rows) == 5 * len(_ALGOS)
