"""Benchmark: regenerate Table III (edge device inventory)."""

from repro.experiments import format_table, table3


def test_table3(run_once):
    rows = run_once(lambda: table3.run())
    print()
    print(format_table(rows, title="Table III"))
    assert len(rows) == 4
    rpi = next(r for r in rows if r["device"] == "raspberry_pi_4b")
    assert rpi["gpu"] == "none"
