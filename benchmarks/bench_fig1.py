"""Benchmark: regenerate Figure 1 (the radar-chart evaluation track).

The paper's radars are demonstrative; this renders real normalised scores
from a smoke-scale computation-limited run on HAR-BOX.
"""

from repro.experiments import fig1
from repro.experiments.fig1 import _AXES, _HIGHER_BETTER
from repro.experiments import format_radar


def test_fig1(run_once):
    rows = run_once(lambda: fig1.run(scale="smoke",
                                                dataset="harbox"))
    print()
    print(format_radar(rows, _AXES, higher_better=_HIGHER_BETTER,
                       title="Figure 1 (smoke radar scores)"))
    assert len(rows) == 8
