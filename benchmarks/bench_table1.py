"""Benchmark: regenerate Table I (method-dependent cost of x0.5 ResNet-101)."""

from repro.experiments import format_table, table1


def test_table1(run_once):
    rows = run_once(lambda: table1.run(scale="paper"))
    print()
    print(format_table(rows, title="Table I"))
    by_method = {r["method"]: r for r in rows}
    assert set(by_method) == {"SHeteroFL", "DepthFL", "FedRolex", "FeDepth"}
    # The paper's headline pattern: equal proportion, very different memory.
    assert by_method["DepthFL"]["memory_MB"] > by_method["SHeteroFL"]["memory_MB"]
    # Width methods land near the paper's 10.7M parameters.
    assert 8.0 < by_method["SHeteroFL"]["params_M"] < 13.0
