"""Benchmark: regenerate Figure 5 (communication-limited MHFL).

Smoke scale on the NLP track plus UCI-HAR; full grid via
``python -m repro.experiments.fig5 demo``.
"""

from repro.experiments import fig5, format_table

_DATASETS = ["agnews", "ucihar"]


def test_fig5(run_once):
    rows = run_once(lambda: fig5.run(scale="smoke", datasets=_DATASETS))
    print()
    print(format_table(rows, title="Figure 5 (smoke)"))
    assert len(rows) == 8 * len(_DATASETS)
    assert {r["dataset"] for r in rows} == set(_DATASETS)
