"""Benchmark: regenerate the sync-vs-deadline-vs-buffered comparison.

Smoke scale with one width algorithm on the computation case; the full
table runs via ``python -m repro async_compare demo``.
"""

from repro.experiments import format_table
from repro.experiments import async_compare


def test_async_compare(run_once):
    rows = run_once(lambda: async_compare.run(
        scale="smoke", algorithms=["sheterofl"],
        cases=[("computation",)]))
    print()
    print(format_table(rows, title="Async compare (smoke)"))
    assert {r["mode"] for r in rows} == set(async_compare.MODES)
    assert len(rows) == len(async_compare.MODES)
    # The buffered run aggregates the same number of server versions in no
    # more simulated time than the straggler-bound synchronous run.
    by_mode = {r["mode"]: r for r in rows}
    assert by_mode["buffered"]["total_s"] <= by_mode["sync"]["total_s"]
