"""Benchmark: regenerate Table II (platform statistics grid)."""

from repro.experiments import format_table, table2


def test_table2(run_once):
    rows = run_once(lambda: table2.run())
    print()
    print(format_table(rows, title="Table II"))
    assert len(rows) == 8
    levels = [r["hetero"] for r in rows]
    assert levels.count("width") == 3
    assert levels.count("depth") == 3
    assert levels.count("topology") == 2
