"""Benchmark: regenerate Figure 6 (memory-limited MHFL).

The paper's memory case targets the large models only: ResNet-101 on
CIFAR-100 and ALBERT on Stack Overflow.
"""

from repro.experiments import fig6, format_table


def test_fig6(run_once):
    rows = run_once(lambda: fig6.run(scale="smoke"))
    print()
    print(format_table(rows, title="Figure 6 (smoke)"))
    assert {r["dataset"] for r in rows} == {"cifar100", "stackoverflow"}
    assert len(rows) == 8 * 2
