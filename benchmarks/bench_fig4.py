"""Benchmark: regenerate Figure 4 (computation-limited MHFL).

Smoke scale, all eight algorithms on one dataset per data track (CV / HAR) —
the full six-dataset grid runs via ``python -m repro.experiments.fig4 demo``.
"""

from repro.experiments import fig4, format_table

_DATASETS = ["cifar100", "harbox"]


def test_fig4(run_once):
    rows = run_once(lambda: fig4.run(scale="smoke", datasets=_DATASETS))
    print()
    print(format_table(rows, title="Figure 4 (smoke)"))
    assert len(rows) == 8 * len(_DATASETS)
    for row in rows:
        assert 0.0 <= row["global_acc"] <= 1.0
        assert row["stability_var"] >= 0.0
        assert row["effectiveness"] is not None
