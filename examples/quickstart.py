"""Quickstart: one model-heterogeneous federated run, end to end.

Builds the HAR-BOX task, samples a heterogeneous device fleet, lets the
computation constraint assign each client the largest width variant it can
train in time, runs SHeteroFL for a few dozen rounds, and reports the four
PracMHBench metrics against the smallest-homogeneous baseline.

Run:  python examples/quickstart.py
"""

from repro.constraints import ConstraintSpec
from repro.experiments import format_table, run_suite

def main() -> None:
    spec = ConstraintSpec(constraints=("computation",))
    summaries = run_suite(["sheterofl"], "harbox", spec, scale="demo", seed=0)
    print(format_table([s.as_row() for s in summaries],
                       title="SHeteroFL on HAR-BOX (computation-limited)"))
    print("\nColumns: global_acc = final global-test accuracy;")
    print("tta_s = simulated seconds to the preset accuracy;")
    print("stability_var = variance of per-device accuracies (lower better);")
    print("effectiveness = gain over the smallest homogeneous FedAvg model.")


if __name__ == "__main__":
    main()
