"""Topology heterogeneity on UCI-HAR: FedProto vs Fed-ET.

Each client runs an entirely different customized CNN (the HAR family);
FedProto exchanges class prototypes, Fed-ET distils a server model from the
ensemble.  The example prints each client's architecture and the per-device
accuracies behind the stability metric.

Run:  python examples/topology_har.py
"""

from repro.constraints import ConstraintSpec
from repro.experiments import format_table, run_one


def main() -> None:
    spec = ConstraintSpec(constraints=("computation",))
    rows = []
    for name in ("fedproto", "fedet"):
        result = run_one(name, "ucihar", spec, scale="demo", seed=0)
        print(f"{name} architecture assignment: "
              f"{result.scenario.level_distribution()}")
        accs = result.history.final_device_accuracies
        rows.append({
            "algorithm": name,
            "global_acc": round(result.final_accuracy, 4),
            "device_acc_min": round(min(accs), 4),
            "device_acc_max": round(max(accs), 4),
            "stability_var": round(result.history.stability(), 6),
        })
    print()
    print(format_table(rows, title="UCI-HAR topology heterogeneity"))


if __name__ == "__main__":
    main()
