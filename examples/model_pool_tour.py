"""A tour of the hardware substrate — no training, runs in seconds.

Walks the pieces Section IV of the paper builds: measure paper-scale
ResNet-101 variants (params / GFLOPs / activation bytes), price them on the
Table III devices with the analytic cost model, and let the model pool pick
the largest variant that fits each constraint.

Run:  python examples/model_pool_tour.py
"""

from repro.algorithms import get_algorithm
from repro.experiments import format_table
from repro.hw import DEFAULT_COST_MODEL, get_device, sample_fleet
from repro.models import build_model


def main() -> None:
    cm = DEFAULT_COST_MODEL
    base = build_model("resnet101", num_classes=100, seed=0, scale="paper")
    pool = get_algorithm("sheterofl").build_pool(base)

    rows = []
    for entry in pool:
        stats = entry.stats
        rows.append({
            "variant": entry.key,
            "params_M": round(stats.params_millions, 2),
            "gflops": round(stats.gflops_per_sample, 3),
            "act_MB_per_sample": round(
                stats.activation_bytes_per_sample / 2**20, 2),
            "mem_MB(b=8)": round(cm.training_memory_bytes(stats, 8) / 2**20, 1),
        })
    print(format_table(rows, title="Paper-scale ResNet-101 width pool"))
    print()

    for device_name in ("jetson_orin_nx", "jetson_nano", "raspberry_pi_4b"):
        device = get_device(device_name)
        picked = pool.largest_within_time(device, deadline_s=300.0,
                                          num_samples=500)
        print(f"{device_name:16s} largest variant within a 300 s round: "
              f"{picked.key}")
    print()

    fleet = sample_fleet(5, seed=0)
    for cap in fleet:
        time_full = cm.training_time_s(pool.largest.stats, cap.as_device(),
                                       num_samples=500)
        print(f"client {cap.client_id} ({cap.tier:8s}, "
              f"{cap.compute_flops / 1e9:5.2f} GFLOP/s): full model round = "
              f"{time_full:7.1f}s")


if __name__ == "__main__":
    main()
