"""Memory-limited MHFL on Stack Overflow with ALBERT (Figure 6's NLP column).

The memory case assigns models by device tier (16 GB GPU / 4 GB GPU /
no GPU, in market-share proportions).  The example shows the paper's key
memory-case effect: DepthFL — strong under compute/communication limits —
loses its edge because its activation-heavy variants do not fit small tiers,
while FeDepth's segment training stays feasible.

Run:  python examples/memory_limited_nlp.py
"""

from repro.constraints import ConstraintSpec
from repro.experiments import format_table, run_one, run_suite


def main() -> None:
    spec = ConstraintSpec(constraints=("memory",))

    print("Capacity levels assigned per algorithm (memory tiers binding):")
    for name in ("depthfl", "fedepth", "sheterofl"):
        result = run_one(name, "stackoverflow", spec, scale="demo", seed=0)
        print(f"  {name:12s} {result.scenario.level_distribution()}")
    print()

    summaries = run_suite(["sheterofl", "depthfl", "fedepth"],
                          "stackoverflow", spec, scale="demo", seed=0)
    print(format_table([s.as_row() for s in summaries],
                       title="Stack Overflow (ALBERT), memory-limited"))


if __name__ == "__main__":
    main()
