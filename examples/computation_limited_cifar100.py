"""Computation-limited MHFL on CIFAR-100 (the paper's Figure 4 CV column).

Compares one algorithm per heterogeneity level — SHeteroFL (width), DepthFL
(depth), Fed-ET (topology) — on ResNet-101 variants under the IMA-style
computation constraint: every client receives the largest variant it can
train inside the fleet-derived round deadline.

Run:  python examples/computation_limited_cifar100.py
"""

from repro.constraints import ConstraintSpec
from repro.experiments import format_table, run_one, run_suite


def main() -> None:
    spec = ConstraintSpec(constraints=("computation",))

    # Peek at the assignment the constraint produces for SHeteroFL.
    result = run_one("sheterofl", "cifar100", spec, scale="demo", seed=0)
    print("SHeteroFL capacity-level assignment under the deadline "
          f"({result.scenario.assigner.round_deadline_s:.0f}s):")
    for key, count in sorted(result.scenario.level_distribution().items()):
        print(f"  {key}: {count} clients")
    print()

    summaries = run_suite(["sheterofl", "depthfl", "fedet"], "cifar100",
                          spec, scale="demo", seed=0)
    print(format_table([s.as_row() for s in summaries],
                       title="CIFAR-100, computation-limited "
                             "(one algorithm per heterogeneity level)"))


if __name__ == "__main__":
    main()
