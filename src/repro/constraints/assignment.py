"""Budget-driven model assignment (the paper's model-pool selection).

For every client, the feasible set is the pool entries whose cost satisfies
*all* active constraints on that client's device; the client gets the largest
feasible entry ("the largest trainable model is assigned", Section IV).  A
client with an empty feasible set falls back to the smallest entry — it must
still participate.

The homogeneous effectiveness baseline instead assigns everyone the largest
entry feasible for *every* client simultaneously ("training the smallest
homogeneous model across all heterogeneous devices").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..hw.cost_model import CostModel, DEFAULT_COST_MODEL
from ..hw.ima import ClientCapability
from ..hw.model_pool import ModelPool, PoolEntry
from .spec import ConstraintSpec

__all__ = ["ConstraintAssigner"]


class ConstraintAssigner:
    """Resolves budgets against a fleet and assigns pool entries."""

    def __init__(self, spec: ConstraintSpec, pool: ModelPool,
                 fleet: Sequence[ClientCapability],
                 shard_sizes: Sequence[int],
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        if len(fleet) != len(shard_sizes):
            raise ValueError("fleet and shard_sizes must be parallel")
        self.spec = spec
        self.pool = pool
        self.fleet = list(fleet)
        self.shard_sizes = list(shard_sizes)
        self.cost_model = cost_model
        self._deadline_s = self._resolve_deadline()
        self._comm_budget_s = self._resolve_comm_budget()
        self._memory_budgets = self._resolve_memory_budgets()

    # ------------------------------------------------------------------
    # Budget resolution
    # ------------------------------------------------------------------
    def _largest_costs(self, fn) -> np.ndarray:
        entry = self.pool.largest
        return np.array([fn(entry, cap, size)
                         for cap, size in zip(self.fleet, self.shard_sizes)])

    def _train_time(self, entry: PoolEntry, cap: ClientCapability,
                    shard_size: int) -> float:
        return self.cost_model.training_time_s(
            entry.stats, cap.as_device(), num_samples=shard_size,
            local_epochs=self.spec.local_epochs)

    def _comm_time(self, entry: PoolEntry, cap: ClientCapability,
                   shard_size: int) -> float:
        payload = entry.stats.param_bytes
        return payload / cap.downlink_bps + payload / cap.uplink_bps

    def _resolve_deadline(self) -> float | None:
        if "computation" not in self.spec.constraints:
            return None
        if self.spec.round_deadline_s is not None:
            return self.spec.round_deadline_s
        costs = self._largest_costs(self._train_time)
        return float(np.quantile(costs, self.spec.deadline_quantile))

    def _resolve_comm_budget(self) -> float | None:
        if "communication" not in self.spec.constraints:
            return None
        if self.spec.comm_budget_s is not None:
            return self.spec.comm_budget_s
        costs = self._largest_costs(self._comm_time)
        return float(np.quantile(costs, self.spec.comm_quantile))

    def _resolve_memory_budgets(self) -> dict[str, float] | None:
        if "memory" not in self.spec.constraints:
            return None
        peak = max(self.cost_model.training_memory_bytes(
            entry.stats, self.spec.memory_batch_size)
            for entry in self.pool.entries)
        return {tier: factor * peak
                for tier, factor in self.spec.tier_factors.items()}

    @property
    def round_deadline_s(self) -> float | None:
        return self._deadline_s

    @property
    def comm_budget_s(self) -> float | None:
        return self._comm_budget_s

    # ------------------------------------------------------------------
    # Feasibility / assignment
    # ------------------------------------------------------------------
    def feasible(self, entry: PoolEntry, cap: ClientCapability,
                 shard_size: int) -> bool:
        """Does ``entry`` satisfy every active constraint on this client?"""
        spec = self.spec
        if self._deadline_s is not None \
                and self._train_time(entry, cap, shard_size) > self._deadline_s:
            return False
        if self._comm_budget_s is not None \
                and self._comm_time(entry, cap, shard_size) > self._comm_budget_s:
            return False
        if self._memory_budgets is not None:
            needed = self.cost_model.training_memory_bytes(
                entry.stats, spec.memory_batch_size)
            if spec.memory_absolute:
                budget = cap.memory_bytes * spec.memory_headroom
            else:
                budget = self._memory_budgets.get(cap.tier, 0.0)
            if needed > budget:
                return False
        return True

    def largest_feasible(self, cap: ClientCapability,
                         shard_size: int) -> PoolEntry:
        """Largest entry this client can run (fallback: the smallest)."""
        best = self.pool.smallest
        for entry in self.pool.entries:       # ordered by flops ascending
            if self.feasible(entry, cap, shard_size):
                best = entry
        return best

    def assign(self) -> list[PoolEntry]:
        """Per-client assignment (the MHFL methods' heterogeneous levels)."""
        return [self.largest_feasible(cap, size)
                for cap, size in zip(self.fleet, self.shard_sizes)]

    def assign_homogeneous(self) -> list[PoolEntry]:
        """Everyone gets the largest entry feasible for *all* clients."""
        best_common = self.pool.smallest
        for entry in self.pool.entries:
            if all(self.feasible(entry, cap, size)
                   for cap, size in zip(self.fleet, self.shard_sizes)):
                best_common = entry
        return [best_common] * len(self.fleet)
