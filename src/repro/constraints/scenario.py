"""Scenario builder: constraint case -> ready-to-run algorithm instance.

Glues together every substrate: dataset + partition, fleet sampling, the
algorithm's variant pool, budget-driven assignment, and the algorithm object
itself.  The same entry point serves all of the paper's experiments
(Figures 4–9): only the :class:`~repro.constraints.spec.ConstraintSpec`, the
dataset/partition and the algorithm name change.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms import ClientContext, MHFLAlgorithm, get_algorithm
from ..data.dataset import FederatedDataset
from ..data.partition import partition_dataset
from ..fl.client import LocalTrainConfig
from ..hw.cost_model import CostModel, DEFAULT_COST_MODEL
from ..hw.ima import sample_fleet
from ..models.base import SliceableModel
from .assignment import ConstraintAssigner
from .spec import ConstraintSpec

__all__ = ["BuiltScenario", "build_scenario"]


@dataclass
class BuiltScenario:
    """A constraint case instantiated for one algorithm."""

    algorithm: MHFLAlgorithm
    assigner: ConstraintAssigner
    #: per-client assigned pool-entry keys (for inspection / reporting).
    assignment_keys: list[str]
    #: the spec this scenario was built from (carries the availability
    #: scenario the event-driven runtime should honour).
    spec: ConstraintSpec | None = None
    #: number of label classes in the scenario's dataset, recorded so
    #: downstream metric targets need no dataset reload.
    num_classes: int | None = None

    def level_distribution(self) -> dict[str, int]:
        """How many clients run each capacity level."""
        counts: dict[str, int] = {}
        for key in self.assignment_keys:
            counts[key] = counts.get(key, 0) + 1
        return counts

    def execution_config(self, policy: str = "sync", **overrides):
        """Execution block for this scenario's availability case (see
        :meth:`repro.constraints.spec.ConstraintSpec.execution_config`)."""
        spec = self.spec if self.spec is not None else ConstraintSpec()
        return spec.execution_config(policy=policy, **overrides)


def build_scenario(algorithm_name: str, base_model: SliceableModel,
                   dataset: FederatedDataset, num_clients: int,
                   spec: ConstraintSpec,
                   train_config: LocalTrainConfig | None = None,
                   partition_scheme: str = "auto", alpha: float = 0.5,
                   seed: int = 0,
                   cost_model: CostModel = DEFAULT_COST_MODEL,
                   eval_max_samples: int = 512) -> BuiltScenario:
    """Build a constrained federated scenario for one algorithm.

    ``base_model`` should be built *without* the algorithm's base-model
    overrides — they are applied here, so callers can share one model
    definition across algorithms.
    """
    cls = get_algorithm(algorithm_name)
    if cls.base_model_overrides:
        base_model = base_model.variant(**cls.base_model_overrides)

    shards = partition_dataset(dataset, num_clients, scheme=partition_scheme,
                               alpha=alpha, seed=seed)
    fleet = sample_fleet(num_clients, seed=seed + 1)
    pool = cls.build_pool(base_model, cost_model=cost_model)

    assigner = ConstraintAssigner(
        spec, pool, fleet, [len(s) for s in shards], cost_model=cost_model)
    if cls.level == "homogeneous":
        entries = assigner.assign_homogeneous()
    else:
        entries = assigner.assign()

    clients = [ClientContext(client_id=cap.client_id,
                             shard=dataset.subset(shard),
                             capability=cap, entry=entry)
               for cap, shard, entry in zip(fleet, shards, entries)]
    algorithm = cls(base_model, dataset, clients,
                    train_config=train_config, cost_model=cost_model,
                    eval_max_samples=eval_max_samples, pool=pool)
    return BuiltScenario(algorithm=algorithm, assigner=assigner,
                         assignment_keys=[e.key for e in entries], spec=spec,
                         num_classes=dataset.num_classes)
