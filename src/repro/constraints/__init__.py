"""Practical device constraints: computation / communication / memory cases,
plus fleet availability scenarios for the event-driven runtime."""

from .spec import ConstraintSpec, CONSTRAINT_KINDS, AVAILABILITY_KINDS
from .assignment import ConstraintAssigner
from .scenario import BuiltScenario, build_scenario

__all__ = ["ConstraintSpec", "CONSTRAINT_KINDS", "AVAILABILITY_KINDS",
           "ConstraintAssigner", "BuiltScenario", "build_scenario"]
