"""Practical device constraints: computation / communication / memory cases."""

from .spec import ConstraintSpec, CONSTRAINT_KINDS
from .assignment import ConstraintAssigner
from .scenario import BuiltScenario, build_scenario

__all__ = ["ConstraintSpec", "CONSTRAINT_KINDS", "ConstraintAssigner",
           "BuiltScenario", "build_scenario"]
