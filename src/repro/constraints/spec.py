"""Constraint-case specifications (Section IV of the paper).

A :class:`ConstraintSpec` names the active resource constraints and how
their budgets are derived.  Budgets can be given absolutely (seconds /
bytes — the natural choice at paper scale) or *relatively*: as a quantile of
the fleet's cost for the largest pool entry, which keeps the constraint
binding at any simulation scale (our tiny models would otherwise satisfy
every absolute edge budget trivially).

Beyond the paper's three *resource* cases, a spec also names the fleet's
**availability scenario** — always-on, diurnal day/night cycles, Markov
on/off churn, or random mid-round dropout (see
:mod:`repro.fl.availability`).  Resource constraints shape *which model* a
client can train; availability shapes *whether it is there to train at
all*, and the event-driven runtime consumes both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

__all__ = ["ConstraintSpec", "CONSTRAINT_KINDS", "AVAILABILITY_KINDS"]

CONSTRAINT_KINDS = ("computation", "communication", "memory")

#: Availability scenarios (registry names in :mod:`repro.fl.availability`).
AVAILABILITY_KINDS = ("always_on", "diurnal", "markov", "dropout")

#: Memory budget per fleet tier, as a fraction of the pool's largest entry's
#: training memory.  Mirrors the paper's tiers: 16 GB devices train the
#: largest model, 4 GB devices a mid one, CPU-only devices the smallest.
DEFAULT_TIER_FACTORS = {"16gb_gpu": 1.05, "4gb_gpu": 0.60, "no_gpu": 0.35}


@dataclass(frozen=True)
class ConstraintSpec:
    """Which resources are limited and how tight the budgets are."""

    constraints: tuple[str, ...] = ("computation",)
    #: relative budgets: fleet quantile of the largest entry's cost.
    deadline_quantile: float = 0.35
    comm_quantile: float = 0.35
    #: absolute overrides (seconds); None = derive from quantile.
    round_deadline_s: float | None = None
    comm_budget_s: float | None = None
    #: memory case: relative tier budgets or absolute device memory.
    tier_factors: dict = field(default_factory=lambda: dict(DEFAULT_TIER_FACTORS))
    memory_absolute: bool = False
    memory_batch_size: int = 8
    memory_headroom: float = 0.8
    local_epochs: int = 1
    #: fleet availability scenario (see :data:`AVAILABILITY_KINDS`).
    availability: str = "always_on"
    availability_kwargs: dict = field(default_factory=dict)
    #: fault-injection profile as :class:`~repro.fl.faults.FaultSpec`
    #: kwargs (empty = healthy fleet).  Availability shapes whether a
    #: client is there to train; faults shape whether its work *survives*.
    faults: dict = field(default_factory=dict)

    #: every ConstraintSpec field is semantic (changes results), so every
    #: one is serialised and content-hashed; the empty set states that
    #: decision explicitly for ``repro lint``'s hash-field-coverage rule.
    HASH_EXCLUDED: ClassVar[frozenset[str]] = frozenset()

    def __post_init__(self):
        unknown = set(self.constraints) - set(CONSTRAINT_KINDS)
        if unknown:
            raise ValueError(f"unknown constraints {sorted(unknown)}; "
                             f"known: {CONSTRAINT_KINDS}")
        if self.availability not in AVAILABILITY_KINDS:
            raise ValueError(
                f"unknown availability scenario {self.availability!r}; "
                f"known: {AVAILABILITY_KINDS}")
        if self.faults:
            from ..fl.faults import FaultSpec
            FaultSpec(**self.faults)  # validate eagerly, at spec build time

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"mem+comm"`` (Figure 7's x-axis).

        Availability scenarios other than always-on are appended, e.g.
        ``"comp/markov"``.
        """
        short = {"computation": "comp", "communication": "comm",
                 "memory": "mem"}
        label = "+".join(short[c] for c in self.constraints) or "none"
        if self.availability != "always_on":
            label = f"{label}/{self.availability}"
        return label

    def with_constraints(self, *constraints: str) -> "ConstraintSpec":
        from dataclasses import replace
        return replace(self, constraints=tuple(constraints))

    def with_availability(self, availability: str,
                          **availability_kwargs) -> "ConstraintSpec":
        from dataclasses import replace
        return replace(self, availability=availability,
                       availability_kwargs=availability_kwargs)

    def with_faults(self, **faults) -> "ConstraintSpec":
        """This spec with a fault-injection profile (FaultSpec kwargs);
        ``with_faults()`` clears it."""
        from dataclasses import replace
        return replace(self, faults=faults)

    def execution_config(self, policy: str = "sync", **overrides):
        """Build an :class:`~repro.fl.aggregation.ExecutionConfig` running
        this spec's availability scenario (and fault profile, if any)
        under the given policy."""
        from ..fl.aggregation import ExecutionConfig
        from ..fl.faults import FaultSpec
        kwargs = dict(policy=policy, availability=self.availability,
                      availability_kwargs=dict(self.availability_kwargs))
        if self.faults:
            kwargs["faults"] = FaultSpec(**self.faults)
        kwargs.update(overrides)
        return ExecutionConfig(**kwargs)

    # ------------------------------------------------------------------
    # Serialisation (stable JSON-safe form; used by RunSpec hashing)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`.

        ``faults`` serialises only when non-empty: pre-existing specs keep
        their exact payload, so no cached content hash ever moves.
        """
        payload = {
            "constraints": list(self.constraints),
            "deadline_quantile": self.deadline_quantile,
            "comm_quantile": self.comm_quantile,
            "round_deadline_s": self.round_deadline_s,
            "comm_budget_s": self.comm_budget_s,
            "tier_factors": dict(self.tier_factors),
            "memory_absolute": self.memory_absolute,
            "memory_batch_size": self.memory_batch_size,
            "memory_headroom": self.memory_headroom,
            "local_epochs": self.local_epochs,
            "availability": self.availability,
            "availability_kwargs": dict(self.availability_kwargs),
        }
        if self.faults:
            payload["faults"] = dict(self.faults)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ConstraintSpec":
        payload = dict(payload)
        payload["constraints"] = tuple(payload.get("constraints",
                                                   ("computation",)))
        return cls(**payload)
