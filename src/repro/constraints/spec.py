"""Constraint-case specifications (Section IV of the paper).

A :class:`ConstraintSpec` names the active resource constraints and how
their budgets are derived.  Budgets can be given absolutely (seconds /
bytes — the natural choice at paper scale) or *relatively*: as a quantile of
the fleet's cost for the largest pool entry, which keeps the constraint
binding at any simulation scale (our tiny models would otherwise satisfy
every absolute edge budget trivially).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ConstraintSpec", "CONSTRAINT_KINDS"]

CONSTRAINT_KINDS = ("computation", "communication", "memory")

#: Memory budget per fleet tier, as a fraction of the pool's largest entry's
#: training memory.  Mirrors the paper's tiers: 16 GB devices train the
#: largest model, 4 GB devices a mid one, CPU-only devices the smallest.
DEFAULT_TIER_FACTORS = {"16gb_gpu": 1.05, "4gb_gpu": 0.60, "no_gpu": 0.35}


@dataclass(frozen=True)
class ConstraintSpec:
    """Which resources are limited and how tight the budgets are."""

    constraints: tuple[str, ...] = ("computation",)
    #: relative budgets: fleet quantile of the largest entry's cost.
    deadline_quantile: float = 0.35
    comm_quantile: float = 0.35
    #: absolute overrides (seconds); None = derive from quantile.
    round_deadline_s: float | None = None
    comm_budget_s: float | None = None
    #: memory case: relative tier budgets or absolute device memory.
    tier_factors: dict = field(default_factory=lambda: dict(DEFAULT_TIER_FACTORS))
    memory_absolute: bool = False
    memory_batch_size: int = 8
    memory_headroom: float = 0.8
    local_epochs: int = 1

    def __post_init__(self):
        unknown = set(self.constraints) - set(CONSTRAINT_KINDS)
        if unknown:
            raise ValueError(f"unknown constraints {sorted(unknown)}; "
                             f"known: {CONSTRAINT_KINDS}")

    @property
    def label(self) -> str:
        """Short display label, e.g. ``"mem+comm"`` (Figure 7's x-axis)."""
        short = {"computation": "comp", "communication": "comm",
                 "memory": "mem"}
        return "+".join(short[c] for c in self.constraints) or "none"

    def with_constraints(self, *constraints: str) -> "ConstraintSpec":
        from dataclasses import replace
        return replace(self, constraints=tuple(constraints))
