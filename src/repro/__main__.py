"""Unified command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro list
    python -m repro describe fig4
    python -m repro run fig4 --scale demo --seeds 0,1,2 --out json
    python -m repro run fig6 --datasets cifar100 --algorithms sheterofl,fjord
    python -m repro run fig4 --rounds 10 --availability markov
    python -m repro run fig4 --workers 4           # same bytes, more cores

Artifacts come from the registry (:mod:`repro.experiments.registry`) —
every ``@register_artifact`` module is auto-discovered.  Runs are cached
content-addressed under ``results/cache`` (``--cache-dir`` to relocate,
``--no-cache`` to disable), so a repeated invocation trains nothing and a
shared cell — the FedAvg-smallest baseline — is computed once across
figures.

The historical positional form (``python -m repro fig4 demo``) keeps
working as a deprecated alias for ``run fig4 --scale demo``.
"""

from __future__ import annotations

import argparse
import sys

from .experiments.cache import (DEFAULT_CACHE_DIR, RunCache,
                                set_default_cache)
from .experiments.registry import all_artifacts, get_artifact
from .experiments.reporting import write_rows
from .experiments.runner import (DEFAULT_CHECKPOINT_DIR, Checkpointing,
                                 set_default_checkpointing,
                                 set_default_parallelism)

_SUBCOMMANDS = ("list", "describe", "run")


def _parse_int_list(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}") from None


def _parse_str_list(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate PracMHBench paper artifacts.")
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list registered artifacts")

    describe = sub.add_parser("describe", help="show one artifact's details")
    describe.add_argument("artifact")

    run = sub.add_parser("run", help="execute an artifact")
    run.add_argument("artifact")
    run.add_argument("--scale", default=None,
                     help="scale preset: smoke | demo | paper "
                          "(default: the artifact's own)")
    run.add_argument("--seed", type=int, default=None,
                     help="single RNG seed (default 0)")
    run.add_argument("--seeds", type=_parse_int_list, default=None,
                     metavar="0,1,2",
                     help="seed sweep; cells render as mean ± std")
    run.add_argument("--datasets", type=_parse_str_list, default=None,
                     metavar="D1,D2", help="restrict to these datasets")
    run.add_argument("--algorithms", type=_parse_str_list, default=None,
                     metavar="A1,A2", help="restrict to these algorithms")
    run.add_argument("--rounds", type=int, default=None,
                     help="override the scale's num_rounds")
    run.add_argument("--availability", default=None,
                     choices=("always_on", "diurnal", "markov", "dropout"),
                     help="fleet availability scenario")
    run.add_argument("--out", default="table",
                     choices=("table", "json", "csv"),
                     help="output format (default: table)")
    run.add_argument("--cache-dir", default=None, metavar="DIR",
                     help=f"run-cache directory "
                          f"(default: {DEFAULT_CACHE_DIR})")
    run.add_argument("--no-cache", action="store_true",
                     help="bypass the run cache entirely")
    run.add_argument("--workers", type=int, default=None, metavar="N",
                     help="parallel workers: sweep cells fan out across a "
                          "process pool (single cells parallelise their "
                          "clients instead); results are identical for "
                          "any N")
    run.add_argument("--executor", default=None,
                     choices=("auto", "inline", "thread", "process"),
                     help="within-cell client executor (default: auto — "
                          "inline for 1 worker, processes otherwise)")
    run.add_argument("--checkpoint-every", type=int, default=None,
                     metavar="N",
                     help="snapshot each run every N rounds so an "
                          "interrupted invocation can be resumed "
                          "(default: off)")
    run.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                     help=f"where run snapshots live "
                          f"(default: {DEFAULT_CHECKPOINT_DIR})")
    run.add_argument("--resume", action="store_true",
                     help="resume each cell from its snapshot when one "
                          "exists (implies --checkpoint-every 1 unless "
                          "given)")
    return parser


def _warn(message: str) -> None:
    print(f"note: {message}", file=sys.stderr)


def _cmd_list() -> int:
    artifacts = all_artifacts()
    width = max(len(name) for name in artifacts)
    print("artifacts:")
    for name in sorted(artifacts):
        print(f"  {name.ljust(width)}  {artifacts[name].title}")
    print("\nrun one with: python -m repro run <artifact> "
          "[--scale S] [--out table|json|csv]")
    return 0


def _cmd_describe(name: str) -> int:
    try:
        artifact = get_artifact(name)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    import importlib
    module = importlib.import_module(artifact.module)
    print(f"{artifact.name}: {artifact.title}")
    print(f"  module:  {artifact.module}")
    print(f"  options: {', '.join(artifact.params)}")
    if artifact.description:
        print(f"  {artifact.description}")
    reference = getattr(module, "PAPER_REFERENCE", None)
    if reference:
        print(f"  paper reference: {reference}")
    return 0


def _artifact_kwargs(artifact, args) -> dict:
    """Map CLI options onto the artifact's ``run`` signature.

    Only options the artifact supports are forwarded; anything else the
    user explicitly set produces a note on stderr rather than a silent
    drop or a TypeError.
    """
    params = set(artifact.params)
    kwargs: dict = {}

    def forward(option: str, key: str, value) -> None:
        if value is None:
            return
        if key in params:
            kwargs[key] = value
        else:
            _warn(f"{artifact.name} does not support {option}; ignored")

    forward("--scale", "scale", args.scale)
    forward("--seed", "seed", args.seed)
    if args.seeds is not None:
        if "seeds" in params:
            kwargs["seeds"] = args.seeds
        elif len(args.seeds) == 1 and "seed" in params:
            kwargs["seed"] = args.seeds[0]
        else:
            _warn(f"{artifact.name} does not support --seeds; ignored")
    if args.datasets is not None:
        if "datasets" in params:
            kwargs["datasets"] = args.datasets
        elif "dataset" in params and len(args.datasets) == 1:
            kwargs["dataset"] = args.datasets[0]
        elif "dataset" in params:
            _warn(f"{artifact.name} takes a single dataset; "
                  f"using {args.datasets[0]!r}")
            kwargs["dataset"] = args.datasets[0]
        else:
            _warn(f"{artifact.name} does not support --datasets; ignored")
    forward("--algorithms", "algorithms", args.algorithms)
    forward("--availability", "availability", args.availability)
    if args.rounds is not None:
        if "scale_overrides" in params:
            kwargs["scale_overrides"] = {"num_rounds": args.rounds}
        else:
            _warn(f"{artifact.name} does not support --rounds; ignored")
    return kwargs


def _cmd_run(args) -> int:
    try:
        artifact = get_artifact(args.artifact)
    except ValueError as error:
        print(error, file=sys.stderr)
        return 2
    kwargs = _artifact_kwargs(artifact, args)
    cache = None if args.no_cache else RunCache(args.cache_dir
                                                or DEFAULT_CACHE_DIR)
    checkpointing = None
    if (args.checkpoint_every is not None or args.checkpoint_dir is not None
            or args.resume):
        checkpointing = Checkpointing(
            directory=args.checkpoint_dir or DEFAULT_CHECKPOINT_DIR,
            every=args.checkpoint_every if args.checkpoint_every is not None
            else 1,
            resume=args.resume)
        if args.resume and cache is not None:
            # A cache hit would mask the resume path entirely; resumed
            # cells must actually re-enter the round loop.
            _warn("--resume bypasses the run cache for this invocation")
            cache = None
    previous = set_default_cache(cache)
    previous_parallelism = set_default_parallelism(
        workers=args.workers if args.workers is not None else 1,
        executor=args.executor or "auto")
    previous_checkpointing = set_default_checkpointing(checkpointing)
    try:
        rows = artifact.run(**kwargs)
    finally:
        set_default_cache(previous)
        set_default_parallelism(previous_parallelism.workers,
                                previous_parallelism.executor)
        set_default_checkpointing(previous_checkpointing)
    print(write_rows(rows, out=args.out, title=artifact.title,
                     render=artifact.render, **artifact.render_kwargs))
    if cache is not None:
        print(f"# cache: hits={cache.hits} misses={cache.misses} "
              f"dir={cache.directory}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    parser = _build_parser()
    if not argv:
        parser.print_help()
        print()
        return _cmd_list()
    head = argv[0]
    if head not in _SUBCOMMANDS and head not in ("-h", "--help"):
        # Deprecated positional form: `python -m repro fig4 [demo]`.
        try:
            get_artifact(head)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2
        translated = ["run", head]
        rest = argv[1:]
        if rest and not rest[0].startswith("-"):
            translated += ["--scale", rest[0]]
            rest = rest[1:]
        translated += rest
        _warn(f"`python -m repro {' '.join(argv)}` is deprecated; "
              f"use `python -m repro {' '.join(translated)}`")
        argv = translated
    args = parser.parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "describe":
        return _cmd_describe(args.artifact)
    if args.command == "run":
        return _cmd_run(args)
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
