"""Unified command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro list
    python -m repro describe fig4
    python -m repro run fig4 --scale demo --seeds 0,1,2 --out json
    python -m repro run fig6 --datasets cifar100 --algorithms sheterofl,fjord
    python -m repro run fig4 --rounds 10 --availability markov
    python -m repro run fig4 --workers 4           # same bytes, more cores
    python -m repro run fig4 --strict              # + runtime sanitizers
    python -m repro run fig4 --log-json --log-level debug
    python -m repro profile fig4 smoke             # trace + telemetry report
    python -m repro lint                           # determinism contracts
    python -m repro sweep create results/grid.manifest.json --scale demo
    python -m repro sweep run results/grid.manifest.json --shard 0/4
    python -m repro sweep status results/grid.manifest.json --shards 4
    python -m repro sweep resume results/grid.manifest.json --shard 0/4

Artifacts come from the registry (:mod:`repro.experiments.registry`) —
every ``@register_artifact`` module is auto-discovered.  Runs are cached
content-addressed under ``results/cache`` (``--cache-dir`` to relocate,
``--no-cache`` to disable), so a repeated invocation trains nothing and a
shared cell — the FedAvg-smallest baseline — is computed once across
figures.

``profile`` runs an artifact under a telemetry session
(:mod:`repro.telemetry`): it writes a Chrome-trace JSON loadable in
Perfetto / ``chrome://tracing`` and prints the sectioned telemetry report
instead of the artifact's own rows.  Telemetry is observation-only, so the
profiled run produces byte-identical histories to a plain ``run``.

The historical positional form (``python -m repro fig4 demo``) keeps
working as a deprecated alias for ``run fig4 --scale demo``.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
from pathlib import Path

from .experiments.cache import (DEFAULT_CACHE_DIR, RunCache,
                                set_default_cache)
from .experiments.registry import all_artifacts, get_artifact
from .experiments.reporting import write_rows
from .experiments.runner import (DEFAULT_CHECKPOINT_DIR, Checkpointing,
                                 set_default_checkpointing,
                                 set_default_parallelism)
from .fl.sanitizers import set_strict_mode
from .telemetry.logs import LOG_LEVELS, configure_logging, get_logger
from .telemetry.report import report_rows
from .telemetry.runtime import telemetry_session
from .telemetry.tracing import validate_chrome_trace

_SUBCOMMANDS = ("list", "describe", "run", "profile", "lint", "sweep")

#: where ``repro profile`` drops traces unless ``--trace-out`` overrides it.
DEFAULT_PROFILE_DIR = Path("results") / "profile"

_log = get_logger("cli")


def _parse_int_list(text: str) -> list[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip() != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}") from None


def _parse_str_list(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def _logging_options() -> argparse.ArgumentParser:
    """Shared ``--log-*`` flags, usable before or after the subcommand.

    Defaults are ``SUPPRESS`` so a subparser never overwrites a value the
    user set at the top level (``repro --log-level debug run fig4`` and
    ``repro run fig4 --log-level debug`` both work); :func:`main` reads
    them with ``getattr`` fallbacks.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("logging")
    group.add_argument("--log-level", choices=LOG_LEVELS,
                       default=argparse.SUPPRESS,
                       help="stderr log verbosity (default: info)")
    group.add_argument("--log-json", action="store_true",
                       default=argparse.SUPPRESS,
                       help="emit log lines as JSON objects")
    group.add_argument("--quiet", "-q", action="store_true",
                       default=argparse.SUPPRESS,
                       help="only errors on stderr (alias for "
                            "--log-level error)")
    return parent


def _add_run_options(parser: argparse.ArgumentParser) -> None:
    """The options ``run`` and ``profile`` share (everything that shapes
    what executes: scale, sweep axes, cache, parallelism, checkpoints)."""
    parser.add_argument("--scale", default=None,
                        help="scale preset: smoke | demo | paper "
                             "(default: the artifact's own)")
    parser.add_argument("--seed", type=int, default=None,
                        help="single RNG seed (default 0)")
    parser.add_argument("--seeds", type=_parse_int_list, default=None,
                        metavar="0,1,2",
                        help="seed sweep; cells render as mean ± std")
    parser.add_argument("--datasets", type=_parse_str_list, default=None,
                        metavar="D1,D2", help="restrict to these datasets")
    parser.add_argument("--algorithms", type=_parse_str_list, default=None,
                        metavar="A1,A2",
                        help="restrict to these algorithms")
    parser.add_argument("--rounds", type=int, default=None,
                        help="override the scale's num_rounds")
    parser.add_argument("--availability", default=None,
                        choices=("always_on", "diurnal", "markov",
                                 "dropout"),
                        help="fleet availability scenario")
    parser.add_argument("--out", default="table",
                        choices=("table", "json", "csv"),
                        help="output format (default: table)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help=f"run-cache directory "
                             f"(default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the run cache entirely")
    parser.add_argument("--workers", type=int, default=None, metavar="N",
                        help="parallel workers: sweep cells fan out across "
                             "a process pool (single cells parallelise "
                             "their clients instead); results are "
                             "identical for any N")
    parser.add_argument("--executor", default=None,
                        choices=("auto", "inline", "thread", "process"),
                        help="within-cell client executor (default: auto — "
                             "inline for 1 worker, processes otherwise)")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        metavar="N",
                        help="snapshot each run every N rounds so an "
                             "interrupted invocation can be resumed "
                             "(default: off)")
    parser.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                        help=f"where run snapshots live "
                             f"(default: {DEFAULT_CHECKPOINT_DIR})")
    parser.add_argument("--resume", action="store_true",
                        help="resume each cell from its snapshot when one "
                             "exists (implies --checkpoint-every 1 unless "
                             "given)")
    parser.add_argument("--strict", action="store_true",
                        help="enable the strict-mode runtime sanitizers: "
                             "broadcast arrays are frozen during dispatch "
                             "and the legacy global RNGs are tripwired; "
                             "results are byte-identical either way")


def _build_parser() -> argparse.ArgumentParser:
    logging_options = _logging_options()
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate PracMHBench paper artifacts.",
        parents=[logging_options])
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list registered artifacts")

    describe = sub.add_parser("describe", help="show one artifact's details")
    describe.add_argument("artifact")

    run = sub.add_parser("run", help="execute an artifact",
                         parents=[logging_options])
    run.add_argument("artifact")
    _add_run_options(run)

    profile = sub.add_parser(
        "profile", parents=[logging_options],
        help="execute an artifact under telemetry: Chrome trace + report",
        description="Run an artifact with runtime telemetry enabled, "
                    "write a Perfetto-loadable Chrome-trace JSON and "
                    "print the telemetry report (spans, counters, cache "
                    "hit rate, per-round timings) instead of the "
                    "artifact's rows.  Use --no-cache to force real "
                    "execution — cache-served cells contribute no "
                    "timing spans.")
    profile.add_argument("artifact")
    profile.add_argument("scale_pos", nargs="?", metavar="scale",
                         help="positional shorthand for --scale")
    _add_run_options(profile)
    profile.add_argument("--trace-out", default=None, metavar="FILE",
                         help="Chrome-trace destination (default: "
                              f"{DEFAULT_PROFILE_DIR}/<artifact>-<scale>"
                              ".trace.json)")
    profile.add_argument("--telemetry-out", default=None, metavar="FILE",
                         help="also dump the full telemetry payload "
                              "(metrics/spans/rounds) as JSON")
    profile.add_argument("--memory", action="store_true",
                         help="trace peak memory per top-level span "
                              "(tracemalloc; slows the run)")

    sweep = sub.add_parser(
        "sweep", parents=[logging_options],
        help="manifest-driven, resumable, shardable experiment sweeps",
        description="Orchestrate large experiment grids through a sweep "
                    "manifest: an expanded, content-hashed spec list. "
                    "Per-cell status is derived from run-cache presence "
                    "(never stored), so `resume` is literally `run` "
                    "re-invoked and a SIGKILLed sweep loses at most its "
                    "in-flight cells.  --shard K/N partitions the grid "
                    "deterministically across hosts.")
    sweep_sub = sweep.add_subparsers(dest="sweep_command")

    sweep_create = sweep_sub.add_parser(
        "create", parents=[logging_options],
        help="expand a grid into a manifest file",
        description="Expand (datasets x seeds x algorithms [+ baseline]) "
                    "into unique RunSpecs and write them as a manifest. "
                    "The manifest is immutable input — no status, no "
                    "timestamps — so any number of hosts can run it "
                    "concurrently.")
    sweep_create.add_argument("manifest", help="manifest file to write")
    sweep_create.add_argument("--name", default=None,
                              help="sweep name (default: manifest stem)")
    sweep_create.add_argument("--algorithms", type=_parse_str_list,
                              default=None, metavar="A1,A2",
                              help="algorithms (default: all MHFL)")
    sweep_create.add_argument("--datasets", type=_parse_str_list,
                              default=None, metavar="D1,D2",
                              help="datasets (default: all)")
    sweep_create.add_argument("--constraints", type=_parse_str_list,
                              default=["computation"], metavar="C1,C2",
                              help="constraint kinds (default: computation)")
    sweep_create.add_argument("--availability", default="always_on",
                              choices=("always_on", "diurnal", "markov",
                                       "dropout"),
                              help="fleet availability scenario")
    sweep_create.add_argument("--scale", default="demo",
                              help="scale preset: smoke | demo | paper")
    sweep_create.add_argument("--seeds", type=_parse_int_list,
                              default=[0], metavar="0,1,2",
                              help="seeds to sweep (default: 0)")
    sweep_create.add_argument("--partition-scheme", default="auto",
                              help="data partition scheme (default: auto)")
    sweep_create.add_argument("--alpha", type=float, default=0.5,
                              help="Dirichlet alpha (default: 0.5)")
    sweep_create.add_argument("--num-clients", type=int, default=None,
                              help="override the scale's client count")
    sweep_create.add_argument("--no-baseline", action="store_true",
                              help="omit the fedavg_smallest baseline cells")
    sweep_create.add_argument("--cache-dir", default=None, metavar="DIR",
                              help=f"cache directory the manifest targets "
                                   f"(default: {DEFAULT_CACHE_DIR})")

    for verb, text in (("run", "run the manifest's pending cells"),
                       ("resume", "alias for run: re-derive pending cells "
                                  "from the cache and continue")):
        sweep_run = sweep_sub.add_parser(
            verb, parents=[logging_options], help=text,
            description="Derive pending cells (manifest minus cache) and "
                        "execute them with bounded concurrency.  Safe to "
                        "kill at any point: every finished cell is one "
                        "atomic cache write, so re-invoking continues "
                        "where the cache left off.")
        sweep_run.add_argument("manifest", help="manifest file to run")
        sweep_run.add_argument("--shard", default=None, metavar="K/N",
                               help="run only cells with "
                                    "hash %% N == K (multi-host split)")
        sweep_run.add_argument("--workers", type=int, default=None,
                               metavar="N",
                               help="cells in flight at once (process "
                                    "pool; results identical for any N)")
        sweep_run.add_argument("--executor", default=None,
                               choices=("auto", "inline", "thread",
                                        "process"),
                               help="cell fan-out executor (default: auto)")
        sweep_run.add_argument("--cache-dir", default=None, metavar="DIR",
                               help="override the manifest's cache "
                                    "directory")
        sweep_run.add_argument("--no-telemetry", action="store_true",
                               help="skip the per-cell telemetry sidecars "
                                    "status reads throughput from")

    sweep_status = sweep_sub.add_parser(
        "status", parents=[logging_options],
        help="derived progress: per-algorithm / per-shard / total",
        description="Derive done/pending per cell from cache presence "
                    "(nothing is stored, so this can never be stale) and "
                    "print per-algorithm progress plus throughput from "
                    "the telemetry sidecars.  --shards N adds one row per "
                    "shard of an N-way partition.")
    sweep_status.add_argument("manifest", help="manifest file to inspect")
    sweep_status.add_argument("--shard", default=None, metavar="K/N",
                              help="restrict the view to one shard")
    sweep_status.add_argument("--shards", type=int, default=None,
                              metavar="N",
                              help="also break progress down by N-way "
                                   "shard")
    sweep_status.add_argument("--cache-dir", default=None, metavar="DIR",
                              help="override the manifest's cache "
                                   "directory")
    sweep_status.add_argument("--out", default="table",
                              choices=("table", "json", "csv"),
                              help="output format (default: table)")

    lint = sub.add_parser(
        "lint", parents=[logging_options],
        help="statically check the determinism contracts",
        description="Run the AST rule catalog (repro.analysis.rules) over "
                    "the repro package: no global RNG, no wall clock in "
                    "serialised state, hash-covered spec fields, lossless "
                    "payload round-trips, ordered client iteration, pure "
                    "work items, repro.* logger naming, no swallowed "
                    "exceptions on executor paths.  Exits non-zero on any "
                    "unsuppressed finding or stale allow comment.")
    from .analysis.cli import add_lint_options
    add_lint_options(lint)
    return parser


def _warn(message: str) -> None:
    _log.warning("note: %s", message)


def _cmd_list() -> int:
    artifacts = all_artifacts()
    width = max(len(name) for name in artifacts)
    print("artifacts:")
    for name in sorted(artifacts):
        print(f"  {name.ljust(width)}  {artifacts[name].title}")
    print("\nrun one with: python -m repro run <artifact> "
          "[--scale S] [--out table|json|csv]")
    return 0


def _cmd_describe(name: str) -> int:
    try:
        artifact = get_artifact(name)
    except ValueError as error:
        _log.error("%s", error)
        return 2
    import importlib
    module = importlib.import_module(artifact.module)
    print(f"{artifact.name}: {artifact.title}")
    print(f"  module:  {artifact.module}")
    print(f"  options: {', '.join(artifact.params)}")
    if artifact.description:
        print(f"  {artifact.description}")
    reference = getattr(module, "PAPER_REFERENCE", None)
    if reference:
        print(f"  paper reference: {reference}")
    return 0


def _artifact_kwargs(artifact, args) -> dict:
    """Map CLI options onto the artifact's ``run`` signature.

    Only options the artifact supports are forwarded; anything else the
    user explicitly set produces a note on stderr rather than a silent
    drop or a TypeError.
    """
    params = set(artifact.params)
    kwargs: dict = {}

    def forward(option: str, key: str, value) -> None:
        if value is None:
            return
        if key in params:
            kwargs[key] = value
        else:
            _warn(f"{artifact.name} does not support {option}; ignored")

    forward("--scale", "scale", args.scale)
    forward("--seed", "seed", args.seed)
    if args.seeds is not None:
        if "seeds" in params:
            kwargs["seeds"] = args.seeds
        elif len(args.seeds) == 1 and "seed" in params:
            kwargs["seed"] = args.seeds[0]
        else:
            _warn(f"{artifact.name} does not support --seeds; ignored")
    if args.datasets is not None:
        if "datasets" in params:
            kwargs["datasets"] = args.datasets
        elif "dataset" in params and len(args.datasets) == 1:
            kwargs["dataset"] = args.datasets[0]
        elif "dataset" in params:
            _warn(f"{artifact.name} takes a single dataset; "
                  f"using {args.datasets[0]!r}")
            kwargs["dataset"] = args.datasets[0]
        else:
            _warn(f"{artifact.name} does not support --datasets; ignored")
    forward("--algorithms", "algorithms", args.algorithms)
    forward("--availability", "availability", args.availability)
    if args.rounds is not None:
        if "scale_overrides" in params:
            kwargs["scale_overrides"] = {"num_rounds": args.rounds}
        else:
            _warn(f"{artifact.name} does not support --rounds; ignored")
    return kwargs


@contextlib.contextmanager
def _run_defaults(args):
    """Install the process-wide cache/parallelism/checkpoint defaults an
    artifact run should see; restore the previous ones on exit.

    Yields the active :class:`RunCache` (or ``None``) so the caller can
    report hit/miss counts afterwards.
    """
    cache = None if args.no_cache else RunCache(args.cache_dir
                                                or DEFAULT_CACHE_DIR)
    checkpointing = None
    if (args.checkpoint_every is not None or args.checkpoint_dir is not None
            or args.resume):
        checkpointing = Checkpointing(
            directory=args.checkpoint_dir or DEFAULT_CHECKPOINT_DIR,
            every=args.checkpoint_every if args.checkpoint_every is not None
            else 1,
            resume=args.resume)
        if args.resume and cache is not None:
            # A cache hit would mask the resume path entirely; resumed
            # cells must actually re-enter the round loop.
            _warn("--resume bypasses the run cache for this invocation")
            cache = None
    previous = set_default_cache(cache)
    previous_parallelism = set_default_parallelism(
        workers=args.workers if args.workers is not None else 1,
        executor=args.executor or "auto")
    previous_checkpointing = set_default_checkpointing(checkpointing)
    previous_strict = set_strict_mode(getattr(args, "strict", False))
    try:
        yield cache
    finally:
        set_default_cache(previous)
        set_default_parallelism(previous_parallelism.workers,
                                previous_parallelism.executor)
        set_default_checkpointing(previous_checkpointing)
        set_strict_mode(previous_strict)


def _report_cache(cache: RunCache | None) -> None:
    # The exact "# cache: ..." text is part of the CLI contract (CI and
    # tests grep stderr for it), so it rides through the logger verbatim.
    if cache is not None:
        _log.info("# cache: hits=%d misses=%d dir=%s",
                  cache.hits, cache.misses, cache.directory)


def _cmd_run(args) -> int:
    try:
        artifact = get_artifact(args.artifact)
    except ValueError as error:
        _log.error("%s", error)
        return 2
    kwargs = _artifact_kwargs(artifact, args)
    with _run_defaults(args) as cache:
        rows = artifact.run(**kwargs)
    print(write_rows(rows, out=args.out, title=artifact.title,
                     render=artifact.render, **artifact.render_kwargs))
    _report_cache(cache)
    return 0


def _cmd_profile(args) -> int:
    try:
        artifact = get_artifact(args.artifact)
    except ValueError as error:
        _log.error("%s", error)
        return 2
    if args.scale_pos is not None and args.scale is None:
        args.scale = args.scale_pos
    kwargs = _artifact_kwargs(artifact, args)
    meta = {"artifact": artifact.name}
    if args.scale is not None:
        meta["scale"] = args.scale
    with _run_defaults(args) as cache:
        with telemetry_session(meta=meta,
                               trace_memory=args.memory) as session:
            # The artifact's rows are not the product here — the
            # telemetry collected around them is.
            artifact.run(**kwargs)
    trace = session.chrome_trace()
    validate_chrome_trace(trace)
    trace_path = (Path(args.trace_out) if args.trace_out else
                  DEFAULT_PROFILE_DIR
                  / f"{artifact.name}-{args.scale or 'default'}.trace.json")
    trace_path.parent.mkdir(parents=True, exist_ok=True)
    trace_path.write_text(json.dumps(trace, indent=1))
    if args.telemetry_out is not None:
        telemetry_path = Path(args.telemetry_out)
        telemetry_path.parent.mkdir(parents=True, exist_ok=True)
        telemetry_path.write_text(json.dumps(session.to_dict(), indent=1))
        _log.info("telemetry written to %s", telemetry_path)
    print(write_rows(report_rows(session), out=args.out,
                     title=f"Profile: {artifact.name}"))
    _report_cache(cache)
    if cache is not None and cache.hits and not cache.misses:
        _warn("every cell was cache-served; rerun with --no-cache for "
              "real execution timings")
    _log.info("trace written to %s (load in Perfetto or chrome://tracing)",
              trace_path)
    return 0


def _cmd_sweep(args) -> int:
    from .experiments.sweep import (Shard, SweepManifest, expand_grid,
                                    run_sweep, status_rows)
    if args.sweep_command is None:
        _log.error("sweep needs a subcommand: create | run | status | "
                   "resume (see python -m repro sweep --help)")
        return 2

    if args.sweep_command == "create":
        path = Path(args.manifest)
        try:
            specs = expand_grid(
                algorithms=args.algorithms, datasets=args.datasets,
                constraints=tuple(args.constraints),
                availability=args.availability, scale=args.scale,
                seeds=tuple(args.seeds),
                partition_scheme=args.partition_scheme, alpha=args.alpha,
                num_clients=args.num_clients,
                with_baseline=not args.no_baseline)
            manifest = SweepManifest(
                name=args.name or path.stem.split(".")[0], specs=specs,
                cache_dir=args.cache_dir or str(DEFAULT_CACHE_DIR))
        except ValueError as error:
            _log.error("%s", error)
            return 2
        manifest.save(path)
        print(f"manifest {manifest.name}: {len(manifest.specs)} cells "
              f"-> {path}")
        print(f"  cache: {manifest.cache_dir}")
        print(f"  run with: python -m repro sweep run {path} "
              f"[--shard K/N] [--workers N]")
        return 0

    try:
        manifest = SweepManifest.load(args.manifest)
    except ValueError as error:
        _log.error("%s", error)
        return 2
    try:
        shard = Shard.parse(args.shard) if args.shard else Shard()
    except ValueError as error:
        _log.error("%s", error)
        return 2
    cache = RunCache(args.cache_dir) if args.cache_dir else manifest.cache()

    if args.sweep_command == "status":
        rows = status_rows(manifest, shard, cache=cache,
                           shards=args.shards)
        print(write_rows(rows, out=args.out,
                         title=f"Sweep: {manifest.name} "
                               f"[shard {shard.label}]"))
        return 0

    # run | resume — deliberately the same code path: pending cells are
    # re-derived from the cache on every invocation.
    stack = contextlib.ExitStack()
    with stack:
        if not args.no_telemetry:
            # A session makes execute_spec (and its pool workers) persist
            # per-cell telemetry sidecars, which is where `status` gets
            # its throughput numbers.  Observation-only: cell results are
            # byte-identical either way.
            stack.enter_context(telemetry_session(
                meta={"sweep": manifest.name, "shard": shard.label}))
        report = run_sweep(manifest, shard, cache=cache,
                           workers=args.workers, executor=args.executor)
    # The exact "# sweep: ..." text is CLI contract like "# cache: ..."
    # below — CI greps it to assert a completed sweep re-runs as all-hits.
    _log.info("# sweep: total=%d done=%d executed=%d already_done=%d "
              "cache_served=%d",
              report.total, report.done, report.executed,
              report.already_done, report.cache_served,
              extra={"sweep": report.manifest, "shard": report.shard})
    _report_cache(cache)
    print(f"sweep {report.manifest} shard {report.shard}: "
          f"{report.done}/{report.total} done "
          f"({report.executed} executed, {report.already_done} already "
          f"cached, {report.cache_served} served mid-run)")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)
    # Default logging config so pre-parse warnings/errors are visible;
    # reconfigured below once the flags are known.
    configure_logging()
    parser = _build_parser()
    if not argv:
        parser.print_help()
        print()
        return _cmd_list()
    head = argv[0]
    if head not in _SUBCOMMANDS and not head.startswith("-"):
        # Deprecated positional form: `python -m repro fig4 [demo]`.
        try:
            get_artifact(head)
        except ValueError as error:
            _log.error("%s", error)
            return 2
        translated = ["run", head]
        rest = argv[1:]
        if rest and not rest[0].startswith("-"):
            translated += ["--scale", rest[0]]
            rest = rest[1:]
        translated += rest
        _warn(f"`python -m repro {' '.join(argv)}` is deprecated; "
              f"use `python -m repro {' '.join(translated)}`")
        argv = translated
    args = parser.parse_args(argv)
    level = ("error" if getattr(args, "quiet", False)
             else getattr(args, "log_level", "info"))
    configure_logging(level=level,
                      json_format=getattr(args, "log_json", False))
    if args.command == "list":
        return _cmd_list()
    if args.command == "describe":
        return _cmd_describe(args.artifact)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "lint":
        from .analysis.cli import lint_command
        return lint_command(args)
    parser.print_help()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
