"""Command-line entry point: regenerate any paper artifact.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro fig4 [smoke|demo|paper]
    python -m repro ablations demo
"""

from __future__ import annotations

import importlib
import sys

_ARTIFACTS = ["table1", "table2", "table3", "fig1", "fig3", "fig4", "fig5",
              "fig6", "fig7", "fig8", "fig9", "ablations", "async_compare"]


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv or argv[0] in ("-h", "--help", "list"):
        print(__doc__)
        print("artifacts:", ", ".join(_ARTIFACTS))
        return 0
    artifact = argv[0]
    if artifact not in _ARTIFACTS:
        print(f"unknown artifact {artifact!r}; choose from {_ARTIFACTS}")
        return 2
    module = importlib.import_module(f"repro.experiments.{artifact}")
    # Re-point sys.argv so each module's main() picks up the scale argument.
    sys.argv = [f"repro.experiments.{artifact}"] + argv[1:]
    module.main()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
