"""Metric computation over federated run histories."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fl.history import History

__all__ = ["MetricSummary", "summarize", "aggregate_summaries", "mean_std",
           "global_accuracy", "time_to_accuracy", "stability",
           "effectiveness"]


def global_accuracy(history: History) -> float:
    """Metric (i): final global-test accuracy of the federated model."""
    return history.final_accuracy


def time_to_accuracy(history: History, target: float) -> float | None:
    """Metric (ii): simulated seconds to first reach ``target`` accuracy.

    ``None`` when the run never reaches the target (reported as a miss, not
    as infinity, so downstream tables can mark it explicitly).
    """
    return history.time_to_accuracy(target)


def stability(history: History) -> float:
    """Metric (iii): variance of the final per-device accuracies.

    Lower is better — a stable method serves every heterogeneous device
    about equally well.
    """
    return history.stability()


def effectiveness(history: History, baseline: History) -> float:
    """Metric (iv): final-accuracy gain over the homogeneous baseline.

    The baseline trains the smallest feasible homogeneous model on every
    device (FedAvgSmallest under the same constraint case).  Positive values
    mean model heterogeneity actually helped.
    """
    return history.final_accuracy - baseline.final_accuracy


@dataclass(frozen=True)
class MetricSummary:
    """All four metrics for one (algorithm, scenario) cell.

    A cell may aggregate several seeds (``num_seeds > 1``), in which case
    the point fields hold the across-seed mean and the ``*_std`` fields the
    sample standard deviation (``None`` for single-seed cells).
    """

    algorithm: str
    dataset: str
    global_accuracy: float
    time_to_accuracy_s: float | None
    stability: float
    effectiveness: float | None
    num_seeds: int = 1
    global_accuracy_std: float | None = None
    time_to_accuracy_s_std: float | None = None
    stability_std: float | None = None
    effectiveness_std: float | None = None

    def as_row(self) -> dict:
        tta = self.time_to_accuracy_s
        row = {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "global_acc": round(self.global_accuracy, 4),
            "tta_s": None if tta is None else round(tta, 1),
            "stability_var": round(self.stability, 6),
            "effectiveness": (None if self.effectiveness is None
                              else round(self.effectiveness, 4)),
        }
        if self.num_seeds > 1:
            def _round(value, digits):
                return None if value is None else round(value, digits)
            row["seeds"] = self.num_seeds
            row["global_acc_std"] = _round(self.global_accuracy_std, 4)
            row["tta_s_std"] = _round(self.time_to_accuracy_s_std, 1)
            row["stability_var_std"] = _round(self.stability_std, 6)
            row["effectiveness_std"] = _round(self.effectiveness_std, 4)
        return row


def summarize(history: History, target_accuracy: float,
              baseline: History | None = None) -> MetricSummary:
    """Compute the four metrics for one run."""
    return MetricSummary(
        algorithm=history.algorithm,
        dataset=history.dataset,
        global_accuracy=global_accuracy(history),
        time_to_accuracy_s=time_to_accuracy(history, target_accuracy),
        stability=stability(history),
        effectiveness=(None if baseline is None
                       else effectiveness(history, baseline)))


def mean_std(values: list[float | None]) -> tuple[float | None,
                                                  float | None]:
    """Across-seed mean and sample std, ignoring ``None`` entries.

    ``None`` marks a missing measurement (e.g. a seed that never reaches
    the time-to-accuracy target); the aggregate is computed over the values
    that exist (and is ``None`` when none do).  Std is ``None`` when fewer
    than two values exist.  The single aggregation policy shared by
    :func:`aggregate_summaries` and the row-level
    :func:`repro.experiments.reporting.aggregate_seed_rows`.
    """
    numeric = [v for v in values if v is not None]
    if not numeric:
        return None, None
    mean = float(np.mean(numeric))
    std = float(np.std(numeric, ddof=1)) if len(numeric) > 1 else None
    return mean, std


def aggregate_summaries(summaries: list[MetricSummary]) -> MetricSummary:
    """Collapse per-seed summaries of one cell into a mean±std summary."""
    if not summaries:
        raise ValueError("no summaries to aggregate")
    if len(summaries) == 1:
        return summaries[0]
    cells = {(s.algorithm, s.dataset) for s in summaries}
    if len(cells) != 1:
        raise ValueError(f"refusing to aggregate across cells: {sorted(cells)}")
    acc_mean, acc_std = mean_std([s.global_accuracy for s in summaries])
    tta_mean, tta_std = mean_std([s.time_to_accuracy_s for s in summaries])
    stab_mean, stab_std = mean_std([s.stability for s in summaries])
    eff_mean, eff_std = mean_std([s.effectiveness for s in summaries])
    return MetricSummary(
        algorithm=summaries[0].algorithm,
        dataset=summaries[0].dataset,
        global_accuracy=acc_mean,
        time_to_accuracy_s=tta_mean,
        stability=stab_mean,
        effectiveness=eff_mean,
        num_seeds=len(summaries),
        global_accuracy_std=acc_std,
        time_to_accuracy_s_std=tta_std,
        stability_std=stab_std,
        effectiveness_std=eff_std)
