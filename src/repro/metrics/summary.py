"""Metric computation over federated run histories."""

from __future__ import annotations

from dataclasses import dataclass

from ..fl.history import History

__all__ = ["MetricSummary", "summarize", "global_accuracy",
           "time_to_accuracy", "stability", "effectiveness"]


def global_accuracy(history: History) -> float:
    """Metric (i): final global-test accuracy of the federated model."""
    return history.final_accuracy


def time_to_accuracy(history: History, target: float) -> float | None:
    """Metric (ii): simulated seconds to first reach ``target`` accuracy.

    ``None`` when the run never reaches the target (reported as a miss, not
    as infinity, so downstream tables can mark it explicitly).
    """
    return history.time_to_accuracy(target)


def stability(history: History) -> float:
    """Metric (iii): variance of the final per-device accuracies.

    Lower is better — a stable method serves every heterogeneous device
    about equally well.
    """
    return history.stability()


def effectiveness(history: History, baseline: History) -> float:
    """Metric (iv): final-accuracy gain over the homogeneous baseline.

    The baseline trains the smallest feasible homogeneous model on every
    device (FedAvgSmallest under the same constraint case).  Positive values
    mean model heterogeneity actually helped.
    """
    return history.final_accuracy - baseline.final_accuracy


@dataclass(frozen=True)
class MetricSummary:
    """All four metrics for one (algorithm, scenario) run."""

    algorithm: str
    dataset: str
    global_accuracy: float
    time_to_accuracy_s: float | None
    stability: float
    effectiveness: float | None

    def as_row(self) -> dict:
        tta = self.time_to_accuracy_s
        return {
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "global_acc": round(self.global_accuracy, 4),
            "tta_s": None if tta is None else round(tta, 1),
            "stability_var": round(self.stability, 6),
            "effectiveness": (None if self.effectiveness is None
                              else round(self.effectiveness, 4)),
        }


def summarize(history: History, target_accuracy: float,
              baseline: History | None = None) -> MetricSummary:
    """Compute the four metrics for one run."""
    return MetricSummary(
        algorithm=history.algorithm,
        dataset=history.dataset,
        global_accuracy=global_accuracy(history),
        time_to_accuracy_s=time_to_accuracy(history, target_accuracy),
        stability=stability(history),
        effectiveness=(None if baseline is None
                       else effectiveness(history, baseline)))
