"""The four PracMHBench metrics (Section III, "Evaluated Metrics").

All four are computed from :class:`~repro.fl.History` objects:

* **global accuracy** — the final federated model on the global test set;
* **time-to-accuracy** — simulated wall-clock until a preset accuracy;
* **stability** — variance of per-device accuracies;
* **effectiveness** — accuracy gain over the smallest-homogeneous baseline.
"""

from .summary import (MetricSummary, summarize, aggregate_summaries,
                      mean_std, global_accuracy, time_to_accuracy, stability,
                      effectiveness)

__all__ = ["MetricSummary", "summarize", "aggregate_summaries", "mean_std",
           "global_accuracy", "time_to_accuracy", "stability",
           "effectiveness"]
