"""Static analysis for the determinism contracts (``repro lint``).

The reproducibility guarantees — content-addressed caching, byte-identical
parallel execution, crash-safe resume — rest on source-level invariants.
Golden tests check them after the fact on exercised paths; this package
proves them on every line:

* :mod:`repro.analysis.engine` — the AST rule engine;
* :mod:`repro.analysis.rules` — the contract catalog (~8 rules);
* :mod:`repro.analysis.findings` — findings + ``# repro: allow[rule-id]``
  suppression comments;
* :mod:`repro.analysis.cli` — the ``repro lint [--json]`` verb.

The dynamic complement (strict-mode sanitizers trapping what static
analysis cannot see) lives in :mod:`repro.fl.sanitizers`.
"""

from .engine import LintReport, PACKAGE_ROOT, run_lint
from .findings import Finding
from .rules import all_rules, rule_catalog

__all__ = ["run_lint", "all_rules", "rule_catalog", "Finding",
           "LintReport", "PACKAGE_ROOT"]
