"""The ``repro lint`` verb: run the contract rules, report, exit."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .engine import PACKAGE_ROOT, run_lint
from .rules import all_rules, rule_catalog

__all__ = ["add_lint_options", "lint_command"]


def add_lint_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("paths", nargs="*", type=Path,
                        help="files or directories to lint "
                             "(default: the installed repro package)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable report (schema "
                             "version 1) instead of text")
    parser.add_argument("--root", type=Path, default=None,
                        help="package root paths are reported relative to "
                             "(default: the repro package directory)")


def lint_command(args: argparse.Namespace,
                 stream=None) -> int:
    """Run the full catalog; exit 0 only when the tree is clean.

    Stale ``allow`` comments fail the gate too: an allowance that no
    longer suppresses anything is a standing invitation for the next
    regression on that line to pass silently.
    """
    stream = stream or sys.stdout
    targets = list(args.paths) or None
    report = run_lint(all_rules(), targets=targets,
                      root=args.root or PACKAGE_ROOT)
    if args.as_json:
        payload = report.to_dict()
        payload["catalog"] = rule_catalog()
        stream.write(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        return 0 if report.ok else 1
    for finding in report.findings:
        stream.write(finding.render() + "\n")
    for finding in report.stale_suppressions:
        stream.write(finding.render() + "\n")
    summary = (f"{len(report.findings)} finding(s), "
               f"{len(report.suppressed)} suppressed, "
               f"{len(report.stale_suppressions)} stale suppression(s) "
               f"across {report.files_scanned} file(s)")
    stream.write(("OK: " if report.ok else "FAIL: ") + summary + "\n")
    return 0 if report.ok else 1
