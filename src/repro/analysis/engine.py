"""AST rule engine behind ``repro lint``.

The platform's reproducibility guarantees — content-addressed caching,
byte-identical parallel execution, crash-safe resume — rest on source-level
invariants (no global RNG, no wall clock in serialised state, hash-covered
spec fields, ordered iteration over client ids, pure work items).  Golden
tests catch violations after the fact and only on exercised paths; this
engine proves the invariants hold on every line, before anything runs.

Design:

* a :class:`ModuleSource` per file — source text, parsed AST, suppression
  index and the module's import bindings (so rules can tell ``np.random``
  from somebody's local ``random`` variable);
* two rule shapes — :class:`Rule` (per-file, sees one module at a time)
  and :class:`ProjectRule` (cross-file, sees the whole parse set at once;
  the coverage rules compare dataclass definitions in one module against
  codec functions in another);
* suppressions are ``# repro: allow[rule-id]`` comments
  (:mod:`repro.analysis.findings`); the engine filters suppressed findings
  out of the failing set but keeps them in the report, and flags stale
  allow comments that no longer silence anything.

The rule catalog lives in :mod:`repro.analysis.rules`; the CLI verb in
:mod:`repro.analysis.cli`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .findings import Finding, SuppressionIndex, parse_suppressions

__all__ = ["ModuleSource", "Rule", "ProjectRule", "LintReport", "run_lint",
           "load_module", "collect_modules", "PACKAGE_ROOT"]

#: the installed ``repro`` package directory — the default lint target.
PACKAGE_ROOT = Path(__file__).resolve().parents[1]


@dataclass
class ModuleSource:
    """One parsed source file plus everything rules need to judge it."""

    path: Path
    #: package-relative posix path (e.g. ``fl/executor.py``) — the stable
    #: form rules use for path scoping and reports use for display.
    rel: str
    source: str
    tree: ast.Module
    suppressions: SuppressionIndex
    #: local name -> dotted module for ``import x.y as z`` bindings.
    module_aliases: dict[str, str] = field(default_factory=dict)
    #: local name -> (dotted module, original name) for ``from m import n``.
    imported_names: dict[str, tuple[str, str]] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Dotted package the module lives in, relative to the root."""
        parts = Path(self.rel).parent.parts
        return ".".join(parts)

    def resolve_relative(self, level: int, module: str | None) -> str:
        """Resolve a relative import to a root-relative dotted module."""
        parts = list(Path(self.rel).parent.parts)
        ascend = level - 1
        base = parts[:len(parts) - ascend] if ascend else parts
        if module:
            base = base + module.split(".")
        return ".".join(base)


def _index_imports(module: ModuleSource) -> None:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module.module_aliases[alias.asname or
                                      alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                source = module.resolve_relative(node.level, node.module)
            else:
                source = node.module or ""
            for alias in node.names:
                module.imported_names[alias.asname or alias.name] = \
                    (source, alias.name)


def load_module(path: Path, root: Path | None = None) -> ModuleSource:
    """Parse one file into a :class:`ModuleSource` (raises on bad syntax —
    unparseable source cannot be proven to hold any invariant)."""
    root = root or PACKAGE_ROOT
    source = path.read_text()
    try:
        rel = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = path.name
    module = ModuleSource(path=path, rel=rel, source=source,
                          tree=ast.parse(source, filename=str(path)),
                          suppressions=parse_suppressions(source))
    _index_imports(module)
    return module


def collect_modules(targets: Sequence[Path] | None = None,
                    root: Path | None = None) -> list[ModuleSource]:
    """Load every ``.py`` file under the targets (default: the package)."""
    root = root or PACKAGE_ROOT
    targets = list(targets) if targets else [root]
    files: list[Path] = []
    for target in targets:
        if target.is_dir():
            files.extend(sorted(p for p in target.rglob("*.py")
                                if "__pycache__" not in p.parts))
        else:
            files.append(target)
    return [load_module(path, root=root) for path in files]


class Rule:
    """Per-file rule: judge one module at a time."""

    rule_id: str = "base"
    #: one-line statement of the contract the rule protects.
    protects: str = ""

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST,
                message: str) -> Finding:
        return Finding(path=module.rel, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       rule=self.rule_id, message=message)


class ProjectRule(Rule):
    """Cross-file rule: judge the whole parse set at once."""

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        return ()

    def check_project(self,
                      modules: dict[str, ModuleSource]) -> Iterable[Finding]:
        raise NotImplementedError


@dataclass
class LintReport:
    """Everything one lint run produced."""

    findings: list[Finding]
    suppressed: list[Finding]
    stale_suppressions: list[Finding]
    files_scanned: int
    rules_run: list[str]

    @property
    def ok(self) -> bool:
        return not self.findings and not self.stale_suppressions

    def to_dict(self) -> dict:
        """The ``repro lint --json`` payload schema (stable; version 1)."""
        return {
            "version": 1,
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "rules": list(self.rules_run),
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": [f.to_dict() for f in self.suppressed],
            "stale_suppressions": [f.to_dict()
                                   for f in self.stale_suppressions],
        }


def _stale_suppressions(modules: Sequence[ModuleSource],
                        known_rules: set[str]) -> list[Finding]:
    """Allow comments that silenced nothing this run.

    A stale allowance is itself a finding: it documents a violation that no
    longer exists (or misspells a rule id), and leaving it behind would
    grant a silent pass to the next regression on that line.
    """
    stale = []
    for module in modules:
        used_rules_by_target: dict[int, set[str]] = {}
        for line, rule in module.suppressions.used:
            used_rules_by_target.setdefault(line, set()).add(rule)
        for comment_line, rules in sorted(
                module.suppressions.comment_lines.items()):
            target = module.suppressions.comment_targets.get(comment_line)
            for rule in sorted(rules):
                if target is not None and \
                        rule in used_rules_by_target.get(target, ()):
                    continue
                reason = ("unknown rule id" if rule not in known_rules
                          else "suppresses nothing")
                stale.append(Finding(
                    path=module.rel, line=comment_line, col=1,
                    rule="stale-suppression",
                    message=f"allow[{rule}] {reason}; remove the comment"))
    return stale


def run_lint(rules: Sequence[Rule],
             targets: Sequence[Path] | None = None,
             root: Path | None = None,
             modules: Sequence[ModuleSource] | None = None) -> LintReport:
    """Run the rule set over the targets and split findings by suppression.

    ``modules`` injects pre-parsed sources (tests use it for fixture
    snippets); otherwise the targets are collected from disk.
    """
    if modules is None:
        modules = collect_modules(targets, root=root)
    by_rel = {m.rel: m for m in modules}
    raw: list[Finding] = []
    for rule in rules:
        if isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(by_rel))
        else:
            for module in modules:
                raw.extend(rule.check_module(module))

    active: list[Finding] = []
    suppressed: list[Finding] = []
    for finding in sorted(raw):
        module = by_rel.get(finding.path)
        if module is not None and module.suppressions.allows(finding.line,
                                                             finding.rule):
            suppressed.append(finding)
        else:
            active.append(finding)
    stale = _stale_suppressions(modules, {rule.rule_id for rule in rules})
    return LintReport(findings=active, suppressed=suppressed,
                      stale_suppressions=stale, files_scanned=len(modules),
                      rules_run=[rule.rule_id for rule in rules])
