"""Rules guarding run-to-run determinism: RNG, wall clock, iteration order.

These encode the contracts :mod:`repro.fl.seeding` and the executor layer
rely on: every random draw comes from a derived, explicitly-seeded
generator; nothing serialisable reads the wall clock; and iteration over
client-id containers that feeds aggregation or event scheduling is
explicitly ordered (floating-point accumulation order is part of the
result, so "deterministic on this interpreter" is not enough — the order
must be *stated*).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import ModuleSource, Rule
from ..findings import Finding

__all__ = ["NoGlobalRng", "NoWallclockInState", "SortedIteration"]

#: legacy module-level numpy RNG functions (np.random.* that draw from or
#: mutate the hidden global RandomState).  ``default_rng``/``Generator``/
#: ``SeedSequence``/``PCG64`` etc. are deliberately absent: explicit
#: generator objects are the sanctioned API.
NUMPY_GLOBAL_FNS = frozenset({
    "seed", "get_state", "set_state", "rand", "randn", "randint",
    "random_integers", "random_sample", "random", "ranf", "sample", "bytes",
    "choice", "shuffle", "permutation", "beta", "binomial", "chisquare",
    "dirichlet", "exponential", "f", "gamma", "geometric", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto", "poisson",
    "power", "rayleigh", "standard_cauchy", "standard_exponential",
    "standard_gamma", "standard_normal", "standard_t", "triangular",
    "uniform", "vonmises", "wald", "weibull", "zipf",
})

#: stdlib ``random`` module-level functions (the hidden global Random()).
#: ``random.Random``/``random.SystemRandom`` construction is allowed — an
#: owned instance is explicit state, not the shared global stream.
STDLIB_RANDOM_FNS = frozenset({
    "seed", "random", "uniform", "randint", "randrange", "choice",
    "choices", "shuffle", "sample", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "paretovariate", "triangular", "vonmisesvariate", "weibullvariate",
    "getrandbits", "randbytes", "setstate", "getstate",
})

#: wall-clock reads (absolute time).  ``time.perf_counter``/``monotonic``
#: are allowed: they are relative clocks, only ever used for telemetry
#:  durations, never serialised as absolute timestamps.
TIME_WALLCLOCK_FNS = frozenset({"time", "time_ns", "ctime", "localtime",
                                "gmtime", "asctime"})
DATETIME_WALLCLOCK_FNS = frozenset({"now", "utcnow", "today"})

#: containers whose elements are client ids (or per-client state keyed by
#: them); iterating them unordered feeds nondeterministic order into
#: aggregation sums and event scheduling.
CLIENT_CONTAINER_ATTRS = frozenset({"clients", "_in_flight",
                                    "_participation"})
#: safe wrappers that impose an explicit order (or reduce order away).
ORDERING_CALLS = frozenset({"sorted", "min", "max", "sum", "len", "set",
                            "frozenset"})


def dotted_chain(node: ast.AST) -> list[str] | None:
    """``a.b.c`` as ``["a", "b", "c"]``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return None


def _resolves_to(module: ModuleSource, name: str, target: str) -> bool:
    """Does local ``name`` refer to module ``target`` (e.g. ``numpy``)?"""
    bound = module.module_aliases.get(name)
    if bound is not None:
        return bound == target or bound.startswith(target + ".")
    imported = module.imported_names.get(name)
    if imported is not None:
        source, original = imported
        return f"{source}.{original}" == target if source else \
            original == target
    return False


class NoGlobalRng(Rule):
    """No draws from the hidden global RNGs, anywhere in ``src/``.

    Global streams make a result depend on *everything that ran before*,
    which breaks the (run_seed, round, client_id) purity contract and the
    content-addressed cache's claim that a spec hash identifies a result.
    """

    rule_id = "no-global-rng"
    protects = ("every random draw comes from an explicitly seeded "
                "generator object, never the process-global stream")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None:
                continue
            fn = chain[-1]
            # np.random.<fn>(...) / numpy.random.<fn>(...)
            if (len(chain) >= 3 and chain[-2] == "random"
                    and fn in NUMPY_GLOBAL_FNS
                    and _resolves_to(module, chain[0], "numpy")):
                yield self.finding(
                    module, node,
                    f"call to legacy global numpy RNG np.random.{fn}(); "
                    f"use np.random.default_rng(...) or a derived stream "
                    f"from repro.fl.seeding")
            # <alias>.<fn>(...) where alias is the numpy.random module
            elif (len(chain) == 2 and fn in NUMPY_GLOBAL_FNS
                    and _resolves_to(module, chain[0], "numpy.random")):
                yield self.finding(
                    module, node,
                    f"call to legacy global numpy RNG numpy.random.{fn}()")
            # random.<fn>(...) on the stdlib module
            elif (len(chain) == 2 and fn in STDLIB_RANDOM_FNS
                    and _resolves_to(module, chain[0], "random")):
                yield self.finding(
                    module, node,
                    f"call to stdlib global RNG random.{fn}(); use an "
                    f"owned random.Random(seed) or numpy generator")
            # bare <fn>(...) imported from the stdlib random module
            elif (len(chain) == 1
                    and module.imported_names.get(fn, ("", ""))[0] == "random"
                    and module.imported_names[fn][1] in STDLIB_RANDOM_FNS):
                yield self.finding(
                    module, node,
                    f"call to stdlib global RNG random.{fn} (imported "
                    f"bare); use an owned generator")


class NoWallclockInState(Rule):
    """No absolute wall-clock reads outside explicitly allowed lines.

    Absolute timestamps in anything that gets serialised (histories, cache
    entries, checkpoints, specs) would break byte-identity between two
    runs of the same cell.  Relative clocks (``perf_counter``) are fine —
    they measure durations for telemetry and never enter serialised state.
    Telemetry's trace epoch is the documented exception and carries an
    allow comment.
    """

    rule_id = "no-wallclock-in-state"
    protects = ("serialised state never embeds absolute timestamps, so "
                "reruns of a cell stay byte-identical")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None:
                continue
            fn = chain[-1]
            if (len(chain) == 2 and fn in TIME_WALLCLOCK_FNS
                    and _resolves_to(module, chain[0], "time")):
                yield self.finding(
                    module, node,
                    f"wall-clock read time.{fn}(); use time.perf_counter() "
                    f"for durations, or allow[no-wallclock-in-state] with "
                    f"a reason if an absolute epoch is genuinely needed")
            elif (chain[-1] in DATETIME_WALLCLOCK_FNS and len(chain) >= 2
                    and (_resolves_to(module, chain[0], "datetime")
                         or module.imported_names.get(
                             chain[0], ("", ""))[0] == "datetime")):
                yield self.finding(
                    module, node,
                    f"wall-clock read {'.'.join(chain)}(); absolute "
                    f"timestamps must not reach serialised state")


class SortedIteration(Rule):
    """Iteration over client-id containers must state its order.

    ``for cid in algorithm.clients`` happens to be insertion-ordered on
    CPython, but insertion order is an accident of construction (and a
    worker-side replica may construct differently).  Aggregation order is
    part of the result — floating-point sums do not commute — so the order
    must be explicit: ``sorted(...)`` (or an order-free reduction).
    """

    rule_id = "sorted-iteration"
    protects = ("client iteration feeding aggregation/event scheduling is "
                "explicitly ordered, so accumulation order can never drift")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        iter_exprs: list[ast.AST] = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iter_exprs.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iter_exprs.extend(gen.iter for gen in node.generators)
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in ORDERING_CALLS):
                # sorted(x.clients) and friends are the sanctioned forms;
                # blank out their argument so the walk cannot re-flag it.
                continue
        for expr in iter_exprs:
            container = self._client_container(module, expr)
            if container is not None:
                yield self.finding(
                    module, expr,
                    f"unordered iteration over client container "
                    f"'{container}'; wrap it in sorted(...) so the "
                    f"iteration order is explicit")

    def _client_container(self, module: ModuleSource,
                          expr: ast.AST) -> str | None:
        """The offending container name, or None when the expr is fine."""
        node = expr
        # sorted(...)/min(...)/... impose or erase order: accept.
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ORDERING_CALLS):
            return None
        suffix = ""
        if (isinstance(node, ast.Call) and isinstance(node.func,
                                                      ast.Attribute)
                and node.func.attr in ("keys", "values", "items")
                and not node.args and not node.keywords):
            suffix = f".{node.func.attr}()"
            node = node.func.value
        if (isinstance(node, ast.Attribute)
                and node.attr in CLIENT_CONTAINER_ATTRS):
            chain = dotted_chain(node)
            name = ".".join(chain) if chain else node.attr
            return f"{name}{suffix}"
        return None
