"""The determinism-contract rule catalog for ``repro lint``.

Each rule encodes one invariant the platform's reproducibility guarantees
rest on.  :func:`all_rules` is the canonical registry — the CLI, CI gate
and tests all run exactly this set, so adding a rule here is all it takes
to enforce a new contract everywhere.
"""

from __future__ import annotations

from ..engine import Rule
from .coverage import HashFieldCoverage, SerializationCoverage
from .determinism import NoGlobalRng, NoWallclockInState, SortedIteration
from .hygiene import LoggerNaming, NoBareExcept, PureWorkItems

__all__ = ["all_rules", "rule_catalog",
           "NoGlobalRng", "NoWallclockInState", "SortedIteration",
           "HashFieldCoverage", "SerializationCoverage",
           "PureWorkItems", "LoggerNaming", "NoBareExcept"]

#: registry order is report order for equal (file, line) ties.
RULE_CLASSES: tuple[type[Rule], ...] = (
    NoGlobalRng,
    NoWallclockInState,
    SortedIteration,
    HashFieldCoverage,
    SerializationCoverage,
    PureWorkItems,
    LoggerNaming,
    NoBareExcept,
)


def all_rules() -> list[Rule]:
    """Fresh instances of the full catalog (rules hold no state, but a
    fresh list keeps callers from aliasing each other's registries)."""
    return [cls() for cls in RULE_CLASSES]


def rule_catalog() -> dict[str, str]:
    """rule id -> one-line contract statement (docs and ``--json``)."""
    return {cls.rule_id: cls.protects for cls in RULE_CLASSES}
