"""Hygiene rules: pure work items, logger naming, exception discipline.

* **pure-work-items** — the statically resolvable call graph rooted at
  ``fl/executor.py::execute_work_item`` must not write module-global
  mutable state.  Work items are the unit of parallel dispatch; a global
  write makes a worker's result depend on which items it ran before,
  which is exactly the order-dependence the executor contract forbids.
  Worker-side caches that are *deliberately* process-local (the scenario
  and dataset memo tables) carry documented allow comments.
* **logger-naming** — all loggers come from
  :func:`repro.telemetry.logs.get_logger`, so the whole tree lives under
  the ``repro.*`` hierarchy and one handler config governs everything.
* **no-bare-except** — no bare ``except:`` anywhere; no broad
  ``except Exception`` that swallows (never re-raises) in the executor /
  aggregation / runner paths, where a swallowed error turns into a
  silently wrong aggregate rather than a failed run.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import ModuleSource, ProjectRule, Rule
from ..findings import Finding
from .determinism import dotted_chain

__all__ = ["PureWorkItems", "LoggerNaming", "NoBareExcept"]

#: root of the work-item call graph.
WORK_ITEM_ROOT = ("fl/executor.py", "execute_work_item")

#: in-place mutator method names on builtin containers.
MUTATOR_METHODS = frozenset({"append", "add", "update", "pop", "setdefault",
                             "clear", "extend", "remove", "discard",
                             "insert", "popitem", "appendleft", "extendleft"})

#: paths where a swallowed broad exception corrupts results silently.
STRICT_EXCEPT_PREFIXES = ("fl/", "experiments/")

#: the sanctioned logger factory's home (the one logging.getLogger site).
LOGGER_MODULE = "telemetry/logs.py"


def _module_rel_candidates(dotted: str) -> tuple[str, ...]:
    """Root-relative rel paths a dotted module may live at."""
    if dotted.startswith("repro."):
        dotted = dotted[len("repro."):]
    elif dotted == "repro":
        dotted = ""
    base = dotted.replace(".", "/")
    if not base:
        return ("__init__.py",)
    return (f"{base}.py", f"{base}/__init__.py")


def resolve_module(modules: dict[str, ModuleSource],
                   dotted: str) -> ModuleSource | None:
    for rel in _module_rel_candidates(dotted):
        if rel in modules:
            return modules[rel]
    return None


def top_level_functions(module: ModuleSource) -> dict[str, ast.FunctionDef]:
    return {node.name: node for node in module.tree.body
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))}


def module_level_names(module: ModuleSource) -> set[str]:
    """Names bound by top-level assignments (module-global state)."""
    names: set[str] = set()
    for stmt in module.tree.body:
        targets: list[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            targets = [stmt.target]
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    names.add(node.id)
    return names


def local_names(fn: ast.FunctionDef) -> set[str]:
    """Names the function binds locally (params, assignments, loops,
    withs, comprehension targets, local imports)."""
    names: set[str] = set()
    args = fn.args
    for arg in (args.posonlyargs + args.args + args.kwonlyargs):
        names.add(arg.arg)
    if args.vararg:
        names.add(args.vararg.arg)
    if args.kwarg:
        names.add(args.kwarg.arg)
    declared_global: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Global):
            declared_global.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            names.add(node.id)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add(alias.asname or alias.name.split(".")[0])
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not fn:
            names.add(node.name)
    return names - declared_global


def _root_name(node: ast.AST) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


class PureWorkItems(ProjectRule):
    """No module-global writes reachable from ``execute_work_item``.

    The analysis follows statically resolvable calls only (same-module
    names, ``from m import f`` bindings, ``module.f()`` through import
    aliases); dynamic dispatch through objects (``algorithm.client_round``)
    is out of scope — those paths are covered by the strict-mode runtime
    sanitizers instead.
    """

    rule_id = "pure-work-items"
    protects = ("work items stay pure functions of their inputs, so any "
                "executor can run them in any order on any worker and "
                "produce identical results")

    def check_project(self,
                      modules: dict[str, ModuleSource]) -> Iterable[Finding]:
        root_rel, root_fn = WORK_ITEM_ROOT
        if root_rel not in modules:
            return
        fn_index = {rel: top_level_functions(m)
                    for rel, m in modules.items()}
        globals_index = {rel: module_level_names(m)
                         for rel, m in modules.items()}
        if root_fn not in fn_index[root_rel]:
            yield Finding(path=root_rel, line=1, col=1, rule=self.rule_id,
                          message=f"work-item root {root_fn} is missing; "
                                  f"update WORK_ITEM_ROOT if it moved")
            return
        seen: set[tuple[str, str]] = set()
        queue: list[tuple[str, str]] = [(root_rel, root_fn)]
        while queue:
            rel, name = queue.pop()
            if (rel, name) in seen:
                continue
            seen.add((rel, name))
            module = modules[rel]
            fn = fn_index[rel][name]
            locals_ = local_names(fn)
            module_globals = globals_index[rel]
            yield from self._check_function(module, fn, name, locals_,
                                            module_globals)
            for callee in self._resolve_calls(module, fn, locals_,
                                              modules, fn_index):
                if callee not in seen:
                    queue.append(callee)

    def _check_function(self, module: ModuleSource, fn: ast.FunctionDef,
                        name: str, locals_: set[str],
                        module_globals: set[str]) -> Iterable[Finding]:
        def is_global(root: str | None) -> bool:
            return (root is not None and root not in locals_
                    and root in module_globals)

        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                yield self.finding(
                    module, node,
                    f"{name}() declares 'global "
                    f"{', '.join(node.names)}' on the work-item path; "
                    f"work items must not rebind module state")
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (node.targets if isinstance(node, (ast.Assign,
                                                             ast.Delete))
                           else [node.target])
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)) \
                            and is_global(_root_name(target)):
                        yield self.finding(
                            module, node,
                            f"{name}() writes module-global "
                            f"'{_root_name(target)}' on the work-item "
                            f"path; results would depend on worker "
                            f"history")
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS):
                root = _root_name(node.func.value)
                if isinstance(node.func.value,
                              (ast.Name, ast.Subscript)) \
                        and is_global(root):
                    yield self.finding(
                        module, node,
                        f"{name}() mutates module-global '{root}' via "
                        f".{node.func.attr}() on the work-item path")

    def _resolve_calls(self, module: ModuleSource, fn: ast.FunctionDef,
                       locals_: set[str],
                       modules: dict[str, ModuleSource],
                       fn_index: dict[str, dict[str, ast.FunctionDef]],
                       ) -> Iterable[tuple[str, str]]:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            # function references escaping as call arguments
            # (``dataset_loader=_memoised_load_dataset``) are edges too:
            # the callee may invoke them on the work-item path.
            for value in ([a for a in node.args]
                          + [kw.value for kw in node.keywords]):
                if isinstance(value, ast.Name) and value.id not in locals_:
                    if value.id in fn_index[module.rel]:
                        yield (module.rel, value.id)
                    elif value.id in module.imported_names:
                        source, original = module.imported_names[value.id]
                        target = resolve_module(modules, source) \
                            if source else None
                        if target is not None and original in \
                                fn_index[target.rel]:
                            yield (target.rel, original)
            chain = dotted_chain(node.func)
            if chain is None:
                continue
            if len(chain) == 1:
                callee = chain[0]
                if callee in fn_index[module.rel] and callee not in \
                        module.imported_names and callee not in locals_:
                    yield (module.rel, callee)
                elif callee in module.imported_names:
                    source, original = module.imported_names[callee]
                    target = resolve_module(modules, source) if source \
                        else None
                    if target is not None and original in \
                            fn_index[target.rel]:
                        yield (target.rel, original)
            elif len(chain) == 2 and chain[0] not in locals_:
                dotted = None
                if chain[0] in module.module_aliases:
                    dotted = module.module_aliases[chain[0]]
                elif chain[0] in module.imported_names:
                    source, original = module.imported_names[chain[0]]
                    dotted = f"{source}.{original}" if source else original
                if dotted is not None:
                    target = resolve_module(modules, dotted)
                    if target is not None and chain[1] in \
                            fn_index[target.rel]:
                        yield (target.rel, chain[1])


class LoggerNaming(Rule):
    """All loggers come from the ``repro.*``-rooted factory.

    ``logging.getLogger("something")`` creates a tree outside the
    ``repro`` hierarchy, invisible to the telemetry handler config; and
    ``get_logger("repro.x")`` double-prefixes to ``repro.repro.x``.
    """

    rule_id = "logger-naming"
    protects = ("every logger lives under the repro.* hierarchy created "
                "by repro.telemetry.logs.get_logger, so one handler "
                "config governs all output")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        if module.rel == LOGGER_MODULE:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            if chain is None:
                continue
            if (chain[-1] == "getLogger"
                    and (len(chain) == 2
                         and module.module_aliases.get(chain[0])
                         == "logging"
                         or len(chain) == 1
                         and module.imported_names.get(
                             "getLogger", ("", ""))[0] == "logging")):
                yield self.finding(
                    module, node,
                    "direct logging.getLogger() call; use "
                    "repro.telemetry.logs.get_logger so the logger joins "
                    "the repro.* hierarchy")
            elif (chain[-1] == "get_logger" and node.args
                    and isinstance(node.args[0], ast.Constant)
                    and isinstance(node.args[0].value, str)
                    and (node.args[0].value == "repro"
                         or node.args[0].value.startswith("repro."))):
                yield self.finding(
                    module, node,
                    f"get_logger({node.args[0].value!r}) double-prefixes "
                    f"to 'repro.{node.args[0].value}'; pass the name "
                    f"without the 'repro.' root")


class NoBareExcept(Rule):
    """No bare ``except:``; no swallowed broad excepts on hot paths.

    A bare ``except:`` catches ``KeyboardInterrupt``/``SystemExit`` and
    is never right.  In ``fl/`` and ``experiments/`` — where exceptions
    mark lost client work — a broad ``except Exception`` that never
    re-raises converts a loud failure into a silently wrong aggregate, so
    it must either re-raise or carry a documented allow comment.
    """

    rule_id = "no-bare-except"
    protects = ("executor and aggregation paths never swallow errors: "
                "failures surface instead of corrupting results")

    def check_module(self, module: ModuleSource) -> Iterable[Finding]:
        strict = module.rel.startswith(STRICT_EXCEPT_PREFIXES)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    module, node,
                    "bare 'except:' catches KeyboardInterrupt/SystemExit; "
                    "name the exceptions (or 'except Exception' plus a "
                    "re-raise)")
            elif strict and self._is_broad(node.type) \
                    and not self._reraises(node):
                yield self.finding(
                    module, node,
                    "broad except swallows the error on an executor/"
                    "aggregation path; re-raise, narrow the type, or "
                    "document with allow[no-bare-except]")

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        names = []
        if isinstance(type_node, ast.Tuple):
            names = [elt.id for elt in type_node.elts
                     if isinstance(elt, ast.Name)]
        elif isinstance(type_node, ast.Name):
            names = [type_node.id]
        return any(n in ("Exception", "BaseException") for n in names)

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(isinstance(node, ast.Raise)
                   for node in ast.walk(handler))
