"""Cross-file coverage rules: hash fields and serialisation round-trips.

Both rules compare a dataclass definition in one module against codec
code in another, so they are :class:`~repro.analysis.engine.ProjectRule`\\ s:

* **hash-field-coverage** — every field of the content-hashed spec
  dataclasses (``RunSpec``, ``ConstraintSpec``, ``ExecutionConfig``)
  appears as a key in its ``to_dict`` *or* in the class's explicit
  ``HASH_EXCLUDED`` ClassVar.  Adding a field without deciding its hash
  status is exactly how silent cache poisoning happens: the spec changes
  behaviour but keeps its old content hash.
* **serialization-coverage** — the payload dataclasses round-tripped by
  :mod:`repro.fl.serialization` (``ClientUpdate``, ``RoundRecord``,
  ``History``) have every field present in both the encoder and the
  decoder, or declared volatile in ``VOLATILE_FIELDS`` (the per-field
  sibling of ``VOLATILE_EXTRA_KEYS``).
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..engine import ModuleSource, ProjectRule
from ..findings import Finding

__all__ = ["HashFieldCoverage", "SerializationCoverage"]

#: (module rel path, class name) of every content-hashed spec dataclass.
HASH_TARGETS = (
    ("experiments/spec.py", "RunSpec"),
    ("constraints/spec.py", "ConstraintSpec"),
    ("fl/aggregation.py", "ExecutionConfig"),
)

#: the codec module and the payload dataclasses it round-trips:
#: (defining module, class, encoder fn, decoder fn).
CODEC_MODULE = "fl/serialization.py"
SERIALIZATION_TARGETS = (
    ("algorithms/base.py", "ClientUpdate",
     "client_update_to_dict", "client_update_from_dict"),
    ("fl/history.py", "RoundRecord", "history_to_dict", "history_from_dict"),
    ("fl/history.py", "History", "history_to_dict", "history_from_dict"),
)


def find_class(module: ModuleSource, name: str) -> ast.ClassDef | None:
    for node in module.tree.body:
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def find_function(tree: ast.AST, name: str) -> ast.FunctionDef | None:
    for node in getattr(tree, "body", ()):
        if isinstance(node, (ast.FunctionDef,
                             ast.AsyncFunctionDef)) and node.name == name:
            return node
    return None


def dataclass_fields(cls: ast.ClassDef) -> dict[str, ast.AnnAssign]:
    """Field name -> annotation node, skipping ``ClassVar`` declarations."""
    fields: dict[str, ast.AnnAssign] = {}
    for stmt in cls.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and "ClassVar" not in ast.unparse(stmt.annotation)):
            fields[stmt.target.id] = stmt
    return fields


def string_dict_keys(fn: ast.AST) -> set[str]:
    """String keys the function serialises: dict-literal keys plus
    ``payload["key"] = ...`` subscript stores."""
    keys: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Dict):
            keys.update(k.value for k in node.keys
                        if isinstance(k, ast.Constant)
                        and isinstance(k.value, str))
        elif isinstance(node, (ast.Assign,)):
            for target in node.targets:
                if (isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and isinstance(target.slice.value, str)):
                    keys.add(target.slice.value)
    return keys


def string_constants(fn: ast.AST) -> set[str]:
    """Every string literal in the function (decoder key extraction:
    decoders read keys via ``payload["k"]`` and ``payload.get("k", ...)``,
    both of which surface here)."""
    return {node.value for node in ast.walk(fn)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)}


def declared_exclusions(cls: ast.ClassDef) -> tuple[set[str],
                                                    ast.AnnAssign | None,
                                                    bool]:
    """(excluded names, the HASH_EXCLUDED node, is ClassVar-annotated)."""
    for stmt in cls.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and stmt.target.id == "HASH_EXCLUDED"):
            names = ({node.value for node in ast.walk(stmt.value)
                      if isinstance(node, ast.Constant)
                      and isinstance(node.value, str)}
                     if stmt.value is not None else set())
            return names, stmt, "ClassVar" in ast.unparse(stmt.annotation)
    return set(), None, True


class HashFieldCoverage(ProjectRule):
    """Every spec field is serialised or explicitly excluded from the hash.

    ``to_dict`` is the content-hash input, so an unserialised field is a
    behaviour knob the cache cannot see: two different runs would share a
    hash.  Mechanical fields (parallelism, hardening) are *intentionally*
    hash-invisible — but the intent must be stated in ``HASH_EXCLUDED`` so
    the omission is a decision, not an accident.
    """

    rule_id = "hash-field-coverage"
    protects = ("every RunSpec/ConstraintSpec/ExecutionConfig field is "
                "either content-hashed via to_dict or explicitly declared "
                "hash-excluded, so cache keys can never silently drift")

    def check_project(self,
                      modules: dict[str, ModuleSource]) -> Iterable[Finding]:
        for rel, class_name in HASH_TARGETS:
            module = modules.get(rel)
            if module is None:
                continue
            cls = find_class(module, class_name)
            if cls is None:
                yield Finding(path=rel, line=1, col=1, rule=self.rule_id,
                              message=f"expected class {class_name} is "
                                      f"missing; update HASH_TARGETS in "
                                      f"repro.analysis.rules.coverage if "
                                      f"it moved")
                continue
            to_dict = find_function(cls, "to_dict")
            if to_dict is None:
                yield self._finding(module, cls,
                                    f"{class_name} has no to_dict; content "
                                    f"hashing requires a canonical "
                                    f"serialised form")
                continue
            fields = dataclass_fields(cls)
            serialised = string_dict_keys(to_dict)
            excluded, excl_node, is_classvar = declared_exclusions(cls)
            if excl_node is not None and not is_classvar:
                yield self._finding(
                    module, excl_node,
                    f"{class_name}.HASH_EXCLUDED must be annotated "
                    f"ClassVar[...]: as a plain annotation it becomes a "
                    f"dataclass field and changes the hash itself")
            for name, node in sorted(fields.items()):
                if name not in serialised and name not in excluded:
                    yield self._finding(
                        module, node,
                        f"field {class_name}.{name} is not serialised by "
                        f"to_dict and not listed in HASH_EXCLUDED; decide "
                        f"its hash status explicitly")
            for name in sorted(excluded):
                if name not in fields:
                    yield self._finding(
                        module, excl_node,
                        f"HASH_EXCLUDED names {name!r} which is not a "
                        f"field of {class_name}; remove the stale entry")
                elif name in serialised:
                    yield self._finding(
                        module, excl_node,
                        f"{class_name}.{name} is listed in HASH_EXCLUDED "
                        f"but to_dict serialises it; the declaration lies")

    def _finding(self, module: ModuleSource, node: ast.AST,
                 message: str) -> Finding:
        return self.finding(module, node, message)


class SerializationCoverage(ProjectRule):
    """Payload dataclasses round-trip every field (or declare it volatile).

    A field missing from the encoder silently vanishes on save/load; one
    missing from the decoder resurrects with its default.  Either way a
    restored run is no longer the run that was saved.  Measured-time
    fields that *should* be dropped go in ``VOLATILE_FIELDS``, next to
    ``VOLATILE_EXTRA_KEYS``, so the drop is documented.
    """

    rule_id = "serialization-coverage"
    protects = ("ClientUpdate/RoundRecord/History round-trip losslessly "
                "through fl/serialization.py, or declare dropped fields "
                "volatile")

    def check_project(self,
                      modules: dict[str, ModuleSource]) -> Iterable[Finding]:
        codec = modules.get(CODEC_MODULE)
        if codec is None:
            return
        volatile = self._volatile_fields(codec)
        targets_by_class = {cls: (rel, to_fn, from_fn)
                            for rel, cls, to_fn, from_fn
                            in SERIALIZATION_TARGETS}
        seen_fields: dict[str, set[str]] = {}
        serialised_fields: dict[str, set[str]] = {}
        for rel, class_name, to_name, from_name in SERIALIZATION_TARGETS:
            module = modules.get(rel)
            if module is None:
                continue
            cls = find_class(module, class_name)
            if cls is None:
                yield Finding(path=rel, line=1, col=1, rule=self.rule_id,
                              message=f"expected payload class "
                                      f"{class_name} is missing; update "
                                      f"SERIALIZATION_TARGETS if it moved")
                continue
            encoder = find_function(codec.tree, to_name)
            decoder = find_function(codec.tree, from_name)
            for fn_name, fn in ((to_name, encoder), (from_name, decoder)):
                if fn is None:
                    yield Finding(path=CODEC_MODULE, line=1, col=1,
                                  rule=self.rule_id,
                                  message=f"codec function {fn_name} for "
                                          f"{class_name} is missing")
            if encoder is None or decoder is None:
                continue
            fields = dataclass_fields(cls)
            seen_fields[class_name] = set(fields)
            encoded = string_dict_keys(encoder)
            decoded = string_constants(decoder)
            serialised_fields[class_name] = encoded & decoded
            declared = volatile.get(class_name, set())
            for name, node in sorted(fields.items()):
                if name in declared:
                    continue
                if name not in encoded:
                    yield self.finding(
                        module, node,
                        f"{class_name}.{name} is not encoded by {to_name} "
                        f"and not declared in VOLATILE_FIELDS; the field "
                        f"would vanish on save")
                elif name not in decoded:
                    yield self.finding(
                        module, node,
                        f"{class_name}.{name} is encoded by {to_name} but "
                        f"never read back by {from_name}; the round-trip "
                        f"is lossy")
        # stale volatile declarations
        for class_name, names in sorted(volatile.items()):
            if class_name not in targets_by_class:
                yield Finding(path=CODEC_MODULE, line=self._volatile_line(
                                  codec), col=1, rule=self.rule_id,
                              message=f"VOLATILE_FIELDS names unknown "
                                      f"payload class {class_name!r}")
                continue
            known = seen_fields.get(class_name)
            if known is None:
                continue
            for name in sorted(names):
                if name not in known:
                    yield Finding(
                        path=CODEC_MODULE, line=self._volatile_line(codec),
                        col=1, rule=self.rule_id,
                        message=f"VOLATILE_FIELDS declares "
                                f"{class_name}.{name} which is not a "
                                f"field; remove the stale entry")
                elif name in serialised_fields.get(class_name, set()):
                    yield Finding(
                        path=CODEC_MODULE, line=self._volatile_line(codec),
                        col=1, rule=self.rule_id,
                        message=f"{class_name}.{name} is declared volatile "
                                f"but the codec round-trips it anyway")

    def _volatile_node(self, codec: ModuleSource) -> ast.AST | None:
        for stmt in codec.tree.body:
            target = None
            if isinstance(stmt, ast.AnnAssign):
                target = stmt.target
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
            if isinstance(target, ast.Name) and \
                    target.id == "VOLATILE_FIELDS":
                return stmt
        return None

    def _volatile_line(self, codec: ModuleSource) -> int:
        node = self._volatile_node(codec)
        return node.lineno if node is not None else 1

    def _volatile_fields(self, codec: ModuleSource) -> dict[str, set[str]]:
        """Parse ``VOLATILE_FIELDS = {"Class": frozenset({"field"})}``."""
        node = self._volatile_node(codec)
        if node is None or getattr(node, "value", None) is None:
            return {}
        value = node.value
        result: dict[str, set[str]] = {}
        if isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(key.value,
                                                                str):
                    result[key.value] = {
                        n.value for n in ast.walk(val)
                        if isinstance(n, ast.Constant)
                        and isinstance(n.value, str)}
        return result
