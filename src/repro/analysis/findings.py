"""Findings and suppression comments for the determinism lint.

A :class:`Finding` is one located violation of a determinism contract —
rule id, file, line, column, message — produced by a rule in
:mod:`repro.analysis.rules` and rendered by ``repro lint`` (text or
``--json``).

Suppressions are source comments of the form::

    risky_call()  # repro: allow[rule-id] why this is intentional

placed on the offending line, or on a line of their own immediately above
it.  Several ids may share one comment (``allow[a, b]``).  A suppression
silences exactly the named rule on exactly that line — there is no
file-level or wildcard form, so every intentional violation stays visible
and documented where it happens.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass, field
from io import StringIO

__all__ = ["Finding", "SuppressionIndex", "parse_suppressions",
           "ALLOW_PATTERN"]

#: matches one allow comment; group 1 is the comma-separated id list.
ALLOW_PATTERN = re.compile(r"#\s*repro:\s*allow\[([a-z0-9*,\s-]+)\]")


@dataclass(frozen=True, order=True)
class Finding:
    """One located violation of a determinism contract."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> dict:
        """JSON-safe form (the ``repro lint --json`` finding schema)."""
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message}

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] " \
               f"{self.message}"


@dataclass
class SuppressionIndex:
    """Per-file map of line -> rule ids an allow comment covers.

    ``used`` records which (line, rule) pairs actually silenced a finding,
    so the engine can report stale allow comments that no longer suppress
    anything.
    """

    by_line: dict[int, set[str]] = field(default_factory=dict)
    #: line of the comment itself, for stale-suppression reporting.
    comment_lines: dict[int, set[str]] = field(default_factory=dict)
    #: comment line -> code line its allowance covers (absent when the
    #: comment reaches no code line at all).
    comment_targets: dict[int, int] = field(default_factory=dict)
    used: set[tuple[int, str]] = field(default_factory=set)

    def allows(self, line: int, rule: str) -> bool:
        rules = self.by_line.get(line)
        if rules is not None and rule in rules:
            self.used.add((line, rule))
            return True
        return False


def parse_suppressions(source: str) -> SuppressionIndex:
    """Index every ``# repro: allow[...]`` comment in ``source``.

    A comment that shares a line with code covers that line; a comment on
    a line of its own covers the next *code* line, reading through any
    further standalone comment lines in between (so a multi-line
    justification can carry its allowance at the top).  A blank line ends
    the chain — the allowance must sit against the code it excuses.
    Tokenising (rather than regexing raw lines) keeps allow markers
    inside string literals inert.
    """
    index = SuppressionIndex()
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return index
    code_lines = {tok.start[0] for tok in tokens
                  if tok.type not in (tokenize.COMMENT, tokenize.NL,
                                      tokenize.NEWLINE, tokenize.INDENT,
                                      tokenize.DEDENT, tokenize.ENDMARKER)}
    comment_lines = {tok.start[0] for tok in tokens
                     if tok.type == tokenize.COMMENT}
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = ALLOW_PATTERN.search(tok.string)
        if match is None:
            continue
        rules = {part.strip() for part in match.group(1).split(",")
                 if part.strip()}
        line = tok.start[0]
        target = line
        while target not in code_lines and (target == line or
                                            target in comment_lines):
            target += 1
        if target in code_lines:
            index.by_line.setdefault(target, set()).update(rules)
            index.comment_targets[line] = target
        index.comment_lines.setdefault(line, set()).update(rules)
    return index
