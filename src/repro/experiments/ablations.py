"""Ablations of the algorithm design choices DESIGN.md calls out.

Each MHFL method carries a distinctive mechanism on top of plain sub-model
averaging; these ablations switch the mechanism off and rerun the same
constrained scenario, quantifying what the mechanism actually buys:

* **DepthFL − self-distillation** — drop the mutual KL between auxiliary
  heads (``distill_weight = 0``);
* **InclusiveFL − momentum distillation** — drop the deeper-block update
  injection (``momentum_beta = 0``);
* **Fjord − ordered dropout** — train each client's own width only, never a
  sampled smaller one (reduces Fjord to SHeteroFL's static scheme);
* **FedRolex − rolling** — freeze the window at shift 0 (reduces FedRolex
  to prefix extraction).
"""

from __future__ import annotations

from ..constraints import ConstraintSpec
from .registry import register_artifact
from .runner import execute_spec
from .spec import RunSpec

__all__ = ["ABLATIONS", "run"]


def _disable_depthfl_distill(algorithm) -> None:
    algorithm.distill_weight = 0.0


def _disable_inclusive_momentum(algorithm) -> None:
    algorithm.momentum_beta = 0.0


def _disable_fjord_sampling(algorithm) -> None:
    algorithm.pool = None   # no pool -> client trains its own width only


def _freeze_fedrolex_window(algorithm) -> None:
    algorithm.rolling_shift = lambda round_index: 0


#: name -> (algorithm, dataset, mechanism-off mutation, description)
ABLATIONS = {
    "depthfl_no_distill": ("depthfl", "harbox", _disable_depthfl_distill,
                           "DepthFL without head self-distillation"),
    "inclusivefl_no_momentum": ("inclusivefl", "harbox",
                                _disable_inclusive_momentum,
                                "InclusiveFL without momentum distillation"),
    "fjord_no_ordered_dropout": ("fjord", "harbox", _disable_fjord_sampling,
                                 "Fjord without ordered-dropout sampling"),
    "fedrolex_static_window": ("fedrolex", "harbox", _freeze_fedrolex_window,
                               "FedRolex with a frozen (prefix) window"),
}


def _run_variant(algorithm_name: str, dataset: str, scale: str, seed: int,
                 mutate=None, tag: str = "",
                 scale_overrides: dict | None = None) -> float:
    """One constrained run, optionally with the mechanism switched off.

    The ablated variant carries a ``tag`` naming the mutation, so it caches
    under its own content hash (the full variant shares its cache entry
    with every other plain run of the same cell).
    """
    spec = RunSpec(algorithm=algorithm_name, dataset=dataset,
                   constraints=ConstraintSpec(constraints=("computation",)),
                   scale=scale, scale_overrides=scale_overrides or {},
                   seed=seed, tag=tag)
    return execute_spec(spec, mutate=mutate).final_accuracy


@register_artifact("ablations", title="Ablations: what each mechanism buys")
def run(scale: str = "demo", seed: int = 0,
        names: list[str] | None = None,
        scale_overrides: dict | None = None) -> list[dict]:
    rows = []
    for name in (names or list(ABLATIONS)):
        algorithm, dataset, mutate, description = ABLATIONS[name]
        full = _run_variant(algorithm, dataset, scale, seed,
                            scale_overrides=scale_overrides)
        ablated = _run_variant(algorithm, dataset, scale, seed, mutate,
                               tag=f"ablation:{name}",
                               scale_overrides=scale_overrides)
        acc_full, acc_ablated = round(full, 4), round(ablated, 4)
        rows.append({"ablation": name, "dataset": dataset,
                     "acc_full": acc_full,
                     "acc_ablated": acc_ablated,
                     # derived from the *rounded* fields so the row is
                     # self-consistent at any rounding boundary.
                     "mechanism_gain": round(acc_full - acc_ablated, 4),
                     "description": description})
    return rows


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["ablations", *sys.argv[1:]]))
