"""Ablations of the algorithm design choices DESIGN.md calls out.

Each MHFL method carries a distinctive mechanism on top of plain sub-model
averaging; these ablations switch the mechanism off and rerun the same
constrained scenario, quantifying what the mechanism actually buys:

* **DepthFL − self-distillation** — drop the mutual KL between auxiliary
  heads (``distill_weight = 0``);
* **InclusiveFL − momentum distillation** — drop the deeper-block update
  injection (``momentum_beta = 0``);
* **Fjord − ordered dropout** — train each client's own width only, never a
  sampled smaller one (reduces Fjord to SHeteroFL's static scheme);
* **FedRolex − rolling** — freeze the window at shift 0 (reduces FedRolex
  to prefix extraction).
"""

from __future__ import annotations

import sys

from ..constraints import ConstraintSpec
from ..fl.simulation import SimulationConfig, run_simulation
from .mapping import build_base_model
from .reporting import format_table
from .runner import run_one
from .scales import get_scale

__all__ = ["ABLATIONS", "run", "main"]


def _disable_depthfl_distill(algorithm) -> None:
    algorithm.distill_weight = 0.0


def _disable_inclusive_momentum(algorithm) -> None:
    algorithm.momentum_beta = 0.0


def _disable_fjord_sampling(algorithm) -> None:
    algorithm.pool = None   # no pool -> client trains its own width only


def _freeze_fedrolex_window(algorithm) -> None:
    algorithm.rolling_shift = lambda round_index: 0


#: name -> (algorithm, dataset, mechanism-off mutation, description)
ABLATIONS = {
    "depthfl_no_distill": ("depthfl", "harbox", _disable_depthfl_distill,
                           "DepthFL without head self-distillation"),
    "inclusivefl_no_momentum": ("inclusivefl", "harbox",
                                _disable_inclusive_momentum,
                                "InclusiveFL without momentum distillation"),
    "fjord_no_ordered_dropout": ("fjord", "harbox", _disable_fjord_sampling,
                                 "Fjord without ordered-dropout sampling"),
    "fedrolex_static_window": ("fedrolex", "harbox", _freeze_fedrolex_window,
                               "FedRolex with a frozen (prefix) window"),
}


def _run_variant(algorithm_name: str, dataset: str, scale: str, seed: int,
                 mutate=None) -> float:
    """One constrained run, optionally with the mechanism switched off."""
    from ..constraints import build_scenario
    from ..data.registry import load_dataset
    from ..fl.client import LocalTrainConfig

    scale_obj = get_scale(scale)
    spec = ConstraintSpec(constraints=("computation",))
    ds = load_dataset(dataset, seed=seed, **scale_obj.kwargs_for(dataset))
    from ..algorithms import get_algorithm
    level = get_algorithm(algorithm_name).level
    base = build_base_model(ds, "width" if level == "homogeneous" else level,
                            seed=seed)
    scenario = build_scenario(
        algorithm_name, base, ds, scale_obj.clients_for(dataset), spec,
        train_config=LocalTrainConfig(batch_size=scale_obj.batch_size,
                                      local_epochs=scale_obj.local_epochs,
                                      max_batches=scale_obj.max_batches),
        seed=seed, eval_max_samples=scale_obj.eval_max_samples)
    if mutate is not None:
        mutate(scenario.algorithm)
    sim = SimulationConfig(num_rounds=scale_obj.num_rounds,
                           sample_ratio=scale_obj.sample_ratio,
                           eval_every=scale_obj.eval_every, seed=seed)
    return run_simulation(scenario.algorithm, sim).final_accuracy


def run(scale: str = "demo", seed: int = 0,
        names: list[str] | None = None) -> list[dict]:
    rows = []
    for name in (names or list(ABLATIONS)):
        algorithm, dataset, mutate, description = ABLATIONS[name]
        full = _run_variant(algorithm, dataset, scale, seed)
        ablated = _run_variant(algorithm, dataset, scale, seed, mutate)
        rows.append({"ablation": name, "dataset": dataset,
                     "acc_full": round(full, 4),
                     "acc_ablated": round(ablated, 4),
                     "mechanism_gain": round(full - ablated, 4),
                     "description": description})
    return rows


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "demo"
    print(format_table(run(scale=scale),
                       title="Ablations: what each mechanism buys"))


if __name__ == "__main__":
    main()
