"""Figure 9: analysis of scalability.

Accuracy and time-to-accuracy versus client count on the memory-limited
CIFAR-100 case (paper x-axis: 100 / 200 / 500 clients; the demo scale uses
the same 1:2:5 proportions at its own size). Fed-ET appears instead of
FedProto following the paper's Figure 9 legend.
"""

from __future__ import annotations

from ..algorithms import MHFL_ALGORITHMS
from ..constraints import ConstraintSpec
from .registry import register_artifact
from .reporting import aggregate_seed_rows
from .runner import resolve_target_accuracy, run_one
from .scales import get_scale

__all__ = ["run", "client_counts_for"]

_FIG9_ALGORITHMS = [n for n in MHFL_ALGORITHMS if n != "fedproto"]


def client_counts_for(scale_name: str) -> list[int]:
    """The paper's 100/200/500 sweep, shrunk proportionally off-paper."""
    base = {"smoke": 4, "demo": 10, "paper": 100}[scale_name]
    return [base, base * 2, base * 5]


def _rows_for_seed(seed: int, scale: str, dataset: str,
                   algorithms: list[str], counts: list[int],
                   availability: str,
                   scale_overrides: dict | None) -> list[dict]:
    spec = ConstraintSpec(constraints=("memory",), availability=availability)
    rows = []
    for num_clients in counts:
        results = {}
        for name in algorithms:
            results[name] = run_one(name, dataset, spec, scale=scale,
                                    seed=seed, num_clients=num_clients,
                                    scale_overrides=scale_overrides)
        num_classes = next(iter(results.values())).num_classes
        target = resolve_target_accuracy(
            [r.history for r in results.values()], num_classes)
        for name, result in results.items():
            tta = result.history.time_to_accuracy(target)
            rows.append({"clients": num_clients, "algorithm": name,
                         "accuracy": round(result.final_accuracy, 4),
                         "tta_s": None if tta is None else round(tta, 1)})
    return rows


@register_artifact("fig9",
                   title="Figure 9: scalability (memory-limited CIFAR-100)")
def run(scale: str = "demo", seed: int = 0, dataset: str = "cifar100",
        algorithms: list[str] | None = None,
        client_counts: list[int] | None = None,
        seeds: list[int] | None = None,
        availability: str = "always_on",
        scale_overrides: dict | None = None) -> list[dict]:
    algorithms = algorithms or list(_FIG9_ALGORITHMS)
    counts = client_counts or client_counts_for(get_scale(scale).name)
    return aggregate_seed_rows(
        [_rows_for_seed(s, scale, dataset, algorithms, counts, availability,
                        scale_overrides)
         for s in (seeds if seeds else [seed])],
        value_keys=["accuracy", "tta_s"])


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["fig9", *sys.argv[1:]]))
