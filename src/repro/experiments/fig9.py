"""Figure 9: analysis of scalability.

Accuracy and time-to-accuracy versus client count on the memory-limited
CIFAR-100 case (paper x-axis: 100 / 200 / 500 clients; the demo scale uses
the same 1:2:5 proportions at its own size). Fed-ET appears instead of
FedProto following the paper's Figure 9 legend.
"""

from __future__ import annotations

import sys

from ..algorithms import MHFL_ALGORITHMS
from ..constraints import ConstraintSpec
from ..data.registry import load_dataset
from .reporting import format_table
from .runner import resolve_target_accuracy, run_one
from .scales import get_scale

__all__ = ["run", "main", "client_counts_for"]

_FIG9_ALGORITHMS = [n for n in MHFL_ALGORITHMS if n != "fedproto"]


def client_counts_for(scale_name: str) -> list[int]:
    """The paper's 100/200/500 sweep, shrunk proportionally off-paper."""
    base = {"smoke": 4, "demo": 10, "paper": 100}[scale_name]
    return [base, base * 2, base * 5]


def run(scale: str = "demo", seed: int = 0, dataset: str = "cifar100",
        algorithms: list[str] | None = None,
        client_counts: list[int] | None = None) -> list[dict]:
    algorithms = algorithms or list(_FIG9_ALGORITHMS)
    scale_obj = get_scale(scale)
    counts = client_counts or client_counts_for(scale_obj.name)
    spec = ConstraintSpec(constraints=("memory",))
    rows = []
    for num_clients in counts:
        histories = []
        results = {}
        for name in algorithms:
            result = run_one(name, dataset, spec, scale=scale, seed=seed,
                             num_clients=num_clients)
            results[name] = result
            histories.append(result.history)
        ds = load_dataset(dataset, seed=seed, **scale_obj.kwargs_for(dataset))
        target = resolve_target_accuracy(histories, ds.num_classes)
        for name, result in results.items():
            tta = result.history.time_to_accuracy(target)
            rows.append({"clients": num_clients, "algorithm": name,
                         "accuracy": round(result.final_accuracy, 4),
                         "tta_s": None if tta is None else round(tta, 1)})
    return rows


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "demo"
    print(format_table(run(scale=scale),
                       title="Figure 9: scalability (memory-limited CIFAR-100)"))


if __name__ == "__main__":
    main()
