"""Telemetry report: profile one benchmark cell end to end.

Runs a single :class:`~repro.experiments.spec.RunSpec` (default: the
fig4 SHeteroFL/CIFAR-100 computation-limited cell at smoke scale) under a
telemetry session and renders the collected observations — cache
statistics, executor/aggregation counters, span timings, per-round
simulated-vs-wall clock — as the artifact's rows.  Telemetry is
observation-only, so the profiled run's History is byte-identical to an
unprofiled one; this artifact only changes what gets *reported*.

For whole-figure profiles (every cell of fig4, sweeps, seed lists) use the
CLI verb instead: ``python -m repro profile <artifact> [scale]``, which
additionally writes a Perfetto-loadable Chrome trace.
"""

from __future__ import annotations

from ..constraints import ConstraintSpec
from ..telemetry.logs import get_logger
from ..telemetry.report import report_rows
from ..telemetry.runtime import telemetry_session
from .registry import register_artifact
from .runner import DEFAULT, execute_spec
from .spec import RunSpec

__all__ = ["run"]

_log = get_logger("telemetry_report")


@register_artifact("telemetry_report",
                   title="Runtime telemetry report for one benchmark cell")
def run(scale: str = "smoke", seed: int = 0, dataset: str = "cifar100",
        algorithm: str = "sheterofl", availability: str = "always_on",
        scale_overrides: dict | None = None) -> list[dict]:
    spec = RunSpec(algorithm=algorithm, dataset=dataset,
                   constraints=ConstraintSpec(constraints=("computation",),
                                              availability=availability),
                   scale=scale, seed=seed,
                   scale_overrides=dict(scale_overrides or {}))
    meta = {"artifact": "telemetry_report", "scale": scale}
    with telemetry_session(meta=meta) as session:
        result = execute_spec(spec, cache=DEFAULT)
        if result.from_cache:
            # A cache hit observes nothing but the lookup; re-execute
            # uncached so the report has real execution timings.  The
            # histories are identical either way (telemetry is
            # observation-only and the cache is content-addressed).
            _log.info("cell %s was cache-served; re-executing uncached "
                      "for timings", spec.label)
            execute_spec(spec, cache=None)
    return report_rows(session)


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["run", "telemetry_report", *sys.argv[1:]]))
