"""Rendering and serialising experiment outputs.

No plotting dependency is available offline, so every figure is regenerated
as the table of series the plot would show (algorithm x metric grids); the
radar chart of Figure 1 renders as a normalised per-axis table.  Beyond the
aligned text tables, rows also serialise to JSON and CSV so every artifact
is machine-readable (``python -m repro run <artifact> --out json|csv``).

Multi-seed cells carry companion ``<column>_std`` keys; the text renderer
collapses them into ``mean ± std`` cells, while the JSON/CSV writers keep
mean and std as separate numeric fields.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Sequence

from ..metrics.summary import mean_std

__all__ = ["format_table", "format_radar", "rows_to_json", "rows_to_csv",
           "write_rows", "aggregate_seed_rows"]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _columns_of(rows: Sequence[dict]) -> list[str]:
    """Union of row keys in first-seen order."""
    columns: list[str] = []
    seen = set()
    for row in rows:
        for key in row:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    return columns


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned text table.

    Columns with a ``<name>_std`` companion render as ``mean ± std`` in the
    base column (the std column is dropped from the grid); single-seed rows
    — no ``_std`` keys — render exactly as before.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = _columns_of(rows)
    has_key = {key for row in rows for key in row}
    display = [col for col in columns
               if not (col.endswith("_std") and col[:-len("_std")] in columns)]

    def cell(row: dict, col: str) -> str:
        value = row.get(col)
        std = row.get(col + "_std") if col + "_std" in has_key else None
        if std is not None and value is not None:
            return f"{_fmt(value)} ± {_fmt(std)}"
        return _fmt(value)

    cells = [[cell(row, col) for col in display] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells))
              for i, col in enumerate(display)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(display, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def format_radar(rows: Sequence[dict], axes: Sequence[str],
                 name_key: str = "algorithm",
                 higher_better: dict[str, bool] | None = None,
                 title: str | None = None) -> str:
    """Figure-1-style radar chart as a normalised [0, 1] score table.

    Each axis is min-max normalised over the rows; axes where lower is
    better (time, variance) are inverted so 1.0 is always "best".
    """
    higher_better = higher_better or {}
    scores = []
    for axis in axes:
        values = [row.get(axis) for row in rows]
        numeric = [v for v in values if v is not None]
        lo, hi = (min(numeric), max(numeric)) if numeric else (0.0, 1.0)
        span = (hi - lo) or 1.0
        axis_scores = []
        for value in values:
            if value is None:
                axis_scores.append(0.0)
                continue
            score = (value - lo) / span
            if not higher_better.get(axis, True):
                score = 1.0 - score
            axis_scores.append(score)
        scores.append(axis_scores)
    out_rows = []
    for i, row in enumerate(rows):
        out = {name_key: row[name_key]}
        for j, axis in enumerate(axes):
            out[axis] = round(scores[j][i], 3)
        out_rows.append(out)
    return format_table(out_rows, [name_key] + list(axes), title=title)


# ----------------------------------------------------------------------
# Machine-readable writers
# ----------------------------------------------------------------------
def rows_to_json(rows: Sequence[dict], indent: int | None = 1) -> str:
    """Rows as a JSON array (all keys kept, stds as separate fields)."""
    return json.dumps(list(rows), indent=indent)


def rows_to_csv(rows: Sequence[dict]) -> str:
    """Rows as CSV over the union of keys; ``None`` renders empty."""
    buffer = io.StringIO()
    columns = _columns_of(rows)
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="",
                            lineterminator="\n")
    writer.writeheader()
    for row in rows:
        writer.writerow({k: ("" if v is None else v) for k, v in row.items()})
    return buffer.getvalue()


def write_rows(rows: Sequence[dict], out: str = "table",
               title: str | None = None, render: str = "table",
               **render_kwargs) -> str:
    """Serialise rows in the requested output format.

    ``out`` is one of ``table`` / ``json`` / ``csv``; the ``render`` hint
    (from the artifact registry) selects the radar renderer for Figure-1
    style artifacts when a text table is requested.
    """
    if out == "json":
        return rows_to_json(rows)
    if out == "csv":
        return rows_to_csv(rows)
    if out != "table":
        raise ValueError(f"unknown output format {out!r}; "
                         f"known: table, json, csv")
    if render == "radar":
        return format_radar(rows, title=title, **render_kwargs)
    return format_table(rows, title=title)


# ----------------------------------------------------------------------
# Multi-seed row aggregation
# ----------------------------------------------------------------------
def aggregate_seed_rows(per_seed_rows: Sequence[Sequence[dict]],
                        value_keys: Sequence[str]) -> list[dict]:
    """Collapse positionally-aligned per-seed row lists into mean±std rows.

    Each inner list must come from the same sweep loop run at a different
    seed (same length, same identity keys per position).  ``value_keys``
    become across-seed means with ``<key>_std`` companions; every other key
    is an identity key and must agree across seeds.  A single seed passes
    through unchanged.
    """
    if len(per_seed_rows) == 1:
        return list(per_seed_rows[0])
    out = []
    for cells in zip(*per_seed_rows, strict=True):
        base = dict(cells[0])
        for other in cells[1:]:
            for key in base:
                if key not in value_keys and other.get(key) != base[key]:
                    raise ValueError(
                        f"seed rows disagree on identity key {key!r}: "
                        f"{base[key]!r} != {other.get(key)!r}")
        for key in value_keys:
            mean, std = mean_std([c.get(key) for c in cells])
            base[key] = None if mean is None else round(mean, 6)
            base[f"{key}_std"] = None if std is None else round(std, 6)
        base["seeds"] = len(cells)
        out.append(base)
    return out
