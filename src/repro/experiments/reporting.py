"""Plain-text table rendering for experiment outputs.

No plotting dependency is available offline, so every figure is regenerated
as the table of series the plot would show (algorithm x metric grids); the
radar chart of Figure 1 renders as a normalised per-axis table.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_radar"]


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None,
                 title: str | None = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0])
    cells = [[_fmt(row.get(col)) for col in columns] for row in rows]
    widths = [max(len(col), *(len(line[i]) for line in cells))
              for i, col in enumerate(columns)]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for line in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def format_radar(rows: Sequence[dict], axes: Sequence[str],
                 name_key: str = "algorithm",
                 higher_better: dict[str, bool] | None = None,
                 title: str | None = None) -> str:
    """Figure-1-style radar chart as a normalised [0, 1] score table.

    Each axis is min-max normalised over the rows; axes where lower is
    better (time, variance) are inverted so 1.0 is always "best".
    """
    higher_better = higher_better or {}
    scores = []
    for axis in axes:
        values = [row.get(axis) for row in rows]
        numeric = [v for v in values if v is not None]
        lo, hi = (min(numeric), max(numeric)) if numeric else (0.0, 1.0)
        span = (hi - lo) or 1.0
        axis_scores = []
        for value in values:
            if value is None:
                axis_scores.append(0.0)
                continue
            score = (value - lo) / span
            if not higher_better.get(axis, True):
                score = 1.0 - score
            axis_scores.append(score)
        scores.append(axis_scores)
    out_rows = []
    for i, row in enumerate(rows):
        out = {name_key: row[name_key]}
        for j, axis in enumerate(axes):
            out[axis] = round(scores[j][i], 3)
        out_rows.append(out)
    return format_table(out_rows, [name_key] + list(axes), title=title)
