"""Dataset -> architecture mapping (Table II of the paper).

Width/depth heterogeneity partitions a single architecture; topology
heterogeneity draws from an architecture *family* whose base member is
listed here (the algorithm's variant space expands it to the family).
"""

from __future__ import annotations

from ..data.dataset import FederatedDataset
from ..data.synthetic_text import VOCAB_SIZE
from ..models.base import SliceableModel
from ..models.zoo import build_model

__all__ = ["base_arch_for", "build_base_model"]

#: dataset -> arch for width/depth/homogeneous algorithms (Table II).
_WIDTH_DEPTH_ARCH = {
    "cifar100": "resnet101",
    "cifar10": "mobilenet_v2",
    "agnews": "transformer",
    "stackoverflow": "albert_base",
    "harbox": "har_cnn",
    "ucihar": "har_cnn",
}

#: dataset -> family base member for topology algorithms (Table II).
_TOPOLOGY_ARCH = {
    "cifar100": "resnet18",
    "cifar10": "mobilenet_v2",
    "agnews": "transformer",        # no family: width-customised topologies
    "stackoverflow": "albert_base",
    "harbox": "har_cnn",
    "ucihar": "har_cnn",
}


def base_arch_for(dataset_name: str, level: str) -> str:
    """Architecture name for a dataset and heterogeneity level."""
    table = _TOPOLOGY_ARCH if level == "topology" else _WIDTH_DEPTH_ARCH
    try:
        return table[dataset_name]
    except KeyError:
        raise ValueError(f"no architecture mapping for dataset "
                         f"{dataset_name!r}") from None


def build_base_model(dataset: FederatedDataset, level: str,
                     seed: int = 0, scale: str = "tiny") -> SliceableModel:
    """Build the (full) base model for a dataset at a heterogeneity level."""
    arch = base_arch_for(dataset.name, level)
    kwargs: dict = {"seed": seed, "scale": scale}
    if dataset.modality == "text":
        kwargs["vocab_size"] = dataset.info.get("vocab_size", VOCAB_SIZE)
    return build_model(arch, num_classes=dataset.num_classes, **kwargs)
