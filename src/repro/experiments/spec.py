"""Declarative experiment descriptions.

A :class:`RunSpec` is the full, serialisable description of one simulated
cell: *which algorithm*, *which dataset*, *under which constraint case*,
*at which scale* (with optional field overrides), *how rounds execute*,
*how data is partitioned* and *with which seed*.  Every experiment artifact
is a sweep of RunSpecs, which buys three things:

* **addressability** — :meth:`RunSpec.content_hash` is a deterministic
  digest of the canonical JSON form, so a run can be cached, looked up and
  shared across figures (:mod:`repro.experiments.cache`);
* **reproducibility** — :meth:`to_dict`/:meth:`from_dict` round-trip
  losslessly, so the exact cell a number came from can be stored next to
  the number;
* **composability** — sweeps are plain data transformations
  (:meth:`with_seed`, :meth:`replace`), not copies of runner plumbing.

The ``tag`` field distinguishes runs whose behaviour is altered *outside*
the spec (an ablation mutating the built algorithm, a derived execution
config): callers providing such hooks must set a unique tag so the content
hash stays faithful.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace as _dc_replace
from typing import ClassVar

from ..constraints import ConstraintSpec
from ..fl.aggregation import ExecutionConfig
from .scales import ExperimentScale, SCALES, resolve_scale

__all__ = ["RunSpec", "spec_scale_fields"]

#: bump when the serialised form changes incompatibly (invalidates caches).
SPEC_VERSION = 1


def spec_scale_fields(scale: str | ExperimentScale) -> tuple[str, dict]:
    """Split a scale reference into RunSpec's ``(scale, scale_overrides)``.

    Preset names pass through; an :class:`ExperimentScale` object is stored
    as its name plus the fields that differ from the same-named preset (or
    all fields when the name is not a preset), so hand-built scales remain
    serialisable and hash stably.
    """
    if isinstance(scale, str):
        return scale, {}
    preset = SCALES.get(scale.name)
    if preset is not None:
        return scale.name, scale.overrides_from(preset)
    from dataclasses import asdict
    payload = asdict(scale)
    payload.pop("name")
    return scale.name, payload


@dataclass(frozen=True)
class RunSpec:
    """One simulated (algorithm, dataset, constraint, scale, seed) cell."""

    algorithm: str
    dataset: str
    constraints: ConstraintSpec = field(default_factory=ConstraintSpec)
    scale: str = "demo"
    #: per-field overrides applied to the named scale preset
    #: (see :meth:`repro.experiments.scales.ExperimentScale.with_overrides`).
    scale_overrides: dict = field(default_factory=dict)
    execution: ExecutionConfig | None = None
    partition_scheme: str = "auto"
    alpha: float = 0.5
    #: overrides the scale's per-dataset client count when set.
    num_clients: int | None = None
    seed: int = 0
    #: marks out-of-spec behaviour changes (ablation mutations, derived
    #: execution configs) so they cache under their own hash.
    tag: str = ""
    #: client-work parallelism for this cell (``None`` inherits the
    #: process default set by :func:`repro.experiments.runner.
    #: set_default_parallelism`).  Parallelism cannot change results — the
    #: executor determinism contract — so neither field is serialised or
    #: hashed: the same cell caches identically at any worker count.
    workers: int | None = None
    executor: str | None = None    # "auto" | "inline" | "thread" | "process"

    #: fields deliberately absent from :meth:`to_dict` and therefore from
    #: :meth:`content_hash`: execution mechanics that cannot change
    #: results.  ``repro lint``'s hash-field-coverage rule enforces that
    #: every field is either serialised or listed here, so a new field can
    #: never be hash-invisible by accident.
    HASH_EXCLUDED: ClassVar[frozenset[str]] = frozenset({"workers",
                                                         "executor"})

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolved_scale(self) -> ExperimentScale:
        return resolve_scale(self.scale, self.scale_overrides)

    def resolved_execution(self) -> ExecutionConfig | None:
        """The execution block the runner will actually use.

        Mirrors the legacy ``run_one`` behaviour: an explicit execution
        wins; otherwise a non-trivial availability scenario — or a fault
        profile, which only the event engine can inject — routes through
        the event engine so the scenario is honoured.
        """
        if self.execution is not None:
            return self.execution
        if (self.constraints.availability != "always_on"
                or self.constraints.faults):
            return self.constraints.execution_config()
        return None

    # ------------------------------------------------------------------
    # Sweep helpers
    # ------------------------------------------------------------------
    def replace(self, **changes) -> "RunSpec":
        return _dc_replace(self, **changes)

    def with_seed(self, seed: int) -> "RunSpec":
        return self.replace(seed=seed)

    # ------------------------------------------------------------------
    # Serialisation + content addressing
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`.

        ``workers``/``executor`` are deliberately absent: they are
        execution mechanics with no effect on results, so specs differing
        only in parallelism serialise, hash and cache identically
        (:meth:`from_dict` tolerates payloads that carry them anyway).
        """
        return {
            "version": SPEC_VERSION,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "constraints": self.constraints.to_dict(),
            "scale": self.scale,
            "scale_overrides": dict(self.scale_overrides),
            "execution": (None if self.execution is None
                          else self.execution.to_dict()),
            "partition_scheme": self.partition_scheme,
            "alpha": self.alpha,
            "num_clients": self.num_clients,
            "seed": self.seed,
            "tag": self.tag,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunSpec":
        payload = dict(payload)
        version = payload.pop("version", SPEC_VERSION)
        if version != SPEC_VERSION:
            raise ValueError(f"unsupported RunSpec version {version!r} "
                             f"(this build reads {SPEC_VERSION})")
        payload["constraints"] = ConstraintSpec.from_dict(
            payload.get("constraints", {}))
        execution = payload.get("execution")
        payload["execution"] = (None if execution is None
                                else ExecutionConfig.from_dict(execution))
        return cls(**payload)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "RunSpec":
        return cls.from_dict(json.loads(payload))

    def content_hash(self) -> str:
        """Deterministic digest of the canonical JSON form.

        Stable across processes and sessions: the canonical form sorts keys
        and uses compact separators, so two equal specs always share a hash
        and any field change produces a new one.  The digest function is
        shared with :class:`repro.fl.executor.ScenarioHandle`, so run-cache
        entries and pool-worker scenario caches key identically.
        """
        from ..fl.executor import spec_content_digest
        return spec_content_digest(self.to_dict())

    @property
    def label(self) -> str:
        """Short human-readable cell label (not unique — use the hash)."""
        parts = [self.algorithm, self.dataset, self.constraints.label,
                 f"{self.scale}", f"seed{self.seed}"]
        if self.tag:
            parts.append(self.tag)
        return "/".join(parts)
