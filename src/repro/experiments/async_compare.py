"""Async-execution comparison: sync vs deadline vs buffered aggregation.

The paper evaluates MHFL algorithms under resource constraints but keeps
the idealized synchronous loop; this artifact adds the systems axis.  For
each constraint case it runs the same algorithm under three execution
policies on the same constrained fleet and availability scenario:

* ``sync``     — wait for the straggler (the legacy loop's semantics);
* ``deadline`` — synchronous with a fleet-quantile round deadline plus
  over-selection: slow uploads are dropped, rounds are shorter;
* ``buffered`` — FedBuff-style semi-async buffered aggregation with
  staleness-discounted updates.

and reports time-to-accuracy on the simulated clock — the metric where
straggler handling actually shows up.  Availability defaults to seeded
random mid-round dropout so all three policies face the same unreliable
fleet; pass ``availability="markov"``/``"diurnal"`` for churn studies.
"""

from __future__ import annotations

import sys

from ..constraints import ConstraintSpec
from ..data.registry import load_dataset
from .reporting import format_table
from .runner import resolve_target_accuracy, run_one
from .scales import get_scale

__all__ = ["run", "main", "MODES", "CASES"]

MODES = ("sync", "deadline", "buffered")

CASES: list[tuple[str, ...]] = [
    ("computation",),
    ("communication",),
    ("memory",),
]

#: fleet quantile of the full round time used as the deadline (drops the
#: slowest ~20% of the fleet when they are sampled).
DEADLINE_QUANTILE = 0.8
#: extra clients dispatched per deadline round to hedge the drops.
OVER_SELECT = 0.25


def _mode_executions(spec: ConstraintSpec, algorithm, sample_ratio: float
                     ) -> dict[str, object]:
    """Execution configs for the non-sync modes, derived from the built
    scenario so the deadline binds at any simulation scale and for any
    algorithm's payload accounting."""
    deadline = algorithm.fleet_round_time_quantile(DEADLINE_QUANTILE)
    target = max(1, int(round(algorithm.num_clients * sample_ratio)))
    return {
        "deadline": spec.execution_config(
            deadline_s=deadline, over_select=OVER_SELECT),
        "buffered": spec.execution_config(
            policy="buffered", buffer_size=max(1, target // 2),
            max_concurrency=target),
    }


def run(scale: str = "demo", seed: int = 0, dataset: str = "harbox",
        algorithms: list[str] | None = None,
        cases: list[tuple[str, ...]] | None = None,
        availability: str = "dropout",
        availability_kwargs: dict | None = None) -> list[dict]:
    algorithms = algorithms or ["sheterofl", "depthfl"]
    if availability_kwargs is None:
        availability_kwargs = {"prob": 0.15} if availability == "dropout" \
            else {}
    scale_obj = get_scale(scale)
    num_classes = load_dataset(dataset, seed=seed,
                               **scale_obj.kwargs_for(dataset)).num_classes

    rows = []
    for case in (cases or CASES):
        spec = ConstraintSpec(constraints=case, availability=availability,
                              availability_kwargs=availability_kwargs)
        for name in algorithms:
            results = {"sync": run_one(name, dataset, spec, scale=scale,
                                       seed=seed,
                                       execution=spec.execution_config())}
            executions = _mode_executions(
                spec, results["sync"].scenario.algorithm,
                scale_obj.sample_ratio)
            for mode, execution in executions.items():
                results[mode] = run_one(name, dataset, spec, scale=scale,
                                        seed=seed, execution=execution)
            target = resolve_target_accuracy(
                [r.history for r in results.values()], num_classes)
            for mode in MODES:
                history = results[mode].history
                dropped = history.dropped_counts()
                tta = history.time_to_accuracy(target)
                rows.append({
                    "constraints": spec.label, "algorithm": name,
                    "mode": mode, "rounds": len(history.records),
                    "final_acc": round(history.final_accuracy, 4),
                    "target_acc": round(target, 4),
                    "tta_s": None if tta is None else round(tta, 1),
                    "total_s": round(history.total_sim_time_s, 1),
                    "dropped": sum(dropped.values()),
                    "stale": history.stale_update_count(),
                })
    return rows


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "demo"
    print(format_table(
        run(scale=scale),
        title="Async execution: sync vs deadline vs buffered "
              "(time-to-accuracy, simulated clock)"))


if __name__ == "__main__":
    main()
