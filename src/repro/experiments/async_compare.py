"""Async-execution comparison: sync vs deadline vs buffered aggregation.

The paper evaluates MHFL algorithms under resource constraints but keeps
the idealized synchronous loop; this artifact adds the systems axis.  For
each constraint case it runs the same algorithm under three execution
policies on the same constrained fleet and availability scenario:

* ``sync``     — wait for the straggler (the legacy loop's semantics);
* ``deadline`` — synchronous with a fleet-quantile round deadline plus
  over-selection: slow uploads are dropped, rounds are shorter;
* ``buffered`` — FedBuff-style semi-async buffered aggregation with
  staleness-discounted updates.

and reports time-to-accuracy on the simulated clock — the metric where
straggler handling actually shows up.  Availability defaults to seeded
random mid-round dropout so all three policies face the same unreliable
fleet; pass ``availability="markov"``/``"diurnal"`` for churn studies.
"""

from __future__ import annotations

from ..constraints import ConstraintSpec
from .registry import register_artifact
from .runner import execute_spec, resolve_target_accuracy
from .scales import resolve_scale
from .spec import RunSpec

__all__ = ["run", "MODES", "CASES"]

MODES = ("sync", "deadline", "buffered")

CASES: list[tuple[str, ...]] = [
    ("computation",),
    ("communication",),
    ("memory",),
]

#: fleet quantile of the full round time used as the deadline (drops the
#: slowest ~20% of the fleet when they are sampled).
DEADLINE_QUANTILE = 0.8
#: extra clients dispatched per deadline round to hedge the drops.
OVER_SELECT = 0.25


def _mode_factories(spec: ConstraintSpec, sample_ratio: float) -> dict:
    """``execution_factory`` per non-sync mode: the deadline and buffer
    sizes are derived from the *built* scenario, so the factory runs only
    on cache misses — a fully cached cell never rebuilds the fleet."""

    def deadline(scenario):
        value = scenario.algorithm.fleet_round_time_quantile(
            DEADLINE_QUANTILE)
        return spec.execution_config(deadline_s=value,
                                     over_select=OVER_SELECT)

    def buffered(scenario):
        target = max(1, int(round(
            scenario.algorithm.num_clients * sample_ratio)))
        return spec.execution_config(policy="buffered",
                                     buffer_size=max(1, target // 2),
                                     max_concurrency=target)

    return {"deadline": deadline, "buffered": buffered}


@register_artifact("async_compare",
                   title="Async execution: sync vs deadline vs buffered "
                         "(time-to-accuracy, simulated clock)")
def run(scale: str = "demo", seed: int = 0, dataset: str = "harbox",
        algorithms: list[str] | None = None,
        cases: list[tuple[str, ...]] | None = None,
        availability: str = "dropout",
        availability_kwargs: dict | None = None,
        scale_overrides: dict | None = None) -> list[dict]:
    algorithms = algorithms or ["sheterofl", "depthfl"]
    if availability_kwargs is None:
        availability_kwargs = {"prob": 0.15} if availability == "dropout" \
            else {}
    sample_ratio = resolve_scale(scale, scale_overrides).sample_ratio

    rows = []
    for case in (cases or CASES):
        spec = ConstraintSpec(constraints=case, availability=availability,
                              availability_kwargs=availability_kwargs)
        factories = _mode_factories(spec, sample_ratio)
        for name in algorithms:
            base = RunSpec(algorithm=name, dataset=dataset, constraints=spec,
                           scale=scale, scale_overrides=scale_overrides or {},
                           seed=seed)
            results = {"sync": execute_spec(
                base.replace(execution=spec.execution_config()))}
            #: tags pin the derivation constants so derived configs cache
            #: under their own content hash.
            results["deadline"] = execute_spec(
                base.replace(tag=f"async:deadline:q{DEADLINE_QUANTILE}"
                                 f":os{OVER_SELECT}"),
                execution_factory=factories["deadline"])
            results["buffered"] = execute_spec(
                base.replace(tag=f"async:buffered:sr{sample_ratio}"),
                execution_factory=factories["buffered"])
            num_classes = results["sync"].num_classes
            target = resolve_target_accuracy(
                [r.history for r in results.values()], num_classes)
            for mode in MODES:
                history = results[mode].history
                dropped = history.dropped_counts()
                tta = history.time_to_accuracy(target)
                rows.append({
                    "constraints": spec.label, "algorithm": name,
                    "mode": mode, "rounds": len(history.records),
                    "final_acc": round(history.final_accuracy, 4),
                    "target_acc": round(target, 4),
                    "tta_s": None if tta is None else round(tta, 1),
                    "total_s": round(history.total_sim_time_s, 1),
                    "dropped": sum(dropped.values()),
                    "stale": history.stale_update_count(),
                })
    return rows


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["async_compare", *sys.argv[1:]]))
