"""Resumable distributed sweeps: manifest + sharding over the run cache.

A sweep is nothing but a **manifest** — the expanded, content-hashed list
of :class:`~repro.experiments.spec.RunSpec` cells — plus the
content-addressed run cache.  There is deliberately no progress file:
per-cell status (``pending``/``done``) is *derived* from cache presence
(:meth:`~repro.experiments.cache.RunCache.contains`), never stored, so
status can never go stale, disagree with the artifacts, or be corrupted by
a crash.  Because every finished cell is one atomic cache entry, a
SIGKILLed sweep resumed with the same manifest is correct **by
construction**: done cells are skipped, unfinished ones re-run, and the
final cache bytes match an uninterrupted run (pinned by
``tests/test_sweep.py`` and the CI ``sweep-smoke`` job).

Multi-host sharding assigns cell ``s`` to shard
``int(s.content_hash(), 16) % N``.  Shards are pairwise disjoint and
jointly exhaustive by modular arithmetic, and the assignment is identical
across processes and hosts because the content hash is the sha256 of the
spec's canonical JSON — no per-process salt, no ``PYTHONHASHSEED``
dependence.  ``repro sweep run --shard K/N`` on N hosts sharing a cache
directory (or merging caches afterwards) covers the grid exactly once.

Three verbs, one mechanism::

    repro sweep create results/grid.manifest.json --scale demo ...
    repro sweep run    results/grid.manifest.json [--shard K/N] [--workers N]
    repro sweep status results/grid.manifest.json [--shards N]
    repro sweep resume results/grid.manifest.json   # literally `run` again

``resume`` *is* ``run`` re-invoked — there is no special resume path to
test separately, which is the point.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

from ..algorithms import MHFL_ALGORITHMS
from ..constraints import ConstraintSpec
from ..data.registry import DATASET_NAMES
from ..telemetry.logs import get_logger
from ..telemetry.report import sidecar_wall_seconds
from .cache import DEFAULT_CACHE_DIR, RunCache, atomic_write_text
from .runner import RunResult, execute_specs
from .spec import RunSpec

__all__ = ["MANIFEST_VERSION", "Shard", "shard_of", "expand_grid",
           "SweepManifest", "CellStatus", "SweepStatus", "status_rows",
           "SweepRunReport", "run_sweep"]

#: bump when the serialised manifest layout changes incompatibly.
MANIFEST_VERSION = 1

_log = get_logger("sweep")


# ----------------------------------------------------------------------
# Sharding
# ----------------------------------------------------------------------
def shard_of(spec: RunSpec, count: int) -> int:
    """The shard (0-based) owning ``spec`` in a ``count``-way partition.

    ``int(content_hash, 16) % count``: deterministic across processes and
    hosts (sha256 of the canonical spec JSON — no hash randomisation), so
    K/N shards are pairwise disjoint and jointly exhaustive for any N.
    """
    if count < 1:
        raise ValueError(f"shard count must be >= 1, got {count}")
    return int(spec.content_hash(), 16) % count


@dataclass(frozen=True)
class Shard:
    """One slice of a ``count``-way partition (``Shard()`` = everything)."""

    index: int = 0
    count: int = 1

    def __post_init__(self):
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ValueError(f"shard index must be in [0, {self.count}), "
                             f"got {self.index}")

    @classmethod
    def parse(cls, text: str) -> "Shard":
        """Parse the CLI's ``K/N`` form (e.g. ``0/4``)."""
        parts = text.split("/")
        if len(parts) != 2:
            raise ValueError(f"expected shard as K/N (e.g. 0/4), "
                             f"got {text!r}")
        try:
            index, count = int(parts[0]), int(parts[1])
        except ValueError:
            raise ValueError(f"expected integer K/N shard, "
                             f"got {text!r}") from None
        return cls(index=index, count=count)

    @property
    def label(self) -> str:
        return f"{self.index}/{self.count}"

    def owns(self, spec: RunSpec) -> bool:
        return shard_of(spec, self.count) == self.index


# ----------------------------------------------------------------------
# Grid expansion
# ----------------------------------------------------------------------
def expand_grid(algorithms: Sequence[str] | None = None,
                datasets: Sequence[str] | None = None,
                constraints: Sequence[str] = ("computation",),
                availability: str = "always_on",
                scale: str = "demo",
                seeds: Sequence[int] = (0,),
                partition_scheme: str = "auto",
                alpha: float = 0.5,
                num_clients: int | None = None,
                with_baseline: bool = True) -> list[RunSpec]:
    """Expand a (dataset x seed x algorithm) grid into unique RunSpecs.

    Mirrors :func:`~repro.experiments.runner.run_suite`'s grid — including
    the shared ``fedavg_smallest`` effectiveness baseline — so a completed
    sweep makes rendering the corresponding figure artifacts pure cache
    hits.  Duplicate cells (e.g. the baseline listed explicitly) are
    dropped order-preservingly by content hash.
    """
    names = list(algorithms) if algorithms else list(MHFL_ALGORITHMS)
    if with_baseline:
        names = list(dict.fromkeys(names + ["fedavg_smallest"]))
    data = list(datasets) if datasets else list(DATASET_NAMES)
    constraint_spec = ConstraintSpec(constraints=tuple(constraints),
                                     availability=availability)
    grid = [RunSpec(algorithm=name, dataset=dataset,
                    constraints=constraint_spec, scale=scale,
                    partition_scheme=partition_scheme, alpha=alpha,
                    num_clients=num_clients, seed=seed)
            for dataset in data for seed in seeds for name in names]
    seen: set[str] = set()
    unique: list[RunSpec] = []
    for spec in grid:
        digest = spec.content_hash()
        if digest not in seen:
            seen.add(digest)
            unique.append(spec)
    return unique


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepManifest:
    """The expanded spec list of one sweep, serialised to JSON.

    The manifest is **immutable input**, not mutable state: it records
    *which cells exist* and *which cache directory owns them*, and nothing
    else — no timestamps, no status, no worker assignments.  Everything
    dynamic is derived (status from cache presence, shards from content
    hashes), so any number of hosts can run the same manifest file
    concurrently without coordination beyond the shared/merged cache.
    """

    name: str
    specs: tuple[RunSpec, ...]
    cache_dir: str = str(DEFAULT_CACHE_DIR)

    def __post_init__(self):
        object.__setattr__(self, "specs", tuple(self.specs))
        if not self.specs:
            raise ValueError("a sweep manifest needs at least one cell")
        counts = Counter(spec.content_hash() for spec in self.specs)
        duplicates = sorted(h for h, n in counts.items() if n > 1)
        if duplicates:
            raise ValueError(f"manifest contains duplicate cells (same "
                             f"content hash): {duplicates[:3]}"
                             f"{'...' if len(duplicates) > 3 else ''}")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def cache(self) -> RunCache:
        return RunCache(self.cache_dir)

    def shard_specs(self, shard: Shard | None = None) -> list[RunSpec]:
        shard = shard if shard is not None else Shard()
        return [spec for spec in self.specs if shard.owns(spec)]

    def status(self, shard: Shard | None = None,
               cache: RunCache | None = None) -> "SweepStatus":
        """Derive the shard's per-cell status from cache presence, now."""
        shard = shard if shard is not None else Shard()
        cache = self.cache() if cache is None else cache
        cells = tuple(CellStatus(spec=spec, done=cache.contains(spec))
                      for spec in self.shard_specs(shard))
        return SweepStatus(manifest_name=self.name, shard=shard,
                           cells=cells)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"manifest_version": MANIFEST_VERSION,
                "name": self.name,
                "cache_dir": str(self.cache_dir),
                "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: dict) -> "SweepManifest":
        version = payload.get("manifest_version", MANIFEST_VERSION)
        if version != MANIFEST_VERSION:
            raise ValueError(f"unsupported manifest version {version!r} "
                             f"(this build reads {MANIFEST_VERSION})")
        specs = tuple(RunSpec.from_dict(entry)
                      for entry in payload.get("specs", []))
        return cls(name=payload.get("name", "sweep"), specs=specs,
                   cache_dir=payload.get("cache_dir",
                                         str(DEFAULT_CACHE_DIR)))

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)

    def save(self, path: str | Path) -> Path:
        """Write the manifest atomically; returns the path."""
        path = Path(path)
        atomic_write_text(path.parent, path, self.to_json())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "SweepManifest":
        path = Path(path)
        try:
            payload = json.loads(path.read_text())
        except OSError as error:
            raise ValueError(f"cannot read manifest {path}: "
                             f"{error}") from error
        except ValueError as error:
            raise ValueError(f"manifest {path} is not valid JSON: "
                             f"{error}") from error
        return cls.from_dict(payload)


# ----------------------------------------------------------------------
# Status (always derived, never stored)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CellStatus:
    """One cell's derived state: done iff its cache entry exists."""

    spec: RunSpec
    done: bool


@dataclass(frozen=True)
class SweepStatus:
    """Snapshot of one shard's progress, derived from cache presence.

    Recomputed on demand — deleting a cache entry flips exactly that cell
    back to pending on the next derivation; nothing needs repair.
    """

    manifest_name: str
    shard: Shard
    cells: tuple[CellStatus, ...]

    @property
    def total(self) -> int:
        return len(self.cells)

    @property
    def done_count(self) -> int:
        return sum(1 for cell in self.cells if cell.done)

    @property
    def pending_count(self) -> int:
        return self.total - self.done_count

    def done_specs(self) -> list[RunSpec]:
        return [cell.spec for cell in self.cells if cell.done]

    def pending_specs(self) -> list[RunSpec]:
        return [cell.spec for cell in self.cells if not cell.done]

    def as_mapping(self) -> dict[str, bool]:
        """``{spec.content_hash(): done}`` — the exact contract the status
        derives from: equal, cell for cell, to
        ``{spec.content_hash(): cache.contains(spec)}``.  (Keyed by the
        content hash because specs hold dict fields and are unhashable;
        within one manifest the hash <-> spec mapping is bijective —
        duplicates are rejected at construction.)"""
        return {cell.spec.content_hash(): cell.done for cell in self.cells}


def _cell_wall_seconds(cache: RunCache, spec: RunSpec) -> float | None:
    """Wall-clock seconds the cell's telemetry sidecar recorded, if any.

    Sidecars are best-effort observability: cells populated by a
    telemetry-less invocation (or killed between the entry and sidecar
    writes) simply report no timing, never an error.
    """
    path = cache.telemetry_path_for(spec)
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError):
        return None
    return sidecar_wall_seconds(payload)


def _group_row(section: str, key: str, cells: Sequence[CellStatus],
               cache: RunCache) -> dict:
    done = [cell for cell in cells if cell.done]
    wall = None
    for cell in done:
        seconds = _cell_wall_seconds(cache, cell.spec)
        if seconds is not None:
            wall = seconds if wall is None else wall + seconds
    row = {
        "section": section,
        "key": key,
        "cells": len(cells),
        "done": len(done),
        "pending": len(cells) - len(done),
        "done_pct": round(100.0 * len(done) / len(cells), 1) if cells
        else 100.0,
        "wall_s": round(wall, 3) if wall is not None else None,
        "cells_per_h": (round(len(done) / (wall / 3600.0), 1)
                        if wall else None),
    }
    return row


def status_rows(manifest: SweepManifest, shard: Shard | None = None, *,
                cache: RunCache | None = None,
                shards: int | None = None) -> list[dict]:
    """Progress rows for ``repro sweep status``.

    One row per algorithm within the selected shard, one row per shard of
    an N-way partition when ``shards`` asks for the multi-host view, and a
    total row.  Throughput (``wall_s``, ``cells_per_h``) comes from the
    ``<hash>.telemetry.json`` sidecars ``execute_spec`` serialises next to
    each cache entry; cells without a sidecar count toward progress but
    contribute no wall-clock.
    """
    shard = shard if shard is not None else Shard()
    cache = manifest.cache() if cache is None else cache
    status = manifest.status(shard, cache=cache)
    groups: dict[str, list[CellStatus]] = {}
    for cell in status.cells:
        groups.setdefault(cell.spec.algorithm, []).append(cell)
    rows = [_group_row("algorithm", name, groups[name], cache)
            for name in sorted(groups)]
    if shards is not None and shards > 1:
        for index in range(shards):
            sub = manifest.status(Shard(index, shards), cache=cache)
            rows.append(_group_row("shard", sub.shard.label, sub.cells,
                                   cache))
    rows.append(_group_row("total", status.shard.label, status.cells,
                           cache))
    return rows


# ----------------------------------------------------------------------
# Running (and resuming, which is the same thing)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepRunReport:
    """What one ``run_sweep`` invocation did to its shard."""

    manifest: str
    shard: str
    #: cells the shard owns.
    total: int
    #: cells already present in the cache before this invocation.
    already_done: int
    #: cells this invocation trained (cache misses it filled).
    executed: int
    #: pending cells that turned out cached at execution time (another
    #: host/process landed them between the status probe and the run).
    cache_served: int = 0

    @property
    def done(self) -> int:
        return self.already_done + self.executed + self.cache_served


def run_sweep(manifest: SweepManifest, shard: Shard | None = None, *,
              cache: RunCache | None = None, workers: int | None = None,
              executor: str | None = None,
              on_cell: Callable[[RunSpec, RunResult], None] | None = None,
              ) -> SweepRunReport:
    """Run (or resume — same call) the shard's pending cells.

    Pending cells are derived from cache presence, then fanned out through
    :func:`~repro.experiments.runner.execute_specs` with bounded
    concurrency (``workers`` processes; each cell runs inline internally).
    Every finished cell is one atomic cache write, so killing this at any
    point loses at most the in-flight cells — re-invoking is the resume
    path, not a separate mechanism.  Progress is logged per cell through
    the ``repro.sweep`` logger (``--log-json`` makes it scrapeable).
    """
    shard = shard if shard is not None else Shard()
    cache = manifest.cache() if cache is None else cache
    specs = manifest.shard_specs(shard)
    pending = [spec for spec in specs if not cache.contains(spec)]
    already_done = len(specs) - len(pending)
    _log.info(
        "sweep %s shard %s: %d cells, %d done, %d pending",
        manifest.name, shard.label, len(specs), already_done, len(pending),
        extra={"sweep": manifest.name, "shard": shard.label,
               "total": len(specs), "sweep_done": already_done,
               "sweep_pending": len(pending)})
    progress = {"completed": 0, "served": 0}

    def _note(spec: RunSpec, result: RunResult) -> None:
        progress["completed"] += 1
        if result.from_cache:
            progress["served"] += 1
        _log.info(
            "cell %d/%d done: %s%s",
            already_done + progress["completed"], len(specs), spec.label,
            " (cache)" if result.from_cache else "",
            extra={"sweep": manifest.name, "shard": shard.label,
                   "spec": spec.content_hash(),
                   "from_cache": result.from_cache,
                   "sweep_done": already_done + progress["completed"],
                   "total": len(specs)})
        if on_cell is not None:
            on_cell(spec, result)

    execute_specs(pending, cache=cache, workers=workers,
                  executor=executor, on_result=_note)
    return SweepRunReport(manifest=manifest.name, shard=shard.label,
                          total=len(specs), already_done=already_done,
                          executed=len(pending) - progress["served"],
                          cache_served=progress["served"])
