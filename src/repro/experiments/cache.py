"""Content-addressed run cache.

Every executed :class:`~repro.experiments.spec.RunSpec` can persist its
:class:`~repro.fl.history.History` under ``<cache_dir>/<content_hash>.json``.
Re-running the same cell — the shared ``fedavg_smallest`` baseline across
figures, a re-rendered table, a second seed sweep — then costs a JSON read
instead of a simulation.  Entries store the full spec next to the history,
so a hit is verified against the spec (not just the hash) and every cached
artifact is self-describing.

The cache is **off by default for the library API** (importing repro and
calling :func:`~repro.experiments.runner.run_one` writes nothing to disk);
the CLI turns it on via :func:`set_default_cache`, and callers can pass an
explicit :class:`RunCache` (or ``None``) to any runner entry point.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING

from ..fl.serialization import history_from_dict, history_to_dict
from ..telemetry import runtime as telemetry
from ..telemetry.logs import get_logger

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from ..fl.history import History
    from .spec import RunSpec

_log = get_logger("cache")

__all__ = ["RunCache", "CachedRun", "DEFAULT_CACHE_DIR",
           "default_cache", "set_default_cache", "atomic_write_text"]

#: layout version of the on-disk entries; mismatches read as misses.
CACHE_VERSION = 1

#: where the CLI keeps run artifacts unless ``--cache-dir`` overrides it.
DEFAULT_CACHE_DIR = Path("results") / "cache"


def atomic_write_text(directory: Path, path: Path, text: str) -> None:
    """Publish ``text`` at ``path`` via a unique temp file + atomic rename.

    Concurrency-safe for parallel sweep cells sharing one cache directory:
    bytes never interleave, readers never see a half-written file, and
    same-content racers each publish a complete file (last rename wins).
    """
    directory.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=directory,
                                    prefix=f".{path.stem}-",
                                    suffix=".tmp")
    try:
        # mkstemp creates 0600; published entries should get the usual
        # umask-governed mode so shared cache dirs stay shareable.
        umask = os.umask(0)
        os.umask(umask)
        os.fchmod(fd, 0o666 & ~umask)
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        with contextlib.suppress(OSError):
            os.unlink(tmp_name)
        raise


class CachedRun:
    """One deserialised cache entry."""

    __slots__ = ("history", "num_classes", "level_distribution")

    def __init__(self, history: "History", num_classes: int | None,
                 level_distribution: dict | None = None):
        self.history = history
        self.num_classes = num_classes
        self.level_distribution = dict(level_distribution or {})


class RunCache:
    """Content-addressed store of finished runs.

    ``hits``/``misses`` count lookups in this process; the CLI reports them
    so "the second invocation trained nothing" is observable from outside.
    """

    def __init__(self, directory: str | Path = DEFAULT_CACHE_DIR):
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def path_for(self, spec: "RunSpec") -> Path:
        return self.directory / f"{spec.content_hash()}.json"

    def telemetry_path_for(self, spec: "RunSpec") -> Path:
        """Where a run's telemetry serialises, next to its cache entry."""
        return self.directory / f"{spec.content_hash()}.telemetry.json"

    def contains(self, spec: "RunSpec") -> bool:
        """Whether a valid entry for ``spec`` exists, without counting it.

        This is the status probe behind sweep orchestration: derived
        ``done``/``pending`` state must be able to scan a manifest without
        skewing the ``hits``/``misses`` counters that make "the second run
        trained nothing" observable.  Validity matches :meth:`get` exactly
        — unreadable, version-skewed, or hash-colliding entries read as
        absent.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return False
        return (payload.get("cache_version") == CACHE_VERSION
                and payload.get("spec") == spec.to_dict())

    def get(self, spec: "RunSpec") -> CachedRun | None:
        """The cached run for ``spec``, or ``None`` on a miss.

        Unreadable, version-skewed, or hash-colliding entries (stored spec
        != requested spec) all read as misses rather than errors.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            telemetry.inc("cache.misses")
            return None
        if (payload.get("cache_version") != CACHE_VERSION
                or payload.get("spec") != spec.to_dict()):
            self.misses += 1
            telemetry.inc("cache.misses")
            return None
        self.hits += 1
        telemetry.inc("cache.hits")
        _log.debug("cache hit %s", path.name)
        return CachedRun(history=history_from_dict(payload["history"]),
                         num_classes=payload.get("num_classes"),
                         level_distribution=payload.get("level_distribution"))

    def put(self, spec: "RunSpec", history: "History",
            num_classes: int | None = None,
            level_distribution: dict | None = None) -> Path:
        """Persist a finished run; returns the entry path.

        Concurrency-safe via :func:`atomic_write_text`: parallel sweep
        cells (multiple processes writing the shared cache) can never
        interleave bytes or expose a half-written entry; same-cell racers
        each publish a complete, identical file and the last rename wins.
        """
        path = self.path_for(spec)
        payload = {
            "cache_version": CACHE_VERSION,
            "spec": spec.to_dict(),
            "num_classes": num_classes,
            "level_distribution": dict(level_distribution or {}),
            "history": history_to_dict(history),
        }
        # Serialise before touching the filesystem: an unserialisable
        # payload then raises without ever creating a temp file.
        text = json.dumps(payload, indent=1)
        atomic_write_text(self.directory, path, text)
        telemetry.inc("cache.puts")
        return path

    def put_telemetry(self, spec: "RunSpec", payload: dict) -> Path:
        """Persist a run's telemetry next to its cache entry.

        ``payload`` is a :meth:`~repro.telemetry.runtime.RunTelemetry.
        to_dict` dict; it lands at ``<content_hash>.telemetry.json`` with
        the same atomic-rename discipline as run entries.  Telemetry is
        wall-clock-dependent by nature, so unlike run entries a newer
        profile of the same cell simply replaces the older one.
        """
        path = self.telemetry_path_for(spec)
        text = json.dumps({"cache_version": CACHE_VERSION,
                           "spec": spec.to_dict(),
                           "telemetry": payload}, indent=1)
        atomic_write_text(self.directory, path, text)
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RunCache({str(self.directory)!r}, hits={self.hits}, "
                f"misses={self.misses})")


#: process-wide default consulted by the runner when callers don't pass an
#: explicit cache.  ``None`` = caching disabled (the library default).
_DEFAULT_CACHE: RunCache | None = None


def default_cache() -> RunCache | None:
    return _DEFAULT_CACHE


def set_default_cache(cache: RunCache | None) -> RunCache | None:
    """Install (or clear, with ``None``) the process-wide default cache."""
    global _DEFAULT_CACHE
    previous = _DEFAULT_CACHE
    _DEFAULT_CACHE = cache
    return previous
