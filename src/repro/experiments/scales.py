"""Experiment scale presets.

The paper runs 1000 rounds over 30–500 clients on GPU testbeds; this
reproduction runs the same code path at configurable scale:

* ``smoke`` — seconds; used by the test suite and pytest benchmarks;
* ``demo``  — minutes per (algorithm, dataset); used by the examples and the
  recorded EXPERIMENTS.md results;
* ``paper`` — the paper's client counts, sampling ratio and round budget
  (CPU-days; provided for completeness).

``max_batches`` caps the *computed* minibatches per client round; the
simulated clock still charges full nominal local training, so time-to-
accuracy keeps paper-like semantics at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = ["ExperimentScale", "SCALES", "get_scale", "resolve_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    name: str
    num_clients: dict[str, int]
    dataset_kwargs: dict[str, dict]
    num_rounds: int
    sample_ratio: float
    eval_every: int
    batch_size: int
    local_epochs: int
    max_batches: int | None
    eval_max_samples: int

    def clients_for(self, dataset: str) -> int:
        return self.num_clients[dataset]

    def kwargs_for(self, dataset: str) -> dict:
        return dict(self.dataset_kwargs.get(dataset, {}))

    def with_overrides(self, **overrides) -> "ExperimentScale":
        """Copy of this scale with selected fields replaced.

        Unknown field names raise ``ValueError`` so declarative specs fail
        loudly instead of silently ignoring a typo'd override.
        """
        if not overrides:
            return self
        known = {f.name for f in fields(self)}
        unknown = set(overrides) - known
        if unknown:
            raise ValueError(f"unknown scale override(s) {sorted(unknown)}; "
                             f"known fields: {sorted(known - {'name'})}")
        return replace(self, **overrides)

    def overrides_from(self, base: "ExperimentScale") -> dict:
        """Fields of this scale that differ from ``base`` (name excluded)."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name != "name"
                and getattr(self, f.name) != getattr(base, f.name)}


SCALES: dict[str, ExperimentScale] = {
    "smoke": ExperimentScale(
        name="smoke",
        num_clients={"cifar10": 8, "cifar100": 8, "agnews": 8,
                     "stackoverflow": 8, "harbox": 8, "ucihar": 8},
        dataset_kwargs={
            "cifar10": {"train_per_class": 16, "test_per_class": 6},
            "cifar100": {"train_per_class": 2, "test_per_class": 1},
            "agnews": {"train_size": 160, "test_size": 60},
            "stackoverflow": {"num_users": 8, "samples_per_user": 10,
                              "test_size": 60},
            "harbox": {"num_users": 8, "samples_per_user": 10, "test_size": 60},
            "ucihar": {"num_users": 8, "samples_per_user": 10, "test_size": 60},
        },
        num_rounds=4, sample_ratio=0.3, eval_every=2,
        batch_size=8, local_epochs=1, max_batches=2, eval_max_samples=60),
    "demo": ExperimentScale(
        name="demo",
        num_clients={"cifar10": 20, "cifar100": 20, "agnews": 16,
                     "stackoverflow": 30, "harbox": 30, "ucihar": 24},
        dataset_kwargs={
            "cifar10": {"train_per_class": 100, "test_per_class": 30},
            "cifar100": {"train_per_class": 12, "test_per_class": 3},
            "agnews": {"train_size": 1200, "test_size": 300},
            "stackoverflow": {"num_users": 30, "samples_per_user": 15,
                              "test_size": 300},
            "harbox": {"num_users": 30, "samples_per_user": 15,
                       "test_size": 300},
            "ucihar": {"num_users": 24, "samples_per_user": 18,
                       "test_size": 300},
        },
        num_rounds=40, sample_ratio=0.2, eval_every=5,
        batch_size=8, local_epochs=1, max_batches=4, eval_max_samples=300),
    "paper": ExperimentScale(
        name="paper",
        # Section V: 100 / 100 / 50 / 500 / 100 / 30 clients, 10% sampling,
        # 1000 rounds.
        num_clients={"cifar10": 100, "cifar100": 100, "agnews": 50,
                     "stackoverflow": 500, "harbox": 100, "ucihar": 30},
        dataset_kwargs={
            "cifar10": {"train_per_class": 500, "test_per_class": 100},
            "cifar100": {"train_per_class": 50, "test_per_class": 10},
            "agnews": {"train_size": 8000, "test_size": 2000},
            "stackoverflow": {"num_users": 500, "samples_per_user": 20,
                              "test_size": 2000},
            "harbox": {"num_users": 100, "samples_per_user": 30,
                       "test_size": 1500},
            "ucihar": {"num_users": 30, "samples_per_user": 100,
                       "test_size": 1500},
        },
        num_rounds=1000, sample_ratio=0.1, eval_every=20,
        batch_size=16, local_epochs=1, max_batches=None,
        eval_max_samples=2000),
}


def get_scale(name: str) -> ExperimentScale:
    try:
        return SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; known: {sorted(SCALES)}") from None


def resolve_scale(scale: str | ExperimentScale,
                  overrides: dict | None = None) -> ExperimentScale:
    """Resolve a scale reference plus field overrides to a concrete scale.

    ``scale`` is either a preset name or an already-built
    :class:`ExperimentScale`; an unknown name is accepted when ``overrides``
    supplies every field (the serialised form of a fully custom scale).
    """
    if isinstance(scale, ExperimentScale):
        base = scale
    elif scale in SCALES:
        base = SCALES[scale]
    elif overrides:
        return ExperimentScale(name=scale, **overrides)
    else:
        raise ValueError(f"unknown scale {scale!r}; known: {sorted(SCALES)}")
    return base.with_overrides(**(overrides or {}))
