"""Figure 1: the evaluation-track radar view.

The paper's Figure 1 shows per-algorithm radar charts over the four metrics
(GACC / Time / Stability / Effectiveness); this module renders the same
normalised per-axis scores as a table from a real constrained run (the
paper's own radar values are "just for demonstration").
"""

from __future__ import annotations

from .fig4 import run as run_fig4
from .registry import register_artifact

__all__ = ["run"]

_AXES = ["global_acc", "tta_s", "stability_var", "effectiveness"]
_HIGHER_BETTER = {"global_acc": True, "tta_s": False,
                  "stability_var": False, "effectiveness": True}


@register_artifact("fig1",
                   title="Figure 1: radar scores "
                         "(computation-limited, 1.0 = best on axis)",
                   render="radar", axes=_AXES,
                   higher_better=_HIGHER_BETTER)
def run(scale: str = "demo", seed: int = 0,
        dataset: str = "harbox",
        algorithms: list[str] | None = None,
        seeds: list[int] | None = None,
        scale_overrides: dict | None = None) -> list[dict]:
    return run_fig4(scale=scale, seed=seed, datasets=[dataset],
                    algorithms=algorithms, seeds=seeds,
                    scale_overrides=scale_overrides)


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["fig1", *sys.argv[1:]]))
