"""Figure 1: the evaluation-track radar view.

The paper's Figure 1 shows per-algorithm radar charts over the four metrics
(GACC / Time / Stability / Effectiveness); this module renders the same
normalised per-axis scores as a table from a real constrained run (the
paper's own radar values are "just for demonstration").
"""

from __future__ import annotations

import sys

from .fig4 import run as run_fig4
from .reporting import format_radar

__all__ = ["run", "main"]

_AXES = ["global_acc", "tta_s", "stability_var", "effectiveness"]
_HIGHER_BETTER = {"global_acc": True, "tta_s": False,
                  "stability_var": False, "effectiveness": True}


def run(scale: str = "demo", seed: int = 0,
        dataset: str = "harbox") -> list[dict]:
    return run_fig4(scale=scale, seed=seed, datasets=[dataset])


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "demo"
    rows = run(scale=scale)
    print(format_radar(rows, _AXES, higher_better=_HIGHER_BETTER,
                       title="Figure 1: radar scores "
                             "(computation-limited, 1.0 = best on axis)"))


if __name__ == "__main__":
    main()
