"""Figure 4: results on computation-limited MHFL.

Every algorithm x every data task under the computation constraint (IMA
compute capabilities, equal-training-time assignment): global accuracy,
time-to-accuracy, stability and effectiveness.
"""

from __future__ import annotations

from .constraint_figs import run_constraint_figure
from .registry import register_artifact

__all__ = ["run"]


@register_artifact("fig4", title="Figure 4: computation-limited MHFL")
def run(scale: str = "demo", seed: int = 0,
        datasets: list[str] | None = None,
        algorithms: list[str] | None = None,
        seeds: list[int] | None = None,
        availability: str = "always_on",
        scale_overrides: dict | None = None) -> list[dict]:
    return run_constraint_figure(("computation",), datasets=datasets,
                                 algorithms=algorithms, scale=scale,
                                 seed=seed, seeds=seeds,
                                 availability=availability,
                                 scale_overrides=scale_overrides)


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["fig4", *sys.argv[1:]]))
