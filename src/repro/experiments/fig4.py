"""Figure 4: results on computation-limited MHFL.

Every algorithm x every data task under the computation constraint (IMA
compute capabilities, equal-training-time assignment): global accuracy,
time-to-accuracy, stability and effectiveness.
"""

from __future__ import annotations

import sys

from .constraint_figs import run_constraint_figure
from .reporting import format_table

__all__ = ["run", "main"]


def run(scale: str = "demo", seed: int = 0,
        datasets: list[str] | None = None,
        algorithms: list[str] | None = None) -> list[dict]:
    return run_constraint_figure(("computation",), datasets=datasets,
                                 algorithms=algorithms, scale=scale,
                                 seed=seed)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "demo"
    print(format_table(run(scale=scale),
                       title="Figure 4: computation-limited MHFL"))


if __name__ == "__main__":
    main()
