"""Experiment runner: one constrained run, or a suite with shared baseline.

The per-figure modules compose these two entry points; everything
scale-dependent comes from :mod:`repro.experiments.scales`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..algorithms import get_algorithm
from ..constraints import BuiltScenario, ConstraintSpec, build_scenario
from ..data.registry import load_dataset
from ..fl.aggregation import ExecutionConfig
from ..fl.client import LocalTrainConfig
from ..fl.history import History
from ..fl.simulation import SimulationConfig, run_simulation
from ..metrics import MetricSummary, summarize
from .mapping import build_base_model
from .scales import ExperimentScale, get_scale

__all__ = ["RunResult", "run_one", "run_suite", "resolve_target_accuracy"]


@dataclass
class RunResult:
    """One algorithm's constrained run."""

    history: History
    scenario: BuiltScenario

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy


def _train_config(scale: ExperimentScale) -> LocalTrainConfig:
    return LocalTrainConfig(batch_size=scale.batch_size,
                            local_epochs=scale.local_epochs,
                            max_batches=scale.max_batches)


def run_one(algorithm: str, dataset_name: str, spec: ConstraintSpec,
            scale: str | ExperimentScale = "demo", seed: int = 0,
            partition_scheme: str = "auto", alpha: float = 0.5,
            num_clients: int | None = None,
            execution: ExecutionConfig | None = None) -> RunResult:
    """Run one algorithm on one dataset under one constraint case.

    ``execution`` selects the event-driven runtime (aggregation policy +
    availability model); when omitted, a spec with a non-trivial
    availability scenario still routes through the event engine so the
    scenario is honoured, and an always-on spec runs the legacy loop.
    """
    scale = get_scale(scale) if isinstance(scale, str) else scale
    dataset = load_dataset(dataset_name, seed=seed,
                           **scale.kwargs_for(dataset_name))
    level = get_algorithm(algorithm).level
    model_level = "width" if level == "homogeneous" else level
    base_model = build_base_model(dataset, model_level, seed=seed)
    clients = num_clients or scale.clients_for(dataset_name)

    scenario = build_scenario(
        algorithm, base_model, dataset, clients, spec,
        train_config=_train_config(scale),
        partition_scheme=partition_scheme, alpha=alpha, seed=seed,
        eval_max_samples=scale.eval_max_samples)
    if execution is None and spec.availability != "always_on":
        execution = spec.execution_config()
    sim = SimulationConfig(num_rounds=scale.num_rounds,
                           sample_ratio=scale.sample_ratio,
                           eval_every=scale.eval_every, seed=seed,
                           execution=execution)
    history = run_simulation(scenario.algorithm, sim)
    return RunResult(history=history, scenario=scenario)


def resolve_target_accuracy(histories: list[History],
                            num_classes: int) -> float:
    """Preset accuracy for the time-to-accuracy metric.

    The paper fixes a per-task target; scale-independently we use the
    midpoint between chance and the best final accuracy achieved across the
    compared algorithms — every reasonable method crosses it, and faster
    methods cross it sooner.
    """
    chance = 1.0 / num_classes
    best = max(h.final_accuracy for h in histories)
    return chance + 0.5 * max(best - chance, 0.02)


def run_suite(algorithms: list[str], dataset_name: str, spec: ConstraintSpec,
              scale: str | ExperimentScale = "demo", seed: int = 0,
              partition_scheme: str = "auto", alpha: float = 0.5,
              num_clients: int | None = None,
              with_baseline: bool = True) -> list[MetricSummary]:
    """Run a set of algorithms plus the effectiveness baseline.

    Returns one :class:`MetricSummary` per algorithm, all using the same
    adaptive time-to-accuracy target and the same FedAvg-smallest baseline.
    """
    scale = get_scale(scale) if isinstance(scale, str) else scale
    results = {name: run_one(name, dataset_name, spec, scale, seed,
                             partition_scheme, alpha, num_clients)
               for name in algorithms}
    baseline_history = None
    if with_baseline:
        baseline_history = run_one(
            "fedavg_smallest", dataset_name, spec, scale, seed,
            partition_scheme, alpha, num_clients).history

    dataset = load_dataset(dataset_name, seed=seed,
                           **scale.kwargs_for(dataset_name))
    target = resolve_target_accuracy(
        [r.history for r in results.values()], dataset.num_classes)
    return [summarize(result.history, target, baseline_history)
            for result in results.values()]
