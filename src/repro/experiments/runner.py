"""Experiment runner: declarative RunSpec execution with a run cache.

:func:`execute_spec` is the single execution path — it resolves a
:class:`~repro.experiments.spec.RunSpec` into a built scenario, runs the
simulation, and (when a :class:`~repro.experiments.cache.RunCache` is
active) serves repeated cells from disk instead of recomputing them.
:func:`run_one` and :func:`run_suite` keep their historical signatures as
thin wrappers; :func:`run_suite` additionally sweeps seeds
(``seeds=[0, 1, 2]``) into mean±std :class:`~repro.metrics.MetricSummary`
rows.  Everything scale-dependent comes from
:mod:`repro.experiments.scales`.

Parallelism enters at two granularities, both with byte-identical results:

* **within a cell** — ``RunSpec.workers``/``executor`` (or the process
  default from :func:`set_default_parallelism`, which the CLI's
  ``--workers`` sets) hand client training to a thread/process pool via
  :mod:`repro.fl.executor`;
* **across cells** — :func:`execute_specs` fans independent sweep cells
  (``run_suite`` grids, multi-seed sweeps) out over a process pool; each
  worker writes the shared run cache through atomic renames, and cells
  run inline internally so the machine is never oversubscribed.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace as _dc_replace
from pathlib import Path
from typing import Callable, Sequence

from ..algorithms import get_algorithm
from ..constraints import BuiltScenario, ConstraintSpec, build_scenario
from ..data.dataset import FederatedDataset
from ..data.registry import load_dataset
from ..fl.aggregation import ExecutionConfig
from ..fl.checkpoint import CheckpointConfig
from ..fl.client import LocalTrainConfig
from ..fl.history import History
from ..fl.serialization import history_from_dict, history_to_dict
from ..fl.simulation import SimulationConfig, run_simulation
from ..metrics import MetricSummary, aggregate_summaries, summarize
from ..telemetry import runtime as telemetry
from ..telemetry.logs import get_logger
from .cache import RunCache, default_cache
from .mapping import build_base_model
from .scales import ExperimentScale, get_scale
from .spec import RunSpec, spec_scale_fields

__all__ = ["RunResult", "execute_spec", "execute_specs", "prepare_scenario",
           "build_worker_scenario", "run_one", "run_suite",
           "resolve_target_accuracy", "DEFAULT", "Parallelism",
           "default_parallelism", "set_default_parallelism",
           "Checkpointing", "default_checkpointing",
           "set_default_checkpointing", "DEFAULT_CHECKPOINT_DIR"]

_log = get_logger("runner")


class _Default:
    """Sentinel: "use the process-wide default cache" (which may be None)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<use default cache>"


DEFAULT = _Default()


def _resolve_cache(cache) -> RunCache | None:
    return default_cache() if isinstance(cache, _Default) else cache


# ----------------------------------------------------------------------
# Process-wide parallelism default (the CLI's --workers sets it)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Parallelism:
    """How runs parallelise when a spec doesn't say (mechanics only —
    results are identical at any setting)."""

    workers: int = 1
    executor: str = "auto"


_DEFAULT_PARALLELISM = Parallelism()


def default_parallelism() -> Parallelism:
    return _DEFAULT_PARALLELISM


def set_default_parallelism(workers: int = 1,
                            executor: str = "auto") -> Parallelism:
    """Install the process-wide parallelism default; returns the previous
    value (mirror of :func:`repro.experiments.cache.set_default_cache`)."""
    global _DEFAULT_PARALLELISM
    previous = _DEFAULT_PARALLELISM
    _DEFAULT_PARALLELISM = Parallelism(workers=max(1, int(workers)),
                                       executor=executor)
    return previous


def _resolve_parallelism(workers: int | None,
                         executor: str | None) -> tuple[int, str]:
    default = default_parallelism()
    return (default.workers if workers is None else max(1, int(workers)),
            default.executor if executor is None else executor)


# ----------------------------------------------------------------------
# Process-wide checkpointing default (the CLI's --checkpoint-every sets it)
# ----------------------------------------------------------------------
#: where the CLI keeps run snapshots unless ``--checkpoint-dir`` overrides.
DEFAULT_CHECKPOINT_DIR = Path("results") / "checkpoints"


@dataclass(frozen=True)
class Checkpointing:
    """Crash-safety policy applied to runs that don't specify their own
    (mechanics only — checkpointing is invisible in results).  Each run
    snapshots to ``<directory>/<content_hash>.ckpt.json``, so a sweep's
    cells never collide and ``--resume`` finds each cell's own snapshot."""

    directory: str | Path = DEFAULT_CHECKPOINT_DIR
    every: int = 1
    resume: bool = False


_DEFAULT_CHECKPOINTING: Checkpointing | None = None


def default_checkpointing() -> Checkpointing | None:
    return _DEFAULT_CHECKPOINTING


def set_default_checkpointing(checkpointing: Checkpointing | None
                              ) -> Checkpointing | None:
    """Install (or clear, with ``None``) the process-wide checkpointing
    default; returns the previous value (mirror of
    :func:`set_default_parallelism`)."""
    global _DEFAULT_CHECKPOINTING
    previous = _DEFAULT_CHECKPOINTING
    _DEFAULT_CHECKPOINTING = checkpointing
    return previous


def _spec_checkpoint(spec: RunSpec) -> CheckpointConfig | None:
    """The per-spec checkpoint config under the process default."""
    policy = default_checkpointing()
    if policy is None:
        return None
    path = Path(policy.directory) / f"{spec.content_hash()}.ckpt.json"
    return CheckpointConfig(path=path, every=policy.every,
                            resume=policy.resume)


@dataclass
class RunResult:
    """One algorithm's constrained run.

    ``scenario`` is ``None`` when the run was served from the cache — the
    history, ``num_classes`` and ``level_distribution`` survive the round
    trip; live scenario objects (models, clients) do not.
    """

    history: History
    scenario: BuiltScenario | None
    num_classes: int | None = None
    spec: RunSpec | None = None
    from_cache: bool = False
    #: level distribution recovered from a cache entry (live runs read it
    #: off the scenario instead).
    _cached_levels: dict = field(default_factory=dict, repr=False)

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy

    def level_distribution(self) -> dict[str, int]:
        if self.scenario is not None:
            return self.scenario.level_distribution()
        return dict(self._cached_levels)


def _train_config(scale: ExperimentScale) -> LocalTrainConfig:
    return LocalTrainConfig(batch_size=scale.batch_size,
                            local_epochs=scale.local_epochs,
                            max_batches=scale.max_batches)


def prepare_scenario(spec: RunSpec, dataset_loader: Callable | None = None
                     ) -> tuple[BuiltScenario, FederatedDataset]:
    """Build (but do not run) the scenario a spec describes.

    The build order is the historical ``run_one`` order — dataset, base
    model, scenario — so specs reproduce pre-RunSpec runs bit-for-bit.
    The built algorithm carries ``spec.to_dict()`` as its
    ``spec_payload``, which is what lets process-pool executors rebuild an
    identical replica per worker.  ``dataset_loader`` overrides the
    dataset source (the worker path passes a memoising loader).
    """
    scale = spec.resolved_scale()
    loader = dataset_loader if dataset_loader is not None else load_dataset
    dataset = loader(spec.dataset, seed=spec.seed,
                     **scale.kwargs_for(spec.dataset))
    level = get_algorithm(spec.algorithm).level
    model_level = "width" if level == "homogeneous" else level
    base_model = build_base_model(dataset, model_level, seed=spec.seed)
    clients = spec.num_clients or scale.clients_for(spec.dataset)
    scenario = build_scenario(
        spec.algorithm, base_model, dataset, clients, spec.constraints,
        train_config=_train_config(scale),
        partition_scheme=spec.partition_scheme, alpha=spec.alpha,
        seed=spec.seed, eval_max_samples=scale.eval_max_samples)
    scenario.algorithm.spec_payload = spec.to_dict()
    return scenario, dataset


# ----------------------------------------------------------------------
# Pool-worker scenario rebuilds
# ----------------------------------------------------------------------
#: per-process dataset memo for worker-side rebuilds: sweeps run many
#: (algorithm × constraint × seed) cells over few datasets, so a worker
#: that rebuilds scenarios should not regenerate the arrays every time.
_WORKER_DATASETS: dict[str, FederatedDataset] = {}
_WORKER_DATASET_LIMIT = 4


def _memoised_load_dataset(name: str, seed: int = 0, **kwargs):
    import json
    key = json.dumps([name, seed, kwargs], sort_keys=True, default=str)
    dataset = _WORKER_DATASETS.get(key)
    if dataset is None:
        while len(_WORKER_DATASETS) >= _WORKER_DATASET_LIMIT:
            # Oldest-first eviction (insertion order), one entry at a time.
            # repro: allow[pure-work-items] seeded-key dataset memo: entries
            # are rebuilt deterministically from (name, seed, kwargs), so
            # cache state changes cost but never results.
            _WORKER_DATASETS.pop(next(iter(_WORKER_DATASETS)))
        dataset = load_dataset(name, seed=seed, **kwargs)
        # repro: allow[pure-work-items] same seeded-key memo as above.
        _WORKER_DATASETS[key] = dataset
    return dataset


def build_worker_scenario(payload: dict) -> BuiltScenario:
    """Rebuild the scenario a work item references, inside a pool worker.

    Deterministic by construction — the payload is the spec's canonical
    dict form, and every build step is seeded — so the replica's clients,
    shards and initial models are bit-identical to the coordinator's.
    Datasets are memoised per process (see ``_memoised_load_dataset``).
    """
    return prepare_scenario(RunSpec.from_dict(payload),
                            dataset_loader=_memoised_load_dataset)[0]


def execute_spec(spec: RunSpec, *, cache=DEFAULT,
                 mutate: Callable | None = None,
                 execution_factory: Callable | None = None) -> RunResult:
    """Execute one RunSpec, consulting the run cache first.

    ``mutate(algorithm)`` (ablations) and ``execution_factory(scenario) ->
    ExecutionConfig`` (configs derived from the built fleet) alter the run
    beyond what the spec serialises, so providing either with caching
    enabled requires ``spec.tag`` to be set — the tag keeps the content
    hash faithful to the altered behaviour.
    """
    cache = _resolve_cache(cache)
    if cache is not None and (mutate or execution_factory) and not spec.tag:
        raise ValueError("mutate/execution_factory alter the run beyond the "
                         "spec; set spec.tag so it caches under its own hash")
    meta = ({"spec": spec.content_hash(), "label": spec.label}
            if telemetry.enabled() else {})
    with telemetry.run_scope(**meta) as scope, \
            telemetry.span("execute_spec", algorithm=spec.algorithm,
                           dataset=spec.dataset, seed=spec.seed):
        result = _execute_spec_live(spec, cache, mutate, execution_factory)
        if scope is not None and cache is not None and not result.from_cache:
            # The run-scope child holds exactly this run's telemetry;
            # serialise it next to the cache entry before the scope merges
            # back into the session collector.
            cache.put_telemetry(spec, scope.to_dict())
    return result


def _execute_spec_live(spec: RunSpec, cache: RunCache | None,
                       mutate: Callable | None,
                       execution_factory: Callable | None) -> RunResult:
    """The cache-then-simulate body of :func:`execute_spec`."""
    if cache is not None:
        entry = cache.get(spec)
        if entry is not None:
            _log.info("cell %s served from cache", spec.label,
                      extra={"spec": spec.content_hash(),
                             "from_cache": True})
            return RunResult(history=entry.history, scenario=None,
                             num_classes=entry.num_classes, spec=spec,
                             from_cache=True,
                             _cached_levels=entry.level_distribution)

    _log.info("running cell %s", spec.label,
              extra={"spec": spec.content_hash(), "from_cache": False})
    scale = spec.resolved_scale()
    with telemetry.span("prepare_scenario", algorithm=spec.algorithm,
                        dataset=spec.dataset):
        scenario, dataset = prepare_scenario(spec)
    if mutate is not None:
        # The live object now diverges from what the spec would rebuild,
        # so process-pool workers must not rebuild from it.
        mutate(scenario.algorithm)
        scenario.algorithm.spec_payload = None
    if execution_factory is not None:
        execution = execution_factory(scenario)
    else:
        execution = spec.resolved_execution()
    workers, executor_kind = _resolve_parallelism(spec.workers, spec.executor)
    sim = SimulationConfig(num_rounds=scale.num_rounds,
                           sample_ratio=scale.sample_ratio,
                           eval_every=scale.eval_every, seed=spec.seed,
                           execution=execution,
                           workers=workers, executor=executor_kind,
                           checkpoint=_spec_checkpoint(spec))
    with telemetry.span("run_simulation", algorithm=spec.algorithm,
                        dataset=spec.dataset, seed=spec.seed):
        history = run_simulation(scenario.algorithm, sim)
    result = RunResult(history=history, scenario=scenario,
                       num_classes=dataset.num_classes, spec=spec)
    if cache is not None:
        cache.put(spec, history, num_classes=dataset.num_classes,
                  level_distribution=scenario.level_distribution())
    return result


def _execute_spec_payload(payload: dict, cache_dir: str | None,
                          with_telemetry: bool = False) -> dict:
    """Sweep-pool worker: execute one spec, return a picklable result.

    Runs in its own process with the parallelism default reset to one
    worker, so the cell executes inline — sweep fan-out and within-cell
    pools never nest.  (The reset is explicit because fork-start pools
    inherit the parent's module globals, including a CLI-set default.)
    The worker writes the shared cache itself (atomic renames make the
    concurrent writes safe) and ships the history back for the parent.

    ``with_telemetry`` mirrors whether the *parent* had a telemetry
    session at submit time: spawn-start pools lose the parent's collector,
    and fork-start pools would inherit one they must not merge into, so
    the worker opens its own session exactly when the parent would have
    written a sidecar for this cell — no more (a telemetry-less sweep
    writes no sidecars at any worker count), no less.
    """
    set_default_parallelism(1, "auto")
    # to_dict strips parallelism fields, so the rebuilt spec inherits the
    # (reset) default; the explicit replace makes the no-nesting invariant
    # hold even for hand-authored payloads that smuggle a workers key in.
    spec = RunSpec.from_dict(payload).replace(workers=1, executor="inline")
    cache = RunCache(cache_dir) if cache_dir is not None else None
    if with_telemetry:
        with telemetry.telemetry_session():
            result = execute_spec(spec, cache=cache)
    else:
        result = execute_spec(spec, cache=cache)
    return {
        "history": history_to_dict(result.history),
        "num_classes": result.num_classes,
        "level_distribution": result.level_distribution(),
        "from_cache": result.from_cache,
    }


def execute_specs(specs: Sequence[RunSpec], *, cache=DEFAULT,
                  workers: int | None = None,
                  executor: str | None = None,
                  on_result: Callable[[RunSpec, RunResult], None] | None
                  = None) -> list[RunResult]:
    """Execute a sweep of independent cells, fanning out across processes.

    With one worker (the default when :func:`set_default_parallelism` was
    never called) this is exactly ``[execute_spec(s) for s in specs]``.
    With more, whole cells run in a process pool: each worker rebuilds its
    cell, consults/writes the shared run cache (atomic renames keep
    concurrent writes safe), and returns the history.  Cells are
    independent and deterministic, so the results — and the cache entries
    they leave behind — are identical to the sequential sweep, in the
    input order.

    ``on_result(spec, result)`` fires once per cell as it completes (in
    input order at any worker count — the sweep orchestrator's progress
    hook); an exception from the callback aborts the sweep.

    Cells with live hooks (``mutate``/``execution_factory``) cannot cross
    a process boundary; route those through :func:`execute_spec`.
    """
    specs = list(specs)
    cache = _resolve_cache(cache)
    sweep_workers, kind = _resolve_parallelism(workers, executor)
    if sweep_workers <= 1 or len(specs) <= 1 or kind == "inline":
        results = []
        for spec in specs:
            result = execute_spec(spec, cache=cache)
            if on_result is not None:
                on_result(spec, result)
            results.append(result)
        return results

    cache_dir = None if cache is None else str(cache.directory)
    results: list[RunResult] = []
    _log.info("sweeping %d cells across %d workers", len(specs),
              min(sweep_workers, len(specs)))
    with ProcessPoolExecutor(
            max_workers=min(sweep_workers, len(specs))) as pool:
        futures = [pool.submit(_execute_spec_payload,
                               spec.to_dict(), cache_dir,
                               telemetry.enabled())
                   for spec in specs]
        for spec, future in zip(specs, futures):
            with telemetry.span("sweep_cell", algorithm=spec.algorithm,
                                dataset=spec.dataset, seed=spec.seed):
                payload = future.result()
            if cache is not None:
                # Keep the parent's hit/miss counters meaningful: the
                # worker did the lookup, the parent reports it.  (Telemetry
                # counters mirror this — a sweep worker is a fresh process
                # with no collector, so its lookups would otherwise be
                # invisible to a profiling session.)
                if payload["from_cache"]:
                    cache.hits += 1
                    telemetry.inc("cache.hits")
                else:
                    cache.misses += 1
                    telemetry.inc("cache.misses")
            result = RunResult(
                history=history_from_dict(payload["history"]),
                scenario=None, num_classes=payload["num_classes"],
                spec=spec, from_cache=payload["from_cache"],
                _cached_levels=dict(payload["level_distribution"]))
            if on_result is not None:
                on_result(spec, result)
            results.append(result)
    return results


def run_one(algorithm: str, dataset_name: str, spec: ConstraintSpec,
            scale: str | ExperimentScale = "demo", seed: int = 0,
            partition_scheme: str = "auto", alpha: float = 0.5,
            num_clients: int | None = None,
            execution: ExecutionConfig | None = None,
            scale_overrides: dict | None = None,
            cache=DEFAULT, workers: int | None = None,
            executor: str | None = None) -> RunResult:
    """Run one algorithm on one dataset under one constraint case.

    Back-compat wrapper over :func:`execute_spec`: the arguments are packed
    into a :class:`RunSpec`, so the run is cacheable and addressable.
    ``execution`` selects the event-driven runtime; when omitted, a spec
    with a non-trivial availability scenario still routes through the event
    engine so the scenario is honoured.  ``workers``/``executor`` select
    within-cell client parallelism (results identical at any setting).
    """
    scale_name, packed_overrides = spec_scale_fields(scale)
    packed_overrides.update(scale_overrides or {})
    run_spec = RunSpec(algorithm=algorithm, dataset=dataset_name,
                       constraints=spec, scale=scale_name,
                       scale_overrides=packed_overrides,
                       execution=execution,
                       partition_scheme=partition_scheme, alpha=alpha,
                       num_clients=num_clients, seed=seed,
                       workers=workers, executor=executor)
    return execute_spec(run_spec, cache=cache)


def resolve_target_accuracy(histories: list[History],
                            num_classes: int) -> float:
    """Preset accuracy for the time-to-accuracy metric.

    The paper fixes a per-task target; scale-independently we use the
    midpoint between chance and the best final accuracy achieved across the
    compared algorithms — every reasonable method crosses it, and faster
    methods cross it sooner.
    """
    chance = 1.0 / num_classes
    best = max(h.final_accuracy for h in histories)
    return chance + 0.5 * max(best - chance, 0.02)


def run_suite(algorithms: list[str], dataset_name: str, spec: ConstraintSpec,
              scale: str | ExperimentScale = "demo", seed: int = 0,
              partition_scheme: str = "auto", alpha: float = 0.5,
              num_clients: int | None = None,
              with_baseline: bool = True,
              seeds: list[int] | None = None,
              scale_overrides: dict | None = None,
              cache=DEFAULT, workers: int | None = None,
              executor: str | None = None) -> list[MetricSummary]:
    """Run a set of algorithms plus the effectiveness baseline.

    Returns one :class:`MetricSummary` per algorithm.  Within each seed all
    algorithms share the same adaptive time-to-accuracy target and the same
    FedAvg-smallest baseline; ``seeds=[0, 1, 2]`` sweeps the whole suite
    and aggregates each algorithm's per-seed summaries into mean±std form
    (``seeds`` takes precedence over the scalar ``seed``).

    The whole (algorithm + baseline) × seed grid is one
    :func:`execute_specs` sweep, so with ``workers`` (or the process-wide
    parallelism default) above one, independent cells fan out across a
    process pool; summaries are computed afterwards on identical results.
    """
    scale_name, packed_overrides = spec_scale_fields(scale)
    packed_overrides.update(scale_overrides or {})
    seed_list = list(seeds) if seeds else [seed]
    # Order-preserving dedupe: with the baseline also listed explicitly in
    # ``algorithms`` the cell would otherwise be submitted to the pool
    # twice and computed twice in parallel (a sequential run would have
    # served the repeat from the cache).
    names = list(dict.fromkeys(
        list(algorithms) + (["fedavg_smallest"] if with_baseline else [])))
    grid = [RunSpec(algorithm=name, dataset=dataset_name, constraints=spec,
                    scale=scale_name, scale_overrides=packed_overrides,
                    partition_scheme=partition_scheme, alpha=alpha,
                    num_clients=num_clients, seed=one_seed)
            for one_seed in seed_list for name in names]
    sweep = execute_specs(grid, cache=cache, workers=workers,
                          executor=executor)
    by_cell = {(res.spec.algorithm, res.spec.seed): res for res in sweep}

    per_algorithm: dict[str, list[MetricSummary]] = {n: [] for n in algorithms}
    for one_seed in seed_list:
        results = {name: by_cell[(name, one_seed)] for name in algorithms}
        baseline_history = (by_cell[("fedavg_smallest", one_seed)].history
                            if with_baseline else None)
        num_classes = next(iter(results.values())).num_classes
        target = resolve_target_accuracy(
            [r.history for r in results.values()], num_classes)
        for name, result in results.items():
            per_algorithm[name].append(
                summarize(result.history, target, baseline_history))
    return [aggregate_summaries(per_algorithm[name]) for name in algorithms]
