"""Experiment runner: declarative RunSpec execution with a run cache.

:func:`execute_spec` is the single execution path — it resolves a
:class:`~repro.experiments.spec.RunSpec` into a built scenario, runs the
simulation, and (when a :class:`~repro.experiments.cache.RunCache` is
active) serves repeated cells from disk instead of recomputing them.
:func:`run_one` and :func:`run_suite` keep their historical signatures as
thin wrappers; :func:`run_suite` additionally sweeps seeds
(``seeds=[0, 1, 2]``) into mean±std :class:`~repro.metrics.MetricSummary`
rows.  Everything scale-dependent comes from
:mod:`repro.experiments.scales`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..algorithms import get_algorithm
from ..constraints import BuiltScenario, ConstraintSpec, build_scenario
from ..data.dataset import FederatedDataset
from ..data.registry import load_dataset
from ..fl.aggregation import ExecutionConfig
from ..fl.client import LocalTrainConfig
from ..fl.history import History
from ..fl.simulation import SimulationConfig, run_simulation
from ..metrics import MetricSummary, aggregate_summaries, summarize
from .cache import RunCache, default_cache
from .mapping import build_base_model
from .scales import ExperimentScale, get_scale
from .spec import RunSpec, spec_scale_fields

__all__ = ["RunResult", "execute_spec", "prepare_scenario", "run_one",
           "run_suite", "resolve_target_accuracy", "DEFAULT"]


class _Default:
    """Sentinel: "use the process-wide default cache" (which may be None)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<use default cache>"


DEFAULT = _Default()


def _resolve_cache(cache) -> RunCache | None:
    return default_cache() if isinstance(cache, _Default) else cache


@dataclass
class RunResult:
    """One algorithm's constrained run.

    ``scenario`` is ``None`` when the run was served from the cache — the
    history, ``num_classes`` and ``level_distribution`` survive the round
    trip; live scenario objects (models, clients) do not.
    """

    history: History
    scenario: BuiltScenario | None
    num_classes: int | None = None
    spec: RunSpec | None = None
    from_cache: bool = False
    #: level distribution recovered from a cache entry (live runs read it
    #: off the scenario instead).
    _cached_levels: dict = field(default_factory=dict, repr=False)

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy

    def level_distribution(self) -> dict[str, int]:
        if self.scenario is not None:
            return self.scenario.level_distribution()
        return dict(self._cached_levels)


def _train_config(scale: ExperimentScale) -> LocalTrainConfig:
    return LocalTrainConfig(batch_size=scale.batch_size,
                            local_epochs=scale.local_epochs,
                            max_batches=scale.max_batches)


def prepare_scenario(spec: RunSpec) -> tuple[BuiltScenario, FederatedDataset]:
    """Build (but do not run) the scenario a spec describes.

    The build order is the historical ``run_one`` order — dataset, base
    model, scenario — so specs reproduce pre-RunSpec runs bit-for-bit.
    """
    scale = spec.resolved_scale()
    dataset = load_dataset(spec.dataset, seed=spec.seed,
                           **scale.kwargs_for(spec.dataset))
    level = get_algorithm(spec.algorithm).level
    model_level = "width" if level == "homogeneous" else level
    base_model = build_base_model(dataset, model_level, seed=spec.seed)
    clients = spec.num_clients or scale.clients_for(spec.dataset)
    scenario = build_scenario(
        spec.algorithm, base_model, dataset, clients, spec.constraints,
        train_config=_train_config(scale),
        partition_scheme=spec.partition_scheme, alpha=spec.alpha,
        seed=spec.seed, eval_max_samples=scale.eval_max_samples)
    return scenario, dataset


def execute_spec(spec: RunSpec, *, cache=DEFAULT,
                 mutate: Callable | None = None,
                 execution_factory: Callable | None = None) -> RunResult:
    """Execute one RunSpec, consulting the run cache first.

    ``mutate(algorithm)`` (ablations) and ``execution_factory(scenario) ->
    ExecutionConfig`` (configs derived from the built fleet) alter the run
    beyond what the spec serialises, so providing either with caching
    enabled requires ``spec.tag`` to be set — the tag keeps the content
    hash faithful to the altered behaviour.
    """
    cache = _resolve_cache(cache)
    if cache is not None and (mutate or execution_factory) and not spec.tag:
        raise ValueError("mutate/execution_factory alter the run beyond the "
                         "spec; set spec.tag so it caches under its own hash")
    if cache is not None:
        entry = cache.get(spec)
        if entry is not None:
            return RunResult(history=entry.history, scenario=None,
                             num_classes=entry.num_classes, spec=spec,
                             from_cache=True,
                             _cached_levels=entry.level_distribution)

    scale = spec.resolved_scale()
    scenario, dataset = prepare_scenario(spec)
    if mutate is not None:
        mutate(scenario.algorithm)
    if execution_factory is not None:
        execution = execution_factory(scenario)
    else:
        execution = spec.resolved_execution()
    sim = SimulationConfig(num_rounds=scale.num_rounds,
                           sample_ratio=scale.sample_ratio,
                           eval_every=scale.eval_every, seed=spec.seed,
                           execution=execution)
    history = run_simulation(scenario.algorithm, sim)
    result = RunResult(history=history, scenario=scenario,
                       num_classes=dataset.num_classes, spec=spec)
    if cache is not None:
        cache.put(spec, history, num_classes=dataset.num_classes,
                  level_distribution=scenario.level_distribution())
    return result


def run_one(algorithm: str, dataset_name: str, spec: ConstraintSpec,
            scale: str | ExperimentScale = "demo", seed: int = 0,
            partition_scheme: str = "auto", alpha: float = 0.5,
            num_clients: int | None = None,
            execution: ExecutionConfig | None = None,
            scale_overrides: dict | None = None,
            cache=DEFAULT) -> RunResult:
    """Run one algorithm on one dataset under one constraint case.

    Back-compat wrapper over :func:`execute_spec`: the arguments are packed
    into a :class:`RunSpec`, so the run is cacheable and addressable.
    ``execution`` selects the event-driven runtime; when omitted, a spec
    with a non-trivial availability scenario still routes through the event
    engine so the scenario is honoured.
    """
    scale_name, packed_overrides = spec_scale_fields(scale)
    packed_overrides.update(scale_overrides or {})
    run_spec = RunSpec(algorithm=algorithm, dataset=dataset_name,
                       constraints=spec, scale=scale_name,
                       scale_overrides=packed_overrides,
                       execution=execution,
                       partition_scheme=partition_scheme, alpha=alpha,
                       num_clients=num_clients, seed=seed)
    return execute_spec(run_spec, cache=cache)


def resolve_target_accuracy(histories: list[History],
                            num_classes: int) -> float:
    """Preset accuracy for the time-to-accuracy metric.

    The paper fixes a per-task target; scale-independently we use the
    midpoint between chance and the best final accuracy achieved across the
    compared algorithms — every reasonable method crosses it, and faster
    methods cross it sooner.
    """
    chance = 1.0 / num_classes
    best = max(h.final_accuracy for h in histories)
    return chance + 0.5 * max(best - chance, 0.02)


def run_suite(algorithms: list[str], dataset_name: str, spec: ConstraintSpec,
              scale: str | ExperimentScale = "demo", seed: int = 0,
              partition_scheme: str = "auto", alpha: float = 0.5,
              num_clients: int | None = None,
              with_baseline: bool = True,
              seeds: list[int] | None = None,
              scale_overrides: dict | None = None,
              cache=DEFAULT) -> list[MetricSummary]:
    """Run a set of algorithms plus the effectiveness baseline.

    Returns one :class:`MetricSummary` per algorithm.  Within each seed all
    algorithms share the same adaptive time-to-accuracy target and the same
    FedAvg-smallest baseline; ``seeds=[0, 1, 2]`` sweeps the whole suite
    and aggregates each algorithm's per-seed summaries into mean±std form
    (``seeds`` takes precedence over the scalar ``seed``).
    """
    per_algorithm: dict[str, list[MetricSummary]] = {n: [] for n in algorithms}
    for one_seed in (seeds if seeds else [seed]):
        results = {name: run_one(name, dataset_name, spec, scale, one_seed,
                                 partition_scheme, alpha, num_clients,
                                 scale_overrides=scale_overrides, cache=cache)
                   for name in algorithms}
        baseline_history = None
        if with_baseline:
            baseline_history = run_one(
                "fedavg_smallest", dataset_name, spec, scale, one_seed,
                partition_scheme, alpha, num_clients,
                scale_overrides=scale_overrides, cache=cache).history

        num_classes = next(iter(results.values())).num_classes
        target = resolve_target_accuracy(
            [r.history for r in results.values()], num_classes)
        for name, result in results.items():
            per_algorithm[name].append(
                summarize(result.history, target, baseline_history))
    return [aggregate_summaries(per_algorithm[name]) for name in algorithms]
