"""Figure 3: the constructed model pool.

Parameters, computational cost (GFLOPs), memory usage and training time of
ResNet-101 x{1.0, 0.75, 0.5, 0.25} for the three width-level algorithms on
the Jetson Orin NX — the statistics the constraint cases select models by.
"""

from __future__ import annotations

from ..algorithms import get_algorithm
from ..hw.cost_model import DEFAULT_COST_MODEL
from ..hw.device import get_device
from ..models.zoo import build_model
from .registry import register_artifact

__all__ = ["run"]

_ROUND_SAMPLES = 500
_BATCH = 8
_METHODS = ("fjord", "sheterofl", "fedrolex")


@register_artifact("fig3", title="Figure 3: model pool on Jetson Orin NX")
def run(scale: str = "paper", seed: int = 0) -> list[dict]:
    model_scale = "paper" if scale == "paper" else "tiny"
    orin = get_device("jetson_orin_nx")
    cm = DEFAULT_COST_MODEL
    rows = []
    for method in _METHODS:
        cls = get_algorithm(method)
        base = build_model("resnet101", num_classes=100, seed=seed,
                           scale=model_scale, **cls.base_model_overrides)
        pool = cls.build_pool(base)
        for entry in sorted(pool.entries, key=lambda e: -e.proportion):
            rows.append({
                "method": method,
                "variant": f"R101{entry.key}",
                "params_M": round(entry.stats.params_millions, 2),
                "gflops": round(entry.stats.gflops_per_sample, 3),
                "memory_MB": round(cm.training_memory_bytes(
                    entry.stats, _BATCH) / 2**20, 1),
                "train_time_s": round(cm.training_time_s(
                    entry.stats, orin, _ROUND_SAMPLES), 1),
            })
    return rows


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["fig3", *sys.argv[1:]]))
