"""Figure 6: results on memory-limited MHFL.

Memory tiers {16 GB GPU, 4 GB GPU, no GPU} with market-share proportions;
the paper restricts this case to the large models (ResNet-101 on CIFAR-100,
ALBERT on Stack Overflow) since small HAR models fit every device.
"""

from __future__ import annotations

from .constraint_figs import run_constraint_figure
from .registry import register_artifact

__all__ = ["run", "MEMORY_DATASETS"]

MEMORY_DATASETS = ["cifar100", "stackoverflow"]


@register_artifact("fig6", title="Figure 6: memory-limited MHFL")
def run(scale: str = "demo", seed: int = 0,
        datasets: list[str] | None = None,
        algorithms: list[str] | None = None,
        seeds: list[int] | None = None,
        availability: str = "always_on",
        scale_overrides: dict | None = None) -> list[dict]:
    return run_constraint_figure(("memory",),
                                 datasets=datasets or MEMORY_DATASETS,
                                 algorithms=algorithms, scale=scale,
                                 seed=seed, seeds=seeds,
                                 availability=availability,
                                 scale_overrides=scale_overrides)


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["fig6", *sys.argv[1:]]))
