"""Figure 6: results on memory-limited MHFL.

Memory tiers {16 GB GPU, 4 GB GPU, no GPU} with market-share proportions;
the paper restricts this case to the large models (ResNet-101 on CIFAR-100,
ALBERT on Stack Overflow) since small HAR models fit every device.
"""

from __future__ import annotations

import sys

from .constraint_figs import run_constraint_figure
from .reporting import format_table

__all__ = ["run", "main", "MEMORY_DATASETS"]

MEMORY_DATASETS = ["cifar100", "stackoverflow"]


def run(scale: str = "demo", seed: int = 0,
        datasets: list[str] | None = None,
        algorithms: list[str] | None = None) -> list[dict]:
    return run_constraint_figure(("memory",),
                                 datasets=datasets or MEMORY_DATASETS,
                                 algorithms=algorithms, scale=scale,
                                 seed=seed)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "demo"
    print(format_table(run(scale=scale),
                       title="Figure 6: memory-limited MHFL"))


if __name__ == "__main__":
    main()
