"""Per-table / per-figure reproduction harnesses.

Each module exposes ``run(scale=..., seed=...) -> list[dict]`` and a
``main()`` so every artifact regenerates from the command line, e.g.::

    python -m repro.experiments.table1
    python -m repro.experiments.fig4 demo
"""

from .mapping import base_arch_for, build_base_model
from .reporting import format_radar, format_table
from .runner import RunResult, resolve_target_accuracy, run_one, run_suite
from .scales import SCALES, ExperimentScale, get_scale

# Figure/table modules (repro.experiments.table1, .fig4, ...) are imported
# lazily by name — importing them here would shadow `python -m` execution.
__all__ = [
    "base_arch_for", "build_base_model",
    "format_radar", "format_table",
    "RunResult", "resolve_target_accuracy", "run_one", "run_suite",
    "SCALES", "ExperimentScale", "get_scale",
]
