"""Per-table / per-figure reproduction harnesses.

Each artifact module exposes ``run(scale=..., seed=...) -> list[dict]``
registered under a stable name (:mod:`repro.experiments.registry`); the
unified CLI drives them::

    python -m repro list
    python -m repro run fig4 --scale demo --seeds 0,1,2 --out json

Runs are described declaratively by :class:`~repro.experiments.spec.RunSpec`
and cached content-addressed (:mod:`repro.experiments.cache`), so repeated
cells — the shared FedAvg-smallest baseline, re-rendered tables — are
computed once.
"""

from .cache import RunCache, default_cache, set_default_cache
from .mapping import base_arch_for, build_base_model
from .registry import (Artifact, all_artifacts, artifact_names, get_artifact,
                       register_artifact)
from .reporting import (aggregate_seed_rows, format_radar, format_table,
                        rows_to_csv, rows_to_json, write_rows)
from .runner import (Checkpointing, Parallelism, RunResult,
                     build_worker_scenario, default_checkpointing,
                     default_parallelism, execute_spec, execute_specs,
                     prepare_scenario, resolve_target_accuracy, run_one,
                     run_suite, set_default_checkpointing,
                     set_default_parallelism)
from .scales import SCALES, ExperimentScale, get_scale, resolve_scale
from .spec import RunSpec
from .sweep import (CellStatus, Shard, SweepManifest, SweepRunReport,
                    SweepStatus, expand_grid, run_sweep, shard_of,
                    status_rows)

# Figure/table modules (repro.experiments.table1, .fig4, ...) are imported
# lazily by name — importing them here would shadow `python -m` execution.
__all__ = [
    "base_arch_for", "build_base_model",
    "aggregate_seed_rows", "format_radar", "format_table",
    "rows_to_csv", "rows_to_json", "write_rows",
    "RunResult", "RunSpec", "execute_spec", "execute_specs",
    "prepare_scenario", "build_worker_scenario",
    "resolve_target_accuracy", "run_one", "run_suite",
    "Parallelism", "default_parallelism", "set_default_parallelism",
    "Checkpointing", "default_checkpointing", "set_default_checkpointing",
    "RunCache", "default_cache", "set_default_cache",
    "Artifact", "all_artifacts", "artifact_names", "get_artifact",
    "register_artifact",
    "SCALES", "ExperimentScale", "get_scale", "resolve_scale",
    "SweepManifest", "SweepStatus", "SweepRunReport", "CellStatus",
    "Shard", "shard_of", "expand_grid", "run_sweep", "status_rows",
]
