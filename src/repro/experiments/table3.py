"""Table III: edge devices used in the platform construction."""

from __future__ import annotations

from ..hw.device import EDGE_DEVICES
from .registry import register_artifact

__all__ = ["run"]


@register_artifact("table3", title="Table III: edge devices")
def run(scale: str = "demo", seed: int = 0) -> list[dict]:
    rows = []
    for device in EDGE_DEVICES.values():
        rows.append({
            "device": device.name,
            "processor": device.processor,
            "gpu": device.gpu,
            "memory_GB": round(device.memory_gb, 1),
            "effective_GFLOPs": round(device.effective_train_flops / 1e9, 2),
        })
    return rows


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["table3", *sys.argv[1:]]))
