"""Table III: edge devices used in the platform construction."""

from __future__ import annotations

from ..hw.device import EDGE_DEVICES
from .reporting import format_table

__all__ = ["run", "main"]


def run(scale: str = "demo", seed: int = 0) -> list[dict]:
    rows = []
    for device in EDGE_DEVICES.values():
        rows.append({
            "device": device.name,
            "processor": device.processor,
            "gpu": device.gpu,
            "memory_GB": round(device.memory_gb, 1),
            "effective_GFLOPs": round(device.effective_train_flops / 1e9, 2),
        })
    return rows


def main() -> None:
    print(format_table(run(), title="Table III: edge devices"))


if __name__ == "__main__":
    main()
