"""Table II: statistics of the platform (algorithm x level x model x data).

Rendered from the live registries, so the table always reflects what the
platform actually implements.
"""

from __future__ import annotations

from ..algorithms import ALGORITHMS
from ..data.registry import DATASET_TRACKS
from .mapping import base_arch_for
from .reporting import format_table

__all__ = ["run", "main"]


def run(scale: str = "demo", seed: int = 0) -> list[dict]:
    rows = []
    for name, cls in ALGORITHMS.items():
        if cls.level == "homogeneous":
            continue
        row = {"hetero": cls.level, "algorithm": name}
        for track, datasets in DATASET_TRACKS.items():
            models = sorted({base_arch_for(ds, cls.level) for ds in datasets})
            row[f"{track}_model"] = "/".join(models)
            row[f"{track}_data"] = "/".join(datasets)
        rows.append(row)
    return rows


def main() -> None:
    print(format_table(run(), title="Table II: platform statistics"))


if __name__ == "__main__":
    main()
