"""Table II: statistics of the platform (algorithm x level x model x data).

Rendered from the live registries, so the table always reflects what the
platform actually implements.
"""

from __future__ import annotations

from ..algorithms import ALGORITHMS
from ..data.registry import DATASET_TRACKS
from .mapping import base_arch_for
from .registry import register_artifact

__all__ = ["run"]


@register_artifact("table2", title="Table II: platform statistics")
def run(scale: str = "demo", seed: int = 0) -> list[dict]:
    rows = []
    for name, cls in ALGORITHMS.items():
        if cls.level == "homogeneous":
            continue
        row = {"hetero": cls.level, "algorithm": name}
        for track, datasets in DATASET_TRACKS.items():
            models = sorted({base_arch_for(ds, cls.level) for ds in datasets})
            row[f"{track}_model"] = "/".join(models)
            row[f"{track}_data"] = "/".join(datasets)
        rows.append(row)
    return rows


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["table2", *sys.argv[1:]]))
