"""Figure 7: analysis of constraint combinations.

CIFAR-100 accuracy of every algorithm under Comp, Mem, Comm, Mem+Comm and
Mem+Comm+Comp (a client's feasible set is the intersection of the active
constraints' feasible sets).
"""

from __future__ import annotations

from ..algorithms import MHFL_ALGORITHMS
from ..constraints import ConstraintSpec
from .registry import register_artifact
from .reporting import aggregate_seed_rows
from .runner import run_one

__all__ = ["run", "COMBOS"]

COMBOS: list[tuple[str, ...]] = [
    ("computation",),
    ("memory",),
    ("communication",),
    ("memory", "communication"),
    ("memory", "communication", "computation"),
]


def _rows_for_seed(seed: int, scale: str, dataset: str,
                   algorithms: list[str], combos: list[tuple[str, ...]],
                   availability: str,
                   scale_overrides: dict | None) -> list[dict]:
    rows = []
    for combo in combos:
        spec = ConstraintSpec(constraints=combo, availability=availability)
        for name in algorithms:
            result = run_one(name, dataset, spec, scale=scale, seed=seed,
                             scale_overrides=scale_overrides)
            rows.append({"constraints": spec.label, "algorithm": name,
                         "accuracy": round(result.final_accuracy, 4)})
    return rows


@register_artifact("fig7",
                   title="Figure 7: constraint combinations (CIFAR-100)")
def run(scale: str = "demo", seed: int = 0, dataset: str = "cifar100",
        algorithms: list[str] | None = None,
        combos: list[tuple[str, ...]] | None = None,
        seeds: list[int] | None = None,
        availability: str = "always_on",
        scale_overrides: dict | None = None) -> list[dict]:
    algorithms = algorithms or list(MHFL_ALGORITHMS)
    combos = list(combos or COMBOS)
    return aggregate_seed_rows(
        [_rows_for_seed(s, scale, dataset, algorithms, combos, availability,
                        scale_overrides)
         for s in (seeds if seeds else [seed])],
        value_keys=["accuracy"])


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["fig7", *sys.argv[1:]]))
