"""Figure 7: analysis of constraint combinations.

CIFAR-100 accuracy of every algorithm under Comp, Mem, Comm, Mem+Comm and
Mem+Comm+Comp (a client's feasible set is the intersection of the active
constraints' feasible sets).
"""

from __future__ import annotations

import sys

from ..algorithms import MHFL_ALGORITHMS
from ..constraints import ConstraintSpec
from .reporting import format_table
from .runner import run_one

__all__ = ["run", "main", "COMBOS"]

COMBOS: list[tuple[str, ...]] = [
    ("computation",),
    ("memory",),
    ("communication",),
    ("memory", "communication"),
    ("memory", "communication", "computation"),
]


def run(scale: str = "demo", seed: int = 0, dataset: str = "cifar100",
        algorithms: list[str] | None = None,
        combos: list[tuple[str, ...]] | None = None) -> list[dict]:
    algorithms = algorithms or list(MHFL_ALGORITHMS)
    rows = []
    for combo in (combos or COMBOS):
        spec = ConstraintSpec(constraints=combo)
        for name in algorithms:
            result = run_one(name, dataset, spec, scale=scale, seed=seed)
            rows.append({"constraints": spec.label, "algorithm": name,
                         "accuracy": round(result.final_accuracy, 4)})
    return rows


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "demo"
    print(format_table(run(scale=scale),
                       title="Figure 7: constraint combinations (CIFAR-100)"))


if __name__ == "__main__":
    main()
