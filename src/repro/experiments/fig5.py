"""Figure 5: results on communication-limited MHFL.

Same grid as Figure 4 with the communication-bandwidth constraint (round
communication controlled to a budget, per the IMA bandwidth trace).
"""

from __future__ import annotations

import sys

from .constraint_figs import run_constraint_figure
from .reporting import format_table

__all__ = ["run", "main"]


def run(scale: str = "demo", seed: int = 0,
        datasets: list[str] | None = None,
        algorithms: list[str] | None = None) -> list[dict]:
    return run_constraint_figure(("communication",), datasets=datasets,
                                 algorithms=algorithms, scale=scale,
                                 seed=seed)


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "demo"
    print(format_table(run(scale=scale),
                       title="Figure 5: communication-limited MHFL"))


if __name__ == "__main__":
    main()
