"""Figure 5: results on communication-limited MHFL.

Same grid as Figure 4 with the communication-bandwidth constraint (round
communication controlled to a budget, per the IMA bandwidth trace).
"""

from __future__ import annotations

from .constraint_figs import run_constraint_figure
from .registry import register_artifact

__all__ = ["run"]


@register_artifact("fig5", title="Figure 5: communication-limited MHFL")
def run(scale: str = "demo", seed: int = 0,
        datasets: list[str] | None = None,
        algorithms: list[str] | None = None,
        seeds: list[int] | None = None,
        availability: str = "always_on",
        scale_overrides: dict | None = None) -> list[dict]:
    return run_constraint_figure(("communication",), datasets=datasets,
                                 algorithms=algorithms, scale=scale,
                                 seed=seed, seeds=seeds,
                                 availability=availability,
                                 scale_overrides=scale_overrides)


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["fig5", *sys.argv[1:]]))
