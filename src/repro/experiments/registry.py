"""Artifact registry: every paper table/figure as a named, discoverable run.

Each experiments module decorates its ``run`` function::

    @register_artifact("fig4", title="Figure 4: computation-limited MHFL")
    def run(scale="demo", seed=0, ...): ...

and the unified CLI (:mod:`repro.__main__`) lists, describes and executes
artifacts from here — no hardcoded artifact list, no per-module ``main()``.
Discovery imports every module in :mod:`repro.experiments` once, so adding
a new artifact module is registration enough.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Artifact", "register_artifact", "get_artifact",
           "artifact_names", "all_artifacts", "discover_artifacts"]


@dataclass(frozen=True)
class Artifact:
    """One registered table/figure harness."""

    name: str
    run: Callable[..., list]
    title: str
    #: first paragraph of the module docstring (fallback: function doc).
    description: str
    module: str
    #: kwargs the run() callable accepts (CLI options are filtered by this).
    params: tuple[str, ...]
    #: extra renderer hint; "radar" artifacts normalise per-axis scores.
    render: str = "table"
    render_kwargs: dict = field(default_factory=dict)


_ARTIFACTS: dict[str, Artifact] = {}
_DISCOVERED = False


def register_artifact(name: str, title: str | None = None,
                      render: str = "table", **render_kwargs):
    """Decorator registering ``run`` as the artifact ``name``."""

    def decorate(func: Callable[..., list]) -> Callable[..., list]:
        module = inspect.getmodule(func)
        doc = inspect.getdoc(module) or inspect.getdoc(func) or ""
        description = doc.split("\n\n", 1)[0].replace("\n", " ").strip()
        params = tuple(inspect.signature(func).parameters)
        artifact = Artifact(name=name, run=func,
                            title=title or name,
                            description=description,
                            module=func.__module__,
                            params=params,
                            render=render,
                            render_kwargs=dict(render_kwargs))
        existing = _ARTIFACTS.get(name)
        if existing is not None and existing.module != artifact.module:
            # `python -m repro.experiments.fig4` first registers the module
            # as __main__, then discovery re-imports it under its real name:
            # the same artifact seen twice, not a clash.  Keep the real-name
            # registration (it is the one `describe` should point at).
            if artifact.module == "__main__":
                return func
            if existing.module != "__main__":
                raise ValueError(f"artifact {name!r} already registered by "
                                 f"{existing.module}")
        _ARTIFACTS[name] = artifact
        return func

    return decorate


def discover_artifacts() -> None:
    """Import every ``repro.experiments`` module so decorators run.

    The discovered flag is only set once every import succeeded: a module
    that fails to import surfaces its real error here and is retried on
    the next call, instead of leaving a silently partial registry.
    """
    global _DISCOVERED
    if _DISCOVERED:
        return
    package = importlib.import_module("repro.experiments")
    for info in pkgutil.iter_modules(package.__path__):
        importlib.import_module(f"repro.experiments.{info.name}")
    _DISCOVERED = True


def artifact_names() -> list[str]:
    """Sorted, de-duplicated registered artifact names."""
    discover_artifacts()
    return sorted(_ARTIFACTS)


def all_artifacts() -> dict[str, Artifact]:
    discover_artifacts()
    return dict(_ARTIFACTS)


def get_artifact(name: str) -> Artifact:
    discover_artifacts()
    try:
        return _ARTIFACTS[name]
    except KeyError:
        raise ValueError(f"unknown artifact {name!r}; "
                         f"known: {sorted(_ARTIFACTS)}") from None
