"""Shared driver for the constraint-case figures (Figures 4, 5 and 6).

Each figure is the same grid — global accuracy + time-to-accuracy (top row)
and stability + effectiveness (bottom row) for every algorithm on every data
task — under a different active constraint.
"""

from __future__ import annotations

from ..algorithms import MHFL_ALGORITHMS
from ..constraints import ConstraintSpec
from ..data.registry import DATASET_NAMES
from .runner import run_suite

__all__ = ["run_constraint_figure"]


def run_constraint_figure(constraints: tuple[str, ...],
                          datasets: list[str] | None = None,
                          algorithms: list[str] | None = None,
                          scale: str = "demo", seed: int = 0,
                          seeds: list[int] | None = None,
                          availability: str = "always_on",
                          scale_overrides: dict | None = None) -> list[dict]:
    """All four metrics for every (dataset, algorithm) under a constraint.

    ``seeds`` sweeps the whole grid and renders mean±std cells;
    ``availability`` swaps the fleet scenario (always_on / diurnal / markov
    / dropout); ``scale_overrides`` tweaks individual scale fields (e.g.
    ``{"num_rounds": 10}``).
    """
    datasets = datasets or list(DATASET_NAMES)
    algorithms = algorithms or list(MHFL_ALGORITHMS)
    spec = ConstraintSpec(constraints=constraints, availability=availability)
    rows = []
    for dataset in datasets:
        summaries = run_suite(algorithms, dataset, spec, scale=scale,
                              seed=seed, seeds=seeds,
                              scale_overrides=scale_overrides)
        rows.extend(s.as_row() for s in summaries)
    return rows
