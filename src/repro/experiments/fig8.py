"""Figure 8: non-IID performance on the computation-limited scenario.

CIFAR-100 / CIFAR-10 / AG-News accuracy under IID and Dirichlet(alpha) label
partitions with alpha in {0.5, 5} — the paper's robustness check that the
computation-limited conclusions survive data heterogeneity.
"""

from __future__ import annotations

from ..algorithms import MHFL_ALGORITHMS
from ..constraints import ConstraintSpec
from .registry import register_artifact
from .reporting import aggregate_seed_rows
from .runner import run_one

__all__ = ["run", "PARTITIONS", "NONIID_DATASETS"]

#: (label, scheme, alpha) — matching the paper's iid / niid-0.5 / niid-5.
PARTITIONS = [("iid", "iid", 0.0), ("niid-0.5", "dirichlet", 0.5),
              ("niid-5", "dirichlet", 5.0)]
NONIID_DATASETS = ["cifar100", "cifar10", "agnews"]


def _rows_for_seed(seed: int, scale: str, datasets: list[str],
                   algorithms: list[str], availability: str,
                   scale_overrides: dict | None) -> list[dict]:
    spec = ConstraintSpec(constraints=("computation",),
                          availability=availability)
    rows = []
    for dataset in datasets:
        for label, scheme, alpha in PARTITIONS:
            for name in algorithms:
                result = run_one(name, dataset, spec, scale=scale, seed=seed,
                                 partition_scheme=scheme, alpha=alpha,
                                 scale_overrides=scale_overrides)
                rows.append({"dataset": dataset, "partition": label,
                             "algorithm": name,
                             "accuracy": round(result.final_accuracy, 4)})
    return rows


@register_artifact("fig8",
                   title="Figure 8: non-IID robustness "
                         "(computation-limited)")
def run(scale: str = "demo", seed: int = 0,
        datasets: list[str] | None = None,
        algorithms: list[str] | None = None,
        seeds: list[int] | None = None,
        availability: str = "always_on",
        scale_overrides: dict | None = None) -> list[dict]:
    algorithms = algorithms or list(MHFL_ALGORITHMS)
    datasets = list(datasets or NONIID_DATASETS)
    return aggregate_seed_rows(
        [_rows_for_seed(s, scale, datasets, algorithms, availability,
                        scale_overrides)
         for s in (seeds if seeds else [seed])],
        value_keys=["accuracy"])


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["fig8", *sys.argv[1:]]))
