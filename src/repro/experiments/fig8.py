"""Figure 8: non-IID performance on the computation-limited scenario.

CIFAR-100 / CIFAR-10 / AG-News accuracy under IID and Dirichlet(alpha) label
partitions with alpha in {0.5, 5} — the paper's robustness check that the
computation-limited conclusions survive data heterogeneity.
"""

from __future__ import annotations

import sys

from ..algorithms import MHFL_ALGORITHMS
from ..constraints import ConstraintSpec
from .reporting import format_table
from .runner import run_one

__all__ = ["run", "main", "PARTITIONS", "NONIID_DATASETS"]

#: (label, scheme, alpha) — matching the paper's iid / niid-0.5 / niid-5.
PARTITIONS = [("iid", "iid", 0.0), ("niid-0.5", "dirichlet", 0.5),
              ("niid-5", "dirichlet", 5.0)]
NONIID_DATASETS = ["cifar100", "cifar10", "agnews"]


def run(scale: str = "demo", seed: int = 0,
        datasets: list[str] | None = None,
        algorithms: list[str] | None = None) -> list[dict]:
    algorithms = algorithms or list(MHFL_ALGORITHMS)
    spec = ConstraintSpec(constraints=("computation",))
    rows = []
    for dataset in (datasets or NONIID_DATASETS):
        for label, scheme, alpha in PARTITIONS:
            for name in algorithms:
                result = run_one(name, dataset, spec, scale=scale, seed=seed,
                                 partition_scheme=scheme, alpha=alpha)
                rows.append({"dataset": dataset, "partition": label,
                             "algorithm": name,
                             "accuracy": round(result.final_accuracy, 4)})
    return rows


def main() -> None:
    scale = sys.argv[1] if len(sys.argv) > 1 else "demo"
    print(format_table(run(scale=scale),
                       title="Figure 8: non-IID robustness "
                             "(computation-limited)"))


if __name__ == "__main__":
    main()
