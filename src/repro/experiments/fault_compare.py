"""Fault-injection comparison: algorithm robustness under failing fleets.

The paper evaluates MHFL algorithms on healthy fleets; this artifact adds
the reliability axis.  Each algorithm runs the same constrained scenario
under a set of deterministic fault profiles (:mod:`repro.fl.faults`) —
client crashes before upload, straggler slowdowns, corrupted updates —
and reports the accuracy delta against the clean run plus the defense
counters (crashed dispatches, quarantined updates, deadline drops).

Fault schedules derive from ``(run_seed, round, client)`` on a salted
stream, so every cell is bit-reproducible at any worker count and the
clean profile is byte-identical to the ordinary healthy run (it shares
the content hash, hence the cache entry).
"""

from __future__ import annotations

from ..constraints import ConstraintSpec
from .registry import register_artifact
from .runner import execute_spec
from .spec import RunSpec

__all__ = ["run", "PROFILES"]

#: named fault profiles: :class:`~repro.fl.faults.FaultSpec` kwargs.
PROFILES: dict[str, dict] = {
    "clean": {},
    "crash": {"crash_prob": 0.15},
    "straggler": {"straggler_prob": 0.25, "straggler_factor": 4.0},
    "corrupt": {"corrupt_prob": 0.15, "corrupt_mode": "nan"},
    "flaky": {"crash_prob": 0.08, "straggler_prob": 0.15,
              "corrupt_prob": 0.08, "corrupt_mode": "scale",
              "corrupt_factor": 1e6},
}


@register_artifact("fault_compare",
                   title="Fault injection: accuracy and defenses under "
                         "crash / straggler / corrupt-update profiles")
def run(scale: str = "demo", seed: int = 0, dataset: str = "harbox",
        algorithms: list[str] | None = None,
        profiles: list[str] | None = None,
        case: tuple[str, ...] = ("computation",),
        scale_overrides: dict | None = None) -> list[dict]:
    algorithms = algorithms or ["sheterofl", "fedproto"]
    names = list(profiles or PROFILES)
    unknown = set(names) - set(PROFILES)
    if unknown:
        raise ValueError(f"unknown fault profiles {sorted(unknown)}; "
                         f"known: {sorted(PROFILES)}")

    rows = []
    for name in algorithms:
        clean_acc = None
        for profile in names:
            spec = RunSpec(
                algorithm=name, dataset=dataset,
                constraints=ConstraintSpec(constraints=case,
                                           faults=PROFILES[profile]),
                scale=scale, scale_overrides=scale_overrides or {},
                seed=seed)
            history = execute_spec(spec).history
            dropped = history.dropped_counts()
            crashed = dropped.pop("crash", 0)
            quarantined = dropped.pop("quarantined", 0)
            final = history.final_accuracy
            if profile == "clean":
                clean_acc = final
            rows.append({
                "profile": profile, "algorithm": name,
                "rounds": len(history.records),
                "final_acc": round(final, 4),
                "delta_acc": (None if clean_acc is None
                              else round(final - clean_acc, 4)),
                "crashed": crashed,
                "quarantined": quarantined,
                "dropped_other": sum(dropped.values()),
                "total_s": round(history.total_sim_time_s, 1),
            })
    return rows


if __name__ == "__main__":
    import sys

    from repro.__main__ import main
    raise SystemExit(main(["fault_compare", *sys.argv[1:]]))
