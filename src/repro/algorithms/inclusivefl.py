"""InclusiveFL (Liu et al., KDD'22): layer-wise pruning + momentum distillation.

Clients own the bottom fraction of the network (single deepest head);
aggregation averages each block among its holders.  InclusiveFL's *momentum
knowledge distillation* then injects a scaled share of the deeper blocks'
aggregated update into the adjacent shallower block, so clients that never
hold the deep layers still benefit from what those layers learned.

The paper formulates the injection between same-shaped transformer layers;
in CNN stages only same-shaped neighbours (non-downsampling blocks within a
stage) are eligible, so the transfer applies exactly where shapes match and
is a documented no-op elsewhere (see DESIGN.md).
"""

from __future__ import annotations

import re

from ..models.base import SliceableModel
from .base import DEPTH_LEVELS, MHFLAlgorithm
from .depthfl import _depth_overrides

__all__ = ["InclusiveFL"]

_BLOCK_RE = re.compile(r"^stages\.(\d+)\.(\d+)\.(.+)$")


class InclusiveFL(MHFLAlgorithm):
    """Depth heterogeneity with momentum distillation across blocks."""

    name = "inclusivefl"
    level = "depth"
    slicing_mode = "prefix"
    # Shallow clients carry a head at their own top stage, so the server
    # model must own a head at every stage boundary.
    base_model_overrides = {"head_mode": "all"}

    #: momentum-distillation strength (beta in the paper).
    momentum_beta: float = 0.3

    @classmethod
    def variant_space(cls, base_model: SliceableModel) -> dict[str, dict]:
        return {f"d{f:.2f}": _depth_overrides(base_model, f, "deepest")
                for f in DEPTH_LEVELS}

    def post_aggregate(self, old_state: dict, round_index: int) -> None:
        """Inject deeper-block updates into same-shaped shallower neighbours."""
        beta = self.momentum_beta
        if beta <= 0:
            return
        # Group parameter names by (stage, block).
        blocks: dict[tuple[int, int], dict[str, str]] = {}
        for name in self.global_state:
            match = _BLOCK_RE.match(name)
            if match:
                stage, block = int(match.group(1)), int(match.group(2))
                blocks.setdefault((stage, block), {})[match.group(3)] = name
        for (stage, block), suffixes in sorted(blocks.items()):
            deeper = blocks.get((stage, block + 1))
            if deeper is None:
                continue
            for suffix, name in suffixes.items():
                deep_name = deeper.get(suffix)
                if deep_name is None:
                    continue
                current = self.global_state[name]
                update = self.global_state[deep_name] - old_state[deep_name]
                if update.shape == current.shape:
                    current += beta * update
