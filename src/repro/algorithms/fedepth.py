"""FeDepth (Zhang et al., 2023): memory-adaptive depth-wise training.

Every client holds the *full* network but fine-tunes only a contiguous
segment of stages per round (plus the classifier head), sized so the
optimiser state and segment activations fit the client's memory; the segment
slides across rounds so all blocks are eventually trained.  Clients upload
only the segment they trained.

This gives FeDepth its signature profile from Table I: computation cost stays
close to the full model (the forward always runs end to end) while training
memory is low — which is why the paper finds it weak under the computation
constraint but strong under the memory constraint.
"""

from __future__ import annotations

import numpy as np

from ..hw.cost_model import CostModel, DEFAULT_COST_MODEL
from ..hw.flops import measure_model
from ..hw.model_pool import ModelPool, PoolEntry
from ..models.base import SliceableModel
from .base import ClientContext, MHFLAlgorithm

__all__ = ["FeDepth"]


def _segment_size(key: str) -> int:
    if not key.startswith("seg"):
        raise ValueError(f"not a FeDepth pool key: {key!r}")
    return int(key[3:])


class FeDepth(MHFLAlgorithm):
    """Full model, sliding trainable stage segment."""

    name = "fedepth"
    level = "depth"
    slicing_mode = "prefix"

    @classmethod
    def variant_space(cls, base_model: SliceableModel) -> dict[str, dict]:
        # All levels share the full architecture; the capacity level is the
        # number of simultaneously-trainable stages (encoded in the key).
        return {f"seg{n}": {} for n in range(1, base_model.total_stages + 1)}

    @classmethod
    def build_pool(cls, base_model: SliceableModel,
                   cost_model: CostModel = DEFAULT_COST_MODEL) -> ModelPool:
        """Measure each segment size with the complement frozen."""
        total = base_model.total_stages
        entries = []
        for key in cls.variant_space(base_model):
            segment = _segment_size(key)
            probe = base_model.variant()
            probe.set_trainable_stages(range(total - segment, total),
                                       train_stem=(segment == total))
            stats = measure_model(probe)
            entries.append(PoolEntry(key=key, proportion=segment / total,
                                     overrides={}, stats=stats))
        return ModelPool(base_model, entries, cost_model)

    # ------------------------------------------------------------------
    def _segment_stages(self, ctx: ClientContext, round_index: int) -> range:
        total = self.base_model.total_stages
        segment = min(_segment_size(ctx.entry.key), total)
        positions = total - segment + 1
        start = (round_index + ctx.client_id) % positions
        return range(start, start + segment)

    def prepare_client_model(self, model: SliceableModel, ctx: ClientContext,
                             round_index: int) -> None:
        stages = self._segment_stages(ctx, round_index)
        model.set_trainable_stages(stages, train_stem=(stages.start == 0))

    def upload_filter(self, model: SliceableModel,
                      ctx: ClientContext) -> set[str] | None:
        """Upload only the trained segment (params + its BN buffers + heads)."""
        trainable = {name for name, p in model.named_parameters()
                     if p.requires_grad}
        stage_prefixes = tuple({f"stages.{name.split('.')[1]}."
                                for name in trainable
                                if name.startswith("stages.")})
        stem_trained = any(name.startswith("stem.") for name in trainable)
        keep = set(trainable)
        for name in model.state_dict():
            if stage_prefixes and name.startswith(stage_prefixes):
                keep.add(name)                      # BN buffers of the segment
            if name.startswith("heads."):
                keep.add(name)
            if stem_trained and name.startswith("stem."):
                keep.add(name)
        return keep

    def client_payload_bytes(self, ctx: ClientContext) -> tuple[float, float]:
        # Download the full model, upload only the trained segment.
        return (ctx.entry.stats.param_bytes,
                ctx.entry.stats.trainable_param_bytes)
