"""FedProto (Tan et al., AAAI'22): federated prototype learning.

Topology heterogeneity: every client keeps a *personal* model of its own
architecture (family member assigned by the constraint case); only class
prototypes — mean embeddings per class in a shared projection space — are
exchanged.  The local objective is cross-entropy plus an L2 pull of each
sample's embedding toward the global prototype of its class.

Because no global model exists, the paper's "global accuracy" is realised as
the mean accuracy of the evaluation clients' personal models on the global
test set (stability then reads off the same per-device accuracies).
"""

from __future__ import annotations

import numpy as np

from .. import autograd as ag
from .. import nn
from ..models.base import SliceableModel
from ..models.zoo import MODEL_FAMILIES
from .base import (ClientContext, ClientUpdate, MHFLAlgorithm, RoundOutcome,
                   WIDTH_LEVELS)
from ..fl.client import train_local
from ..fl.evaluate import accuracy
from ..fl.seeding import reseed_dropout

__all__ = ["FedProto", "ProtoModel", "topology_variant_space"]


def topology_variant_space(base_model: SliceableModel) -> dict[str, dict]:
    """Family members as capacity levels; width fallback outside families.

    The customized Transformer has no published family, so its "topologies"
    are width-scaled customisations — matching the paper's note that some
    methods/configurations do not apply to every task.
    """
    arch = base_model._build_kwargs.get("arch")
    for members in MODEL_FAMILIES.values():
        if arch in members:
            return {name: {"arch": name} for name in members}
    return {f"x{m:.2f}": {"width_mult": m} for m in WIDTH_LEVELS}


class ProtoModel(nn.Module):
    """Personal model: backbone + projection into the shared prototype space."""

    def __init__(self, backbone: SliceableModel, proto_dim: int,
                 num_classes: int, seed: int):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.backbone = backbone
        self.proj = nn.Linear(backbone.feature_dim, proto_dim, rng,
                              scale_in=False, scale_out=False)
        self.head = nn.Linear(proto_dim, num_classes, rng,
                              scale_in=False, scale_out=False)
        self.pool_kind = backbone.pool_kind

    def embed(self, x) -> ag.Tensor:
        return self.proj(self.backbone.features(x))

    def forward(self, x) -> ag.Tensor:
        return self.head(ag.relu(self.embed(x)))

    def trainable_parameters(self):
        return [p for p in self.parameters() if p.requires_grad]


class FedProto(MHFLAlgorithm):
    """Prototype aggregation across heterogeneous architectures."""

    name = "fedproto"
    level = "topology"
    supports_nlp = True

    #: prototype-space dimension and regulariser weight (lambda).
    proto_dim: int = 32
    proto_weight: float = 1.0

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._personal: dict[int, ProtoModel] = {}
        #: trained-but-not-yet-absorbed states, keyed by client id (filled
        #: by run_client, drained by pack_client_state; per-client keys, so
        #: concurrent worker threads never collide).
        self._trained: dict[int, dict] = {}
        self.global_protos = np.zeros(
            (self.dataset.num_classes, self.proto_dim), dtype=np.float32)
        self._proto_valid = np.zeros(self.dataset.num_classes, dtype=bool)

    @classmethod
    def variant_space(cls, base_model: SliceableModel) -> dict[str, dict]:
        return topology_variant_space(base_model)

    # ------------------------------------------------------------------
    def _build_personal(self, ctx: ClientContext) -> ProtoModel:
        """A freshly-initialised personal model (deterministic per client)."""
        backbone = ctx.entry.build(self.base_model)
        return ProtoModel(backbone, self.proto_dim,
                          self.dataset.num_classes,
                          seed=1000 + ctx.client_id)

    def personal_model(self, ctx: ClientContext) -> ProtoModel:
        """The coordinator's canonical copy of one client's deployed model.

        Only :meth:`apply_client_state` advances it — ``run_client`` trains
        a detached clone, so a client's deployed model updates exactly when
        its upload is accepted, identically under every executor (an
        in-flight client evaluated mid-round still shows its old model).
        """
        model = self._personal.get(ctx.client_id)
        if model is None:
            model = self._build_personal(ctx)
            self._personal[ctx.client_id] = model
        return model

    def _proto_loss(self, model: ProtoModel,
                    protos: np.ndarray | None = None,
                    valid: np.ndarray | None = None):
        weight = self.proto_weight
        protos = self.global_protos if protos is None else protos
        valid = self._proto_valid if valid is None else valid

        def loss(m, xb, yb):
            emb = model.embed(xb)
            total = ag.cross_entropy(model.head(ag.relu(emb)), yb)
            mask = valid[yb]
            if weight > 0 and mask.any():
                targets = protos[yb]
                # Pull embeddings of valid classes toward their prototypes.
                diff = emb - ag.Tensor(targets)
                per_sample = (diff * diff).mean(axis=1)
                total = total + weight * (per_sample * ag.Tensor(
                    mask.astype(np.float32))).mean()
            return total

        return loss

    # ------------------------------------------------------------------
    # Work-item transport: FedProto's downlink is the global prototypes
    # plus the client's own personal-model state (personal models persist
    # across rounds on the coordinator; a pool worker's replica is stale
    # until this broadcast refreshes it).  The uplink hands the trained
    # personal state back.
    # ------------------------------------------------------------------
    def pack_round_broadcast(self, version: int) -> dict:
        return {"global_protos": self.global_protos.copy(),
                "proto_valid": self._proto_valid.copy()}

    def pack_client_broadcast(self, client_id: int, version: int) -> dict:
        ctx = self.clients[int(client_id)]
        return {"personal": self.personal_model(ctx).state_dict()}

    def pack_client_state(self, client_id: int) -> dict | None:
        return {"personal": self._trained.pop(int(client_id))}

    def apply_client_state(self, client_id: int, state: dict | None) -> None:
        if state is not None:
            ctx = self.clients[int(client_id)]
            self.personal_model(ctx).load_state_dict(state["personal"])

    def run_client(self, client_id: int, version: int, rng,
                   broadcast: dict | None = None) -> ClientUpdate:
        ctx = self.clients[int(client_id)]
        # Train a detached clone; the canonical personal model advances via
        # apply_client_state when the upload is accepted (see
        # personal_model's docstring for why the split matters).
        model = self._build_personal(ctx)
        if broadcast is None:
            model.load_state_dict(self.personal_model(ctx).state_dict())
            protos, valid = None, None
        else:
            model.load_state_dict(broadcast["personal"])
            protos = broadcast["global_protos"]
            valid = broadcast["proto_valid"]
        reseed_dropout(model, rng)
        loss = train_local(model, ctx.shard.x, ctx.shard.y,
                           self.train_config, rng,
                           loss_fn=self._proto_loss(model, protos, valid))
        self._trained[ctx.client_id] = model.state_dict()
        # Local prototypes: per-class embedding sums + member counts.
        with ag.no_grad():
            model.eval()
            emb = model.embed(ctx.shard.x).data
            model.train()
        proto_sums = np.zeros_like(self.global_protos)
        proto_counts = np.zeros(self.dataset.num_classes)
        for cls in np.unique(ctx.shard.y):
            members = emb[ctx.shard.y == cls]
            proto_sums[cls] = members.sum(axis=0)
            proto_counts[cls] = len(members)
        return ClientUpdate(
            client_id=ctx.client_id, version=version, train_loss=loss,
            round_time_s=self.client_round_time_s(ctx), weight=1.0,
            payload=(proto_sums, proto_counts))

    def ingest(self, updates, round_index: int, rng) -> RoundOutcome:
        proto_sums = np.zeros_like(self.global_protos)
        proto_counts = np.zeros(self.dataset.num_classes)
        slowest = 0.0
        losses = []
        for update in updates:
            sums, counts = update.payload
            scale = update.weight * update.discount
            proto_sums += sums * scale
            proto_counts += counts * scale
            slowest = max(slowest, update.round_time_s)
            losses.append(update.train_loss)
        updated = proto_counts > 0
        self.global_protos[updated] = (
            proto_sums[updated] / proto_counts[updated, None]).astype(np.float32)
        self._proto_valid |= updated
        return RoundOutcome(
            slowest_client_s=slowest,
            mean_train_loss=float(np.mean(losses)) if losses else 0.0)

    # ------------------------------------------------------------------
    # FedProto has no global_state to speak of; its resumable server-side
    # state is the prototype table + which classes are valid + every
    # materialised personal model (checkpoint keys become strings in the
    # JSON codec, hence the int() on restore).
    def checkpoint_state(self) -> dict:
        return {
            "global_protos": self.global_protos.copy(),
            "proto_valid": self._proto_valid.copy(),
            "personal": {cid: model.state_dict()
                         for cid, model in self._personal.items()},
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        self.global_protos = np.asarray(state["global_protos"],
                                        dtype=np.float32)
        self._proto_valid = np.asarray(state["proto_valid"], dtype=bool)
        for cid, personal_state in state["personal"].items():
            ctx = self.clients[int(cid)]
            self.personal_model(ctx).load_state_dict(personal_state)

    # ------------------------------------------------------------------
    def client_payload_bytes(self, ctx: ClientContext) -> tuple[float, float]:
        proto_bytes = self.global_protos.nbytes
        return proto_bytes, proto_bytes

    def _eval_ids(self) -> list[int]:
        ids = sorted(self.clients)
        stride = max(1, len(ids) // self.eval_clients)
        return ids[::stride][:self.eval_clients]

    def per_device_accuracies(self) -> list[float]:
        accs = []
        for client_id in self._eval_ids():
            model = self.personal_model(self.clients[client_id])
            accs.append(accuracy(model, self.x_eval, self.y_eval))
        return accs

    def evaluate_global(self) -> float:
        return float(np.mean(self.per_device_accuracies()))
