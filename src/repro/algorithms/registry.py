"""Algorithm registry (Table II's algorithm column)."""

from __future__ import annotations

from .base import MHFLAlgorithm
from .depthfl import DepthFL
from .fedavg import FedAvgSmallest
from .fedepth import FeDepth
from .fedet import FedET
from .fedproto import FedProto
from .fedrolex import FedRolex
from .fjord import Fjord
from .heterofl import SHeteroFL
from .inclusivefl import InclusiveFL

__all__ = ["ALGORITHMS", "MHFL_ALGORITHMS", "get_algorithm",
           "algorithms_by_level"]

#: Every algorithm, including the homogeneous effectiveness baseline.
ALGORITHMS: dict[str, type[MHFLAlgorithm]] = {
    cls.name: cls for cls in (
        FedAvgSmallest,
        Fjord, SHeteroFL, FedRolex,           # width
        FeDepth, InclusiveFL, DepthFL,        # depth
        FedProto, FedET,                      # topology
    )
}

#: The eight heterogeneous methods evaluated in the paper's figures.
MHFL_ALGORITHMS = [name for name, cls in ALGORITHMS.items()
                   if cls.level != "homogeneous"]


def get_algorithm(name: str) -> type[MHFLAlgorithm]:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise ValueError(f"unknown algorithm {name!r}; "
                         f"known: {sorted(ALGORITHMS)}") from None


def algorithms_by_level(level: str) -> list[str]:
    """Algorithm names at one heterogeneity level (Figure 2's grouping)."""
    names = [name for name, cls in ALGORITHMS.items() if cls.level == level]
    if not names:
        raise ValueError(f"unknown heterogeneity level {level!r}")
    return names
