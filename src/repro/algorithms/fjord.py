"""Fjord (Horvath et al., NeurIPS'21): Ordered Dropout width heterogeneity.

Clients own nested prefix sub-models; at training time a client samples a
width *at or below its own budget* and trains that slice, so smaller prefixes
are trained by every larger client too (the "ordered dropout" distribution).
We sample the width once per round (the paper samples per step; per-round
sampling keeps the numpy simulation tractable and preserves the training
distribution across rounds — see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from .base import ClientContext, MHFLAlgorithm

__all__ = ["Fjord"]


class Fjord(MHFLAlgorithm):
    """Ordered-dropout nested width training."""

    name = "fjord"
    level = "width"
    slicing_mode = "prefix"

    def client_overrides(self, ctx: ClientContext, round_index: int,
                         rng: np.random.Generator) -> dict:
        overrides = dict(ctx.entry.overrides)
        budget = overrides.get("width_mult", 1.0)
        if self.pool is not None:
            candidates = sorted({e.overrides.get("width_mult", 1.0)
                                 for e in self.pool.entries
                                 if e.overrides.get("width_mult", 1.0) <= budget})
        else:
            candidates = [budget]
        overrides["width_mult"] = candidates[rng.integers(len(candidates))]
        return overrides
