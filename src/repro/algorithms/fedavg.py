"""FedAvg on the smallest feasible model — the paper's effectiveness baseline.

"A simple resource-aware homogeneous baseline (i.e., training the smallest
homogeneous model across all heterogeneous devices)": every client trains the
same model, sized so the most constrained participant can run it.  The
*effectiveness* metric of every MHFL method is its final accuracy minus this
baseline's.
"""

from __future__ import annotations

from ..fl.evaluate import accuracy
from ..models.slicing import extract_substate, width_index_maps
from .base import MHFLAlgorithm

__all__ = ["FedAvgSmallest"]


class FedAvgSmallest(MHFLAlgorithm):
    """Homogeneous FedAvg at the smallest feasible capacity level."""

    name = "fedavg_smallest"
    level = "homogeneous"
    slicing_mode = "prefix"

    # variant_space inherits the width levels so the constraint cases can
    # determine each client's feasible set; the scenario then assigns every
    # client the *minimum* feasible entry (see constraints.assignment).

    def _common_entry(self):
        entries = {self.clients[cid].entry.key: self.clients[cid].entry
                   for cid in sorted(self.clients)}
        if len(entries) != 1:
            raise ValueError(
                "FedAvgSmallest expects a homogeneous assignment; got levels "
                f"{sorted(entries)}")
        return next(iter(entries.values()))

    def evaluate_global(self) -> float:
        """Evaluate the (single) deployed variant, not the full server model.

        With a homogeneous x<1 assignment only the trained slice of the
        global state is meaningful; evaluating the full model would mix
        trained and never-touched coordinates.
        """
        entry = self._common_entry()
        model = entry.build(self.base_model)
        model_state_shapes = {k: v.shape for k, v in model.state_dict().items()}
        maps = width_index_maps(self.global_shapes, model_state_shapes,
                                self.scale_axes, mode="prefix")
        model.load_state_dict(extract_substate(self.global_state, maps))
        return accuracy(model, self.x_eval, self.y_eval)
