"""SHeteroFL (Diao et al., ICLR'21 HeteroFL with static slimmable assignment).

Each client statically owns the prefix slice matching its capacity level;
aggregation is the per-coordinate count-weighted mean over the clients that
hold each coordinate (HeteroFL's nested aggregation rule) — implemented by
the shared machinery in :class:`~repro.algorithms.base.MHFLAlgorithm`.
"""

from __future__ import annotations

from .base import MHFLAlgorithm

__all__ = ["SHeteroFL"]


class SHeteroFL(MHFLAlgorithm):
    """Static slimmable HeteroFL: the canonical width-heterogeneity method."""

    name = "sheterofl"
    level = "width"
    slicing_mode = "prefix"
