"""Fed-ET (Cho et al., IJCAI'22): ensemble knowledge transfer.

Topology heterogeneity with a server-side model: clients train personal
models of their own architectures; the server collects their predictions on
an unlabeled public transfer set, forms a confidence-weighted consensus, and
distils it into the server model (weighted consensus distillation).  The
consensus is also sent back so clients regularise toward it during local
training (the transfer-back path).

Global accuracy is the server model's accuracy — the cleanest realisation of
the paper's "final federated model" for the topology level.
"""

from __future__ import annotations

import numpy as np

from .. import autograd as ag
from ..fl.client import train_local
from ..fl.evaluate import accuracy
from ..fl.seeding import reseed_dropout
from ..models.base import SliceableModel
from .base import ClientContext, ClientUpdate, MHFLAlgorithm, RoundOutcome
from .fedproto import topology_variant_space

__all__ = ["FedET"]


class FedET(MHFLAlgorithm):
    """Server-model ensemble distillation across heterogeneous clients."""

    name = "fedet"
    level = "topology"

    #: size of the unlabeled public transfer set.
    public_size: int = 128
    #: server distillation steps per round and learning rate.
    server_steps: int = 10
    server_lr: float = 2e-3
    #: weight of the client-side consensus regulariser (transfer back).
    transfer_weight: float = 0.3

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._personal: dict[int, SliceableModel] = {}
        #: trained-but-not-yet-absorbed states (run_client fills,
        #: pack_client_state drains; per-client keys are thread-safe).
        self._trained: dict[int, dict] = {}
        # Server model: the largest family member.
        space = self.variant_space(self.base_model)
        largest_key = list(space)[-1]
        self.server_model = self.base_model.variant(**space[largest_key])
        # Public transfer set: unlabeled samples from the task distribution.
        rng = np.random.default_rng(17)
        take = min(self.public_size, self.dataset.num_train)
        idx = rng.choice(self.dataset.num_train, size=take, replace=False)
        self.x_public = self.dataset.x_train[idx]
        self._consensus: np.ndarray | None = None

    @classmethod
    def variant_space(cls, base_model: SliceableModel) -> dict[str, dict]:
        return topology_variant_space(base_model)

    # ------------------------------------------------------------------
    def _build_personal(self, ctx: ClientContext) -> SliceableModel:
        """A freshly-initialised personal model (deterministic per client)."""
        model = ctx.entry.build(self.base_model)
        return model.variant(seed=2000 + ctx.client_id)

    def personal_model(self, ctx: ClientContext) -> SliceableModel:
        """The coordinator's canonical copy of one client's deployed model
        (advanced only by :meth:`apply_client_state` — ``run_client``
        trains a detached clone, so state lands when the upload does,
        identically under every executor)."""
        model = self._personal.get(ctx.client_id)
        if model is None:
            model = self._build_personal(ctx)
            self._personal[ctx.client_id] = model
        return model

    def _client_loss(self, model: SliceableModel,
                     rng: np.random.Generator,
                     consensus: np.ndarray | None):
        mu = self.transfer_weight
        x_public = self.x_public

        def loss(m, xb, yb):
            total = ag.cross_entropy(m(xb), yb)
            if consensus is not None and mu > 0:
                pick = rng.integers(0, len(x_public), size=min(16, len(x_public)))
                total = total + mu * ag.soft_cross_entropy(
                    m(x_public[pick]), consensus[pick])
            return total

        return loss

    # ------------------------------------------------------------------
    # Work-item transport: the downlink is the current consensus plus the
    # client's persistent personal-model state; the uplink returns the
    # trained personal state (the server model and its distillation stay
    # on the coordinator — they belong to ``ingest``).
    # ------------------------------------------------------------------
    def pack_round_broadcast(self, version: int) -> dict:
        return {"consensus": (None if self._consensus is None
                              else self._consensus.copy())}

    def pack_client_broadcast(self, client_id: int, version: int) -> dict:
        ctx = self.clients[int(client_id)]
        return {"personal": self.personal_model(ctx).state_dict()}

    def pack_client_state(self, client_id: int) -> dict | None:
        return {"personal": self._trained.pop(int(client_id))}

    def apply_client_state(self, client_id: int, state: dict | None) -> None:
        if state is not None:
            ctx = self.clients[int(client_id)]
            self.personal_model(ctx).load_state_dict(state["personal"])

    def run_client(self, client_id: int, version: int, rng,
                   broadcast: dict | None = None) -> ClientUpdate:
        ctx = self.clients[int(client_id)]
        # Train a detached clone; the canonical personal model advances via
        # apply_client_state when the upload is accepted.
        model = self._build_personal(ctx)
        if broadcast is None:
            model.load_state_dict(self.personal_model(ctx).state_dict())
            consensus = self._consensus
        else:
            model.load_state_dict(broadcast["personal"])
            consensus = broadcast["consensus"]
        reseed_dropout(model, rng)
        loss = train_local(model, ctx.shard.x, ctx.shard.y,
                           self.train_config, rng,
                           loss_fn=self._client_loss(model, rng, consensus))
        self._trained[ctx.client_id] = model.state_dict()
        # Client predictions on the public transfer set; confidence
        # weighting makes more certain members count more.
        model.eval()
        with ag.no_grad():
            probs = ag.softmax(model(self.x_public)).data
        model.train()
        return ClientUpdate(
            client_id=ctx.client_id, version=version, train_loss=loss,
            round_time_s=self.client_round_time_s(ctx),
            weight=float(probs.max(axis=1).mean()), payload=probs)

    def ingest(self, updates, round_index: int, rng) -> RoundOutcome:
        updates = list(updates)  # may arrive as a single-pass generator
        if not updates:
            return RoundOutcome(slowest_client_s=0.0, mean_train_loss=0.0)
        weights = np.asarray([u.weight * u.discount for u in updates])
        weights = weights / weights.sum()
        self._consensus = np.einsum("k,knc->nc", weights,
                                    np.stack([u.payload for u in updates]))
        self._distill_server(rng)
        return RoundOutcome(
            slowest_client_s=max(u.round_time_s for u in updates),
            mean_train_loss=float(np.mean([u.train_loss for u in updates])))

    def _distill_server(self, rng: np.random.Generator) -> None:
        from .. import nn
        optimizer = nn.Adam(self.server_model.parameters(), lr=self.server_lr)
        for _ in range(self.server_steps):
            pick = rng.integers(0, len(self.x_public),
                                size=min(32, len(self.x_public)))
            optimizer.zero_grad()
            loss = ag.soft_cross_entropy(self.server_model(self.x_public[pick]),
                                         self._consensus[pick])
            loss.backward()
            optimizer.step()

    # ------------------------------------------------------------------
    # Resumable server-side state: the distilled server model, the last
    # consensus, and every materialised personal model.  The public set and
    # the per-round Adam are derived (seeded / rebuilt fresh each round),
    # so they need no snapshot.
    def checkpoint_state(self) -> dict:
        return {
            "server_model": self.server_model.state_dict(),
            "consensus": (None if self._consensus is None
                          else self._consensus.copy()),
            "personal": {cid: model.state_dict()
                         for cid, model in self._personal.items()},
        }

    def restore_checkpoint_state(self, state: dict) -> None:
        self.server_model.load_state_dict(state["server_model"])
        consensus = state["consensus"]
        self._consensus = (None if consensus is None
                           else np.asarray(consensus))
        for cid, personal_state in state["personal"].items():
            ctx = self.clients[int(cid)]
            self.personal_model(ctx).load_state_dict(personal_state)

    # ------------------------------------------------------------------
    def client_payload_bytes(self, ctx: ClientContext) -> tuple[float, float]:
        logits_bytes = self.public_size * self.dataset.num_classes * 4
        # Down: consensus logits; up: client logits on the public set.
        return float(logits_bytes), float(logits_bytes)

    def evaluate_global(self) -> float:
        return accuracy(self.server_model, self.x_eval, self.y_eval)

    def per_device_accuracies(self) -> list[float]:
        ids = sorted(self.clients)
        stride = max(1, len(ids) // self.eval_clients)
        accs = []
        for client_id in ids[::stride][:self.eval_clients]:
            model = self.personal_model(self.clients[client_id])
            accs.append(accuracy(model, self.x_eval, self.y_eval))
        return accs
