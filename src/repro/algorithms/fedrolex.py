"""FedRolex (Alam et al., NeurIPS'22): rolling sub-model extraction.

Identical to HeteroFL except the sub-model occupies a *rolling window* of
channels whose offset advances by one every round (with wrap-around), so
every global coordinate is trained over time instead of only the prefix —
FedRolex's fix for HeteroFL's untrained-tail problem.
"""

from __future__ import annotations

from .base import MHFLAlgorithm

__all__ = ["FedRolex"]


class FedRolex(MHFLAlgorithm):
    """Rolling-window width heterogeneity."""

    name = "fedrolex"
    level = "width"
    slicing_mode = "rolling"

    def rolling_shift(self, round_index: int) -> int:
        return round_index
