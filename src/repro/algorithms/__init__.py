"""The eight MHFL algorithms + homogeneous baseline (Table II)."""

from .base import (ClientContext, ClientUpdate, RoundOutcome, MHFLAlgorithm,
                   WIDTH_LEVELS, DEPTH_LEVELS, assign_levels_uniformly)
from .fedavg import FedAvgSmallest
from .fjord import Fjord
from .heterofl import SHeteroFL
from .fedrolex import FedRolex
from .depthfl import DepthFL
from .inclusivefl import InclusiveFL
from .fedepth import FeDepth
from .fedproto import FedProto, ProtoModel
from .fedet import FedET
from .registry import (ALGORITHMS, MHFL_ALGORITHMS, get_algorithm,
                       algorithms_by_level)

__all__ = [
    "ClientContext", "ClientUpdate", "RoundOutcome", "MHFLAlgorithm",
    "WIDTH_LEVELS", "DEPTH_LEVELS", "assign_levels_uniformly",
    "FedAvgSmallest", "Fjord", "SHeteroFL", "FedRolex",
    "DepthFL", "InclusiveFL", "FeDepth", "FedProto", "ProtoModel", "FedET",
    "ALGORITHMS", "MHFL_ALGORITHMS", "get_algorithm", "algorithms_by_level",
]
