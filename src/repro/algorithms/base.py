"""Algorithm interface + shared machinery for parameter-averaging MHFL.

Every algorithm binds together:

* a **base model** — the server-side full model (its state dict is the
  global state for parameter-averaging methods);
* **clients** — shard + sampled device capability + the pool entry assigned
  by the active constraint case;
* a **variant space** — the capacity levels the method offers (width
  multipliers, depth fractions, family members), measured into a
  :class:`~repro.hw.ModelPool` that the constraint cases select from;
* hooks — ``build_client_model`` (how a capacity level becomes a trainable
  model + index maps), ``local_loss_fn`` (algorithm-specific objectives) and
  ``post_aggregate`` (e.g. InclusiveFL's momentum distillation).

The simulated clock charges each sampled client with *nominal* local
training over its full shard (per the cost model) even when ``max_batches``
caps the actual CPU work — the simulation runs a scaled-down computation but
accounts paper-scale time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from .. import autograd as ag
from ..data.dataset import FederatedDataset, Subset
from ..fl.client import LocalTrainConfig, train_local
from ..fl.evaluate import accuracy
from ..fl.seeding import reseed_dropout
from ..hw.cost_model import CostModel, DEFAULT_COST_MODEL
from ..hw.ima import ClientCapability
from ..hw.model_pool import ModelPool, PoolEntry
from ..models.base import SliceableModel, depth_variant_of
from ..models.slicing import (extract_substate, finalize_mean,
                              scatter_accumulate, width_index_maps,
                              zeros_like_state)

__all__ = ["ClientContext", "ClientUpdate", "RoundOutcome", "MHFLAlgorithm",
           "WIDTH_LEVELS", "DEPTH_LEVELS", "assign_levels_uniformly"]

#: The paper's four capacity proportions (Table II).
WIDTH_LEVELS = (1.0, 0.75, 0.5, 0.25)
DEPTH_LEVELS = (1.0, 0.75, 0.5, 0.25)


@dataclass
class ClientContext:
    """One client's shard, device and assigned capacity level."""

    client_id: int
    shard: Subset
    capability: ClientCapability
    entry: PoolEntry

    @property
    def num_samples(self) -> int:
        return len(self.shard)


@dataclass
class RoundOutcome:
    """What one federated round produced (consumed by the simulator)."""

    slowest_client_s: float
    mean_train_loss: float
    extras: dict = field(default_factory=dict)


@dataclass
class ClientUpdate:
    """One client's finished local round, in transit to the server.

    ``payload`` is algorithm-specific (sliced state dict + index maps for
    parameter-averaging methods, prototypes for FedProto, public-set
    predictions for Fed-ET) and is only interpreted by the same algorithm's
    :meth:`MHFLAlgorithm.ingest`.  ``discount`` is 1.0 for synchronous
    execution; asynchronous aggregation policies lower it for stale updates
    before handing the buffer to ``ingest``.
    """

    client_id: int
    #: global model version (round index) the client trained from.
    version: int
    train_loss: float
    #: the client's full download + train + upload time, seconds.
    round_time_s: float
    #: aggregation weight (sample count for parameter averaging).
    weight: float
    payload: object
    #: staleness discount applied by the aggregation policy (1.0 = fresh).
    discount: float = 1.0
    #: versions the global model advanced while this update was in flight
    #: (stamped by the aggregation policy at aggregation time).
    staleness: int = 0


def assign_levels_uniformly(pool: ModelPool,
                            fleet: Sequence[ClientCapability],
                            dataset: FederatedDataset,
                            shards: Sequence[np.ndarray]) -> list[ClientContext]:
    """Constraint-free assignment: cycle capacity levels across clients.

    This reproduces the conventional MHFL setup the paper criticises (equal
    proportions of x1.0 / x0.75 / x0.5 / x0.25 clients); the constraint cases
    in :mod:`repro.constraints` replace it with budget-driven assignment.
    """
    entries = list(pool.entries)
    contexts = []
    for position, capability in enumerate(fleet):
        entry = entries[position % len(entries)]
        contexts.append(ClientContext(
            client_id=capability.client_id,
            shard=dataset.subset(shards[position]),
            capability=capability, entry=entry))
    return contexts


class MHFLAlgorithm:
    """Base class: coordinate-wise averaged MHFL (width & depth methods)."""

    #: registry name, heterogeneity level, and slicing mode.
    name: str = "base"
    level: str = "width"              # "width" | "depth" | "topology" | "homogeneous"
    slicing_mode: str = "prefix"      # "prefix" | "rolling"
    #: whether NLP tasks are supported (the paper omits some methods on NLP).
    supports_nlp: bool = True

    #: overrides applied when the scenario builds the server-side base model
    #: (DepthFL needs auxiliary heads at every stage boundary).
    base_model_overrides: dict = {}

    #: serialised RunSpec this instance was built from (set by the
    #: experiment runner; ``None`` for hand-built scenarios).  Process-pool
    #: executors use it to rebuild an identical replica per worker; it is
    #: cleared for ablation-mutated runs, whose live object diverges from
    #: what the spec would rebuild.
    spec_payload: dict | None = None

    def __init__(self, base_model: SliceableModel, dataset: FederatedDataset,
                 clients: Sequence[ClientContext],
                 train_config: LocalTrainConfig | None = None,
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 eval_max_samples: int = 512, eval_clients: int = 8,
                 pool: ModelPool | None = None):
        self.base_model = base_model
        self.dataset = dataset
        self.clients = {ctx.client_id: ctx for ctx in clients}
        self.train_config = train_config or LocalTrainConfig()
        self.cost_model = cost_model
        self.eval_clients = eval_clients
        self.pool = pool

        self.global_state = base_model.state_dict()
        self.global_shapes = {k: v.shape for k, v in self.global_state.items()}
        self.scale_axes = base_model.state_scale_axes()

        cap = min(eval_max_samples, dataset.num_test)
        self.x_eval = dataset.x_test[:cap]
        self.y_eval = dataset.y_test[:cap]
        self._eval_model: SliceableModel | None = None

    # ------------------------------------------------------------------
    # Identity / plumbing
    # ------------------------------------------------------------------
    @property
    def dataset_name(self) -> str:
        return self.dataset.name

    @property
    def num_clients(self) -> int:
        return len(self.clients)

    # ------------------------------------------------------------------
    # Variant space / pool
    # ------------------------------------------------------------------
    @classmethod
    def variant_space(cls, base_model: SliceableModel) -> dict[str, dict]:
        """Capacity levels as ``key -> constructor overrides``."""
        return {f"x{m:.2f}": {"width_mult": m} for m in WIDTH_LEVELS}

    @classmethod
    def build_pool(cls, base_model: SliceableModel,
                   cost_model: CostModel = DEFAULT_COST_MODEL) -> ModelPool:
        """Measure the variant space into a model pool."""
        return ModelPool.from_variants(base_model,
                                       cls.variant_space(base_model),
                                       cost_model=cost_model)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def rolling_shift(self, round_index: int) -> int:
        """Window shift for rolling extraction (FedRolex overrides)."""
        return 0

    def client_overrides(self, ctx: ClientContext, round_index: int,
                         rng: np.random.Generator) -> dict:
        """Constructor overrides for this client's model this round."""
        return dict(ctx.entry.overrides)

    def build_client_model(self, ctx: ClientContext, round_index: int,
                           rng: np.random.Generator,
                           state: dict | None = None
                           ) -> tuple[SliceableModel, dict]:
        """Instantiate the client's variant and load its slice of the state.

        ``state`` is the global state to slice from; ``None`` reads the
        live coordinator state (executors pass the work item's broadcast
        copy instead, so training never races coordinator aggregation).
        """
        if state is None:
            state = self.global_state
        overrides = self.client_overrides(ctx, round_index, rng)
        model = self.base_model.variant(**overrides)
        maps = width_index_maps(
            self.global_shapes,
            {k: v.shape for k, v in model.state_dict().items()},
            self.scale_axes, mode=self.slicing_mode,
            shift=self.rolling_shift(round_index))
        model.load_state_dict(extract_substate(state, maps))
        self.prepare_client_model(model, ctx, round_index)
        return model, maps

    def prepare_client_model(self, model: SliceableModel, ctx: ClientContext,
                             round_index: int) -> None:
        """Post-load setup (FeDepth freezes a stage segment here)."""

    def local_loss_fn(self, ctx: ClientContext, model: SliceableModel):
        """Local objective; default cross-entropy on the deepest head."""
        return None  # train_local's default CE

    def post_aggregate(self, old_state: dict, round_index: int) -> None:
        """Called after the global state is refreshed (InclusiveFL hook)."""

    def upload_filter(self, model: SliceableModel,
                      ctx: ClientContext) -> set[str] | None:
        """State-dict names this client uploads (None = everything).

        FeDepth restricts the upload to the stage segment it actually
        trained, so frozen copies never dilute other clients' updates.
        """
        return None

    # ------------------------------------------------------------------
    # Cost accounting
    # ------------------------------------------------------------------
    def client_payload_bytes(self, ctx: ClientContext) -> tuple[float, float]:
        """(download, upload) bytes exchanged with the server per round."""
        payload = ctx.entry.stats.param_bytes
        return payload, payload

    def client_time_segments(self, ctx: ClientContext
                             ) -> tuple[float, float, float]:
        """(download_s, train_s, upload_s) — the event engine schedules the
        typed download/train/upload events from these."""
        device = ctx.capability.as_device()
        train = self.cost_model.training_time_s(
            ctx.entry.stats, device, num_samples=ctx.num_samples,
            local_epochs=self.train_config.local_epochs)
        down, up = self.client_payload_bytes(ctx)
        return (down / ctx.capability.downlink_bps, train,
                up / ctx.capability.uplink_bps)

    def client_round_time_s(self, ctx: ClientContext) -> float:
        down, train, up = self.client_time_segments(ctx)
        return train + (down + up)

    def fleet_round_time_quantile(self, quantile: float) -> float:
        """Fleet quantile of per-client round times under *this* algorithm's
        cost accounting (honours ``client_payload_bytes`` overrides — e.g.
        FedProto uploads prototypes, not parameters).  The canonical way to
        derive a binding round deadline for the event-driven runtime; see
        :meth:`repro.hw.CostModel.fleet_round_time_quantile` for the
        algorithm-free fleet-planning variant.
        """
        times = [self.client_round_time_s(self.clients[cid])
                 for cid in sorted(self.clients)]
        return float(np.quantile(times, quantile))

    # ------------------------------------------------------------------
    # The round, as per-client primitives
    # ------------------------------------------------------------------
    # ``run_client`` and ``ingest`` are the two halves every execution
    # policy composes: the legacy synchronous loop calls them back-to-back
    # through :meth:`run_round`, while the event-driven runtime runs clients
    # at dispatch time and ingests whatever survived availability, dropout
    # and deadline filtering — one code path for all eleven algorithms.
    #
    # ``run_client`` is a *pure* function of ``(broadcast, rng)``: it reads
    # no coordinator state that changes between rounds when a ``broadcast``
    # is supplied, and every random draw comes from the caller's ``rng``
    # (derived from ``(run_seed, round, client_id)`` by the execution
    # layer).  That purity is what lets :mod:`repro.fl.executor` run clients
    # in threads or processes with results bit-identical to the inline path.
    # ``pack_broadcast`` / ``pack_client_state`` / ``apply_client_state``
    # are the transport hooks: what the server sends down, what persistent
    # per-client state a worker must hand back, and how the coordinator
    # absorbs it.

    def pack_round_broadcast(self, version: int) -> dict:
        """The client-independent part of the downlink at ``version``.

        The base payload is a copy of the full global state dict — the
        worker slices it with the same index maps the inline path uses, so
        per-round random widths (Fjord) and rolling windows (FedRolex) need
        no coordinator-side replication.  Copying decouples the snapshot
        from in-place post-aggregation updates (InclusiveFL), which matters
        for buffered execution where dispatch and aggregation interleave.
        Synchronous dispatchers pack this **once per round** and share the
        (read-only) arrays across every client's work item.
        """
        return {"global_state": {k: v.copy()
                                 for k, v in self.global_state.items()}}

    def pack_client_broadcast(self, client_id: int, version: int) -> dict:
        """The per-client part of the downlink (FedProto/Fed-ET personal
        model state); empty for parameter-averaging methods."""
        return {}

    def pack_broadcast(self, client_id: int, version: int) -> dict:
        """Full picklable downlink for one client's work item (round part
        plus per-client part; the buffered policy uses this per dispatch,
        where every dispatch sees a different server version)."""
        return {**self.pack_round_broadcast(version),
                **self.pack_client_broadcast(client_id, version)}

    def pack_client_state(self, client_id: int) -> dict | None:
        """Persistent per-client state a worker must return to the
        coordinator after training (``None`` when the algorithm keeps no
        such state — parameter-averaging methods rebuild client models
        from the global state every round)."""
        return None

    def apply_client_state(self, client_id: int, state: dict | None) -> None:
        """Absorb a worker's returned per-client state (inverse of
        :meth:`pack_client_state`; no-op for stateless algorithms and for
        inline execution, where the state was trained in place)."""

    def run_client(self, client_id: int, version: int,
                   rng: np.random.Generator,
                   broadcast: dict | None = None) -> ClientUpdate:
        """Train one client from the global state at version ``version``
        and package its upload.

        ``broadcast`` is the downlink payload from :meth:`pack_broadcast`;
        ``None`` reads the live coordinator state (the inline executor's
        zero-copy path).
        """
        ctx = self.clients[int(client_id)]
        state = None if broadcast is None else broadcast["global_state"]
        model, maps = self.build_client_model(ctx, version, rng, state=state)
        reseed_dropout(model, rng)
        loss = train_local(model, ctx.shard.x, ctx.shard.y,
                           self.train_config, rng,
                           loss_fn=self.local_loss_fn(ctx, model))
        state = model.state_dict()
        keep = self.upload_filter(model, ctx)
        if keep is not None:
            state = {k: v for k, v in state.items() if k in keep}
            maps = {k: m for k, m in maps.items() if k in keep}
        return ClientUpdate(
            client_id=ctx.client_id, version=version, train_loss=loss,
            round_time_s=self.client_round_time_s(ctx),
            weight=float(ctx.num_samples), payload=(state, maps))

    def ingest(self, updates: Iterable[ClientUpdate], round_index: int,
               rng: np.random.Generator) -> RoundOutcome:
        """Aggregate a batch of client updates into the global state.

        ``updates`` may be any single-pass iterable — the synchronous round
        streams a generator through so only one client's update is alive at
        a time; the event-driven policies pass materialized buffers.

        Ingestion always happens on the coordinator, in the round's
        *dispatch* order (never completion order): floating-point
        accumulation order is part of the result, and dispatch order is the
        one ordering every executor agrees on.
        """
        sums = zeros_like_state(self.global_state)
        counts = zeros_like_state(self.global_state)
        slowest = 0.0
        losses = []
        for update in updates:
            state, maps = update.payload
            scatter_accumulate(sums, counts, state, maps,
                               weight=update.weight * update.discount)
            slowest = max(slowest, update.round_time_s)
            losses.append(update.train_loss)
        old_state = self.global_state
        self.global_state = finalize_mean(sums, counts, self.global_state)
        self.post_aggregate(old_state, round_index)
        return RoundOutcome(
            slowest_client_s=slowest,
            mean_train_loss=float(np.mean(losses)) if losses else 0.0)

    def run_round(self, round_index: int, sampled_ids: Sequence[int],
                  rng: np.random.Generator,
                  run_seed: int = 0) -> RoundOutcome:
        """Convenience synchronous round: train ``sampled_ids`` in order,
        then aggregate.

        Per-client randomness comes from the canonical
        ``(run_seed, round, client_id)`` derivation — the same streams the
        executor-backed loops use — while ``rng`` drives coordinator-side
        aggregation (e.g. Fed-ET's server distillation).
        """
        from ..fl.seeding import client_rng

        def updates():
            for client_id in sampled_ids:
                update = self.run_client(client_id, round_index,
                                         client_rng(run_seed, round_index,
                                                    client_id))
                # Absorb persistent per-client state (FedProto/Fed-ET
                # personal models) just as the executor-backed loops do.
                self.apply_client_state(client_id,
                                        self.pack_client_state(client_id))
                yield update

        return self.ingest(updates(), round_index, rng)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    # The two hooks :mod:`repro.fl.checkpoint` composes with the JSON
    # payload codecs: everything returned must survive ``encode_payload``
    # (arrays, dicts, scalars; dict keys become strings, so restorers of
    # int-keyed maps convert back).  Algorithms with server-side state
    # beyond ``global_state`` (FedProto prototypes, Fed-ET ensemble model,
    # persistent personal models) extend both sides symmetrically.

    def checkpoint_state(self) -> dict:
        """Server-side aggregate state a resumed run must restore."""
        return {"global_state": {k: v.copy()
                                 for k, v in self.global_state.items()}}

    def restore_checkpoint_state(self, state: dict) -> None:
        """Inverse of :meth:`checkpoint_state`."""
        self.global_state = dict(state["global_state"])

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _global_model(self) -> SliceableModel:
        if self._eval_model is None:
            self._eval_model = self.base_model.variant()
        self._eval_model.load_state_dict(self.global_state)
        return self._eval_model

    def evaluate_global(self) -> float:
        """Global accuracy: the full aggregated model on the global test set."""
        return accuracy(self._global_model(), self.x_eval, self.y_eval)

    def per_device_accuracies(self) -> list[float]:
        """Final accuracy of each evaluation client's own deployed variant."""
        ids = sorted(self.clients)
        stride = max(1, len(ids) // self.eval_clients)
        rng = np.random.default_rng(0)
        accs = []
        for client_id in ids[::stride][:self.eval_clients]:
            ctx = self.clients[client_id]
            model, _ = self.build_client_model(ctx, round_index=0, rng=rng)
            accs.append(accuracy(model, self.x_eval, self.y_eval))
        return accs
