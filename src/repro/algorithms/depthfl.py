"""DepthFL (Kim et al., ICLR'23): depth-wise sub-models + self-distillation.

Clients own the bottom fraction of the network with an auxiliary classifier
at every owned stage boundary.  The local objective is the mean
cross-entropy of every owned head plus mutual (self-)distillation between
heads; inference ensembles the heads.  Aggregation is the shared name-based
subset averaging (shallow clients simply contribute fewer blocks/heads).
"""

from __future__ import annotations

import numpy as np

from .. import autograd as ag
from ..models.base import SliceableModel
from ..models.slicing import extract_substate, width_index_maps
from .base import ClientContext, DEPTH_LEVELS, MHFLAlgorithm

__all__ = ["DepthFL"]


def _depth_overrides(base_model: SliceableModel, frac: float,
                     head_mode: str) -> dict:
    """Constructor overrides for a depth variant (block-level when supported)."""
    if "depth_frac" in base_model._build_kwargs:
        return {"depth_frac": frac, "num_stages": None, "head_mode": head_mode}
    stages = max(1, int(round(frac * base_model.total_stages)))
    return {"num_stages": stages, "head_mode": head_mode}


class DepthFL(MHFLAlgorithm):
    """Depth heterogeneity with auxiliary classifiers and self-distillation."""

    name = "depthfl"
    level = "depth"
    slicing_mode = "prefix"
    base_model_overrides = {"head_mode": "all"}

    #: weight of the mutual-distillation term (gamma in the paper).
    distill_weight: float = 0.5

    @classmethod
    def variant_space(cls, base_model: SliceableModel) -> dict[str, dict]:
        return {f"d{f:.2f}": _depth_overrides(base_model, f, "all")
                for f in DEPTH_LEVELS}

    def local_loss_fn(self, ctx: ClientContext, model: SliceableModel):
        gamma = self.distill_weight

        def loss(m, xb, yb):
            outs = m.forward_all_heads(xb)
            total = None
            for _, logits in outs:
                term = ag.cross_entropy(logits, yb)
                total = term if total is None else total + term
            if len(outs) > 1 and gamma > 0:
                # Each head distils from the mean of the other heads'
                # (detached) predictive distributions.
                probs = [ag.softmax(logits.detach()).data for _, logits in outs]
                for i, (_, logits) in enumerate(outs):
                    teacher = np.mean([p for j, p in enumerate(probs)
                                       if j != i], axis=0)
                    total = total + gamma * ag.soft_cross_entropy(logits, teacher)
            return total * (1.0 / len(outs))

        return loss

    def evaluate_global(self) -> float:
        """DepthFL inference: ensemble (mean softmax) over every head."""
        model = self._global_model()
        model.eval()
        correct = 0
        with ag.no_grad():
            for start in range(0, len(self.x_eval), 256):
                xb = self.x_eval[start:start + 256]
                yb = self.y_eval[start:start + 256]
                outs = model.forward_all_heads(xb)
                probs = np.mean([ag.softmax(logits).data
                                 for _, logits in outs], axis=0)
                correct += int((probs.argmax(axis=1) == yb).sum())
        model.train()
        return correct / len(self.y_eval)
