"""Pluggable client-work executors: inline, thread pool, process pool.

The simulation layer never trains a client directly any more; it packages
each local round as a :class:`ClientWorkItem` — a *pure, picklable* job —
and hands it to an :class:`Executor`.  Purity means the item fully
determines the result:

* the **downlink state** is an explicit ``broadcast`` payload (packed by
  :meth:`~repro.algorithms.base.MHFLAlgorithm.pack_broadcast`), never a
  read of live coordinator state that could advance mid-flight;
* **randomness** is a seed triple ``(run_seed, round, client_id)``
  (:mod:`repro.fl.seeding`), never a shared generator whose draws depend
  on dispatch order;
* the **scenario** (dataset, models, clients) is referenced by a
  :class:`ScenarioHandle` carrying the spec's content hash plus its
  serialised form, so a pool worker can rebuild an identical replica and
  cache it across items.

Three executors implement one contract:

* :class:`InlineExecutor` — eager, in-place, zero-copy (``broadcast=None``
  reads live state); bit-for-bit the pre-executor sequential semantics and
  the reference every other executor must match;
* :class:`ThreadExecutor` — shares the coordinator's algorithm object
  across worker threads.  Wins when local training is BLAS-bound (conv /
  GEMM releases the GIL); loses when clients are Python-bound;
* :class:`ProcessExecutor` — full process pool; each worker rebuilds the
  scenario from the handle once and caches it by spec hash.  Wins when
  clients are Python-bound; pays pickling for broadcasts and updates.

Because items are pure and ingestion happens on the coordinator in
dispatch order, **results are identical for any executor and any worker
count** — the contract ``tests/test_parallel_exec.py`` pins byte-for-byte.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from concurrent.futures import BrokenExecutor
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import ThreadPoolExecutor as _ThreadPool
from concurrent.futures import TimeoutError as _FuturesTimeout
from dataclasses import dataclass

from ..autograd import plan as agplan
from ..telemetry import runtime as telemetry
from ..telemetry.logs import get_logger
from .seeding import client_rng

_log = get_logger("executor")

__all__ = ["ScenarioHandle", "ClientWorkItem", "ClientResult",
           "execute_work_item", "Executor", "InlineExecutor",
           "ThreadExecutor", "ProcessExecutor", "EXECUTORS",
           "make_executor", "resolve_executor_kind", "ExecutorError",
           "TransientExecutorError", "failure_is_transient",
           "DEFAULT_RETRIES"]


class ExecutorError(RuntimeError):
    """A work item could not be executed (e.g. no scenario to rebuild).

    Permanent by default: retrying the same pure item would fail the same
    way.  Raise :class:`TransientExecutorError` for failures where a retry
    can plausibly succeed."""


class TransientExecutorError(ExecutorError):
    """An execution failure worth retrying (flaky transport, lost worker)."""


#: failure classes a bounded retry may recover from: a broken pool (worker
#: process died — the pool gets rebuilt), a per-item timeout (hung or
#: starved worker) and torn IPC (a dying process closes its pipe mid-read).
#: Everything else — and every plain :class:`ExecutorError` — is permanent:
#: work items are pure, so a deterministic exception would simply recur.
TRANSIENT_EXCEPTIONS = (TransientExecutorError, BrokenExecutor,
                        _FuturesTimeout, TimeoutError, ConnectionError,
                        EOFError)

#: default bounded-retry budget per work item for pool executors.
DEFAULT_RETRIES = 2


def failure_is_transient(error: BaseException) -> bool:
    """Transient-vs-permanent classification for executor failures."""
    return isinstance(error, TRANSIENT_EXCEPTIONS)


def spec_content_digest(payload: dict) -> str:
    """Canonical digest of a JSON-safe spec payload: sorted-key compact
    JSON, sha256, first 24 hex chars.  The single definition behind both
    :meth:`repro.experiments.spec.RunSpec.content_hash` and
    :meth:`ScenarioHandle.from_spec_payload`, so cache entries and
    worker-side scenario cache keys can never drift apart."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:24]


# ----------------------------------------------------------------------
# Work items
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ScenarioHandle:
    """Picklable reference to the scenario a work item belongs to.

    ``payload`` is the owning :class:`~repro.experiments.spec.RunSpec` in
    dict form (``None`` when the run was not built from a spec — direct
    library use — in which case only in-process executors can serve it);
    ``key`` is its content hash, the worker-side cache key.
    """

    key: str
    payload: dict | None = None

    @classmethod
    def from_spec_payload(cls, payload: dict | None) -> "ScenarioHandle":
        if payload is None:
            return cls(key="<unspecced>", payload=None)
        return cls(key=spec_content_digest(payload), payload=payload)


@dataclass
class ClientWorkItem:
    """One client's local round as a self-contained, picklable job."""

    client_id: int
    #: global model version (round index) the client trains from.
    version: int
    #: the run seed; the worker derives its generator from
    #: ``(run_seed, version, client_id)``.
    run_seed: int
    #: downlink payload from ``pack_broadcast`` (``None`` = read live
    #: coordinator state; only the inline executor may do that).
    broadcast: dict | None = None
    #: scenario reference for process-pool rebuilds.
    scenario: ScenarioHandle | None = None
    #: repeat-dispatch counter of this client at this version (buffered
    #: policy only); part of the seed derivation so a re-dispatched client
    #: trains a fresh draw, not a replay.
    dispatch_index: int = 0


@dataclass
class ClientResult:
    """What one executed work item sends back to the coordinator."""

    client_id: int
    update: object  # ClientUpdate; typed loosely to keep pickling flat
    #: persistent per-client state (FedProto/Fed-ET personal models) the
    #: coordinator must absorb via ``apply_client_state``.
    client_state: dict | None = None
    #: wall-clock accounting for this item (``execute_s`` measured at the
    #: worker, ``wait_s``/``total_s``/``retries`` filled in by the
    #: coordinator's future wrapper).  Picklable, so process-pool workers'
    #: measurements ride back with the result; never serialised into a
    #: History (see ``VOLATILE_EXTRA_KEYS`` in :mod:`repro.fl.serialization`).
    timing: dict | None = None


# ----------------------------------------------------------------------
# Worker-side execution
# ----------------------------------------------------------------------
#: per-process scenario replicas, keyed by spec content hash.
_WORKER_ALGORITHMS: dict[str, object] = {}
#: soft cap on cached replicas per worker (sweeps touch many specs; each
#: replica holds a dataset + models, so keep only the most recent few).
_WORKER_CACHE_LIMIT = 4


def _worker_algorithm(handle: ScenarioHandle | None):
    """The worker-local algorithm replica for ``handle`` (built on miss)."""
    if handle is None or handle.payload is None:
        raise ExecutorError(
            "work item carries no rebuildable scenario; runs not built "
            "from a RunSpec can only use the inline or thread executor")
    algorithm = _WORKER_ALGORITHMS.get(handle.key)
    if algorithm is None:
        from ..experiments.runner import build_worker_scenario
        while len(_WORKER_ALGORITHMS) >= _WORKER_CACHE_LIMIT:
            # Evict the oldest replica only (insertion order), so a sweep
            # cycling over limit+1 specs doesn't rebuild everything.
            # repro: allow[pure-work-items] content-addressed memo: replicas
            # are keyed by spec content hash and rebuilt deterministically,
            # so cache state can change cost but never results.
            _WORKER_ALGORITHMS.pop(next(iter(_WORKER_ALGORITHMS)))
            # Replica churn signals a sweep cycling over many specs: drop
            # this worker's step plans too, so scratch arenas sized for
            # evicted scenarios don't outlive them.  Plans are pure derived
            # state (value-invisible scratch + schedules), so clearing can
            # change cost but never results; thread-pool workers never take
            # this path and stay bounded by plan.MAX_PLANS_PER_THREAD.
            agplan.clear_thread_plans()
        algorithm = build_worker_scenario(handle.payload).algorithm
        # repro: allow[pure-work-items] same content-addressed memo as above.
        _WORKER_ALGORITHMS[handle.key] = algorithm
    return algorithm


def execute_work_item(item: ClientWorkItem, algorithm=None) -> ClientResult:
    """Run one client's local round; the free function every executor calls.

    ``algorithm`` injects the coordinator's live object (inline/thread
    executors); when omitted the scenario is rebuilt from the item's
    handle and cached per process (process pools).  Either way the result
    is a pure function of the item: state comes from ``item.broadcast``
    (or, inline-only, live state that is guaranteed quiescent during the
    batch) and randomness from the derived seed.
    """
    if algorithm is None:
        algorithm = _worker_algorithm(item.scenario)
    rng = client_rng(item.run_seed, item.version, item.client_id,
                     item.dispatch_index)
    start = time.perf_counter()
    with telemetry.span("client_step", client=int(item.client_id),
                        version=int(item.version)):
        update = algorithm.run_client(item.client_id, item.version, rng,
                                      broadcast=item.broadcast)
    execute_s = time.perf_counter() - start
    return ClientResult(client_id=int(item.client_id), update=update,
                        client_state=algorithm.pack_client_state(
                            item.client_id),
                        timing={"execute_s": execute_s})


def _finalize_timing(result: ClientResult, total_s: float,
                     retries: int) -> None:
    """Complete a result's wall-clock record on the coordinator side:
    total submit-to-result time, the queue-wait remainder (total minus
    worker-measured execution — includes pool queueing and IPC), and how
    many transparent retries the item survived."""
    timing = result.timing if result.timing is not None else {}
    execute_s = timing.get("execute_s", 0.0)
    timing["total_s"] = total_s
    timing["wait_s"] = max(total_s - execute_s, 0.0)
    timing["retries"] = int(retries)
    result.timing = timing


def scenario_handle_for(algorithm) -> ScenarioHandle:
    """The algorithm's scenario handle, hashed once and cached.

    ``make_work_item`` runs once per client dispatch — re-serialising and
    re-hashing the (constant) spec payload there would put a sha256 of the
    whole spec on the dispatch hot path.
    """
    payload = getattr(algorithm, "spec_payload", None)
    cached = getattr(algorithm, "_scenario_handle", None)
    if cached is None or cached[0] is not payload:
        cached = (payload, ScenarioHandle.from_spec_payload(payload))
        try:
            algorithm._scenario_handle = cached
        except AttributeError:  # pragma: no cover - exotic algorithm objects
            pass
    return cached[1]


def make_work_item(algorithm, client_id: int, version: int, run_seed: int,
                   needs_broadcast: bool,
                   shared_broadcast: dict | None = None,
                   dispatch_index: int = 0) -> ClientWorkItem:
    """Package one client's round for the given transport requirements.

    ``shared_broadcast`` is a round-level snapshot from
    ``pack_round_broadcast`` that synchronous dispatchers build once and
    share across the batch (the arrays are read-only in workers), so a
    round of N clients copies the global state once, not N times; only
    the small per-client part is packed here.  Without it the full
    per-client ``pack_broadcast`` is used (the buffered policy's case —
    each dispatch snapshots a different server version).
    """
    if not needs_broadcast:
        broadcast = None
    elif shared_broadcast is not None:
        broadcast = {**shared_broadcast,
                     **algorithm.pack_client_broadcast(client_id, version)}
    else:
        broadcast = algorithm.pack_broadcast(client_id, version)
    return ClientWorkItem(
        client_id=int(client_id), version=int(version),
        run_seed=int(run_seed), broadcast=broadcast,
        scenario=scenario_handle_for(algorithm),
        dispatch_index=int(dispatch_index))


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class _Immediate:
    """Resolved future: the inline executor's submit() return value."""

    __slots__ = ("_result",)

    def __init__(self, result: ClientResult):
        self._result = result

    def result(self) -> ClientResult:
        return self._result


class Executor:
    """Executor contract: ``submit`` one item, or ``run_batch`` many.

    ``needs_broadcast`` tells dispatchers whether items must carry a state
    snapshot (every asynchronous executor) or may read live coordinator
    state (inline only — it executes eagerly, so the state is quiescent).
    """

    kind = "base"
    needs_broadcast = True
    #: hardening knobs (pool executors honour them; inline has no failure
    #: modes to harden against).
    timeout_s: float | None = None
    retries: int = 0

    def __init__(self, workers: int = 1):
        self.workers = max(1, int(workers))

    def submit(self, item: ClientWorkItem):
        raise NotImplementedError

    def run_batch(self, items) -> list[ClientResult]:
        """Execute items concurrently; results come back in *item order*
        (never completion order — aggregation order is part of the
        result)."""
        futures = [self.submit(item) for item in items]
        return [future.result() for future in futures]

    def stream(self, items):
        """Yield results in item order.  Pools submit everything up front
        (that is the parallelism) and drain in order; the inline executor
        overrides this to run one item at a time, so the sequential path
        keeps its one-update-alive memory profile."""
        futures = [self.submit(item) for item in items]
        for future in futures:
            yield future.result()

    def close(self) -> None:
        """Release pool resources (idempotent)."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class InlineExecutor(Executor):
    """Eager single-process execution — the reference semantics."""

    kind = "inline"
    needs_broadcast = False

    def __init__(self, algorithm=None, workers: int = 1):
        super().__init__(workers=1)
        self.algorithm = algorithm

    def _execute(self, item: ClientWorkItem) -> ClientResult:
        telemetry.inc("executor.items", kind=self.kind)
        result = execute_work_item(item, self.algorithm)
        # Eager execution: no queue wait, no retries; total == execute.
        _finalize_timing(result, result.timing["execute_s"], retries=0)
        return result

    def submit(self, item: ClientWorkItem):
        return _Immediate(self._execute(item))

    def stream(self, items):
        for item in items:
            yield self._execute(item)


class _ResilientFuture:
    """A pool future with bounded, deterministic retry.

    ``result()`` waits at most the executor's ``timeout_s`` per attempt and
    transparently re-executes the item on transient failures (see
    :data:`TRANSIENT_EXCEPTIONS`), up to ``retries`` times.  Work items are
    pure, so a re-execution is byte-identical to what the lost attempt
    would have produced — hardening is invisible in results, it only trades
    wall clock for survival.  Permanent failures (and exhausted budgets)
    propagate unchanged.
    """

    __slots__ = ("_executor", "_item", "_future", "_generation", "_attempts",
                 "_submitted")

    def __init__(self, executor: "_PoolExecutor", item: ClientWorkItem,
                 future, generation: int):
        self._executor = executor
        self._item = item
        self._future = future
        self._generation = generation
        self._attempts = 0
        self._submitted = time.perf_counter()

    def result(self) -> ClientResult:
        while True:
            try:
                result = self._future.result(timeout=self._executor.timeout_s)
                _finalize_timing(result,
                                 time.perf_counter() - self._submitted,
                                 self._attempts)
                return result
            except BaseException as error:  # noqa: BLE001 - classified below
                if isinstance(error, (_FuturesTimeout, TimeoutError)):
                    telemetry.inc("executor.timeouts",
                                  kind=self._executor.kind)
                if (self._attempts >= self._executor.retries
                        or not failure_is_transient(error)):
                    raise
                self._attempts += 1
                telemetry.inc("executor.retries", kind=self._executor.kind)
                _log.warning(
                    "retrying client %s (attempt %d/%d) after %s",
                    self._item.client_id, self._attempts,
                    self._executor.retries, type(error).__name__)
                self._future.cancel()
                self._future, self._generation = self._executor._recover(
                    self._item, self._generation, error)


class _PoolExecutor(Executor):
    """Shared machinery of the thread/process pools: a rebuildable pool
    plus retrying futures.  ``_recover`` is the crash path: when the pool
    itself broke (a worker process died taking the pool down), it swaps in
    a fresh pool — exactly once per breakage, guarded by a generation
    counter so concurrent failed futures don't rebuild N times — and
    re-dispatches the caller's item; in-flight items each re-dispatch
    themselves the same way when their own ``result()`` calls observe the
    breakage."""

    def __init__(self, algorithm=None, workers: int = 2,
                 timeout_s: float | None = None, retries: int | None = None):
        super().__init__(workers=workers)
        self.algorithm = algorithm
        self.timeout_s = timeout_s
        self.retries = DEFAULT_RETRIES if retries is None else max(0, int(retries))
        self._lock = threading.Lock()
        self._generation = 0
        self._pool = self._build_pool()

    def _build_pool(self):
        raise NotImplementedError

    def _submit_raw(self, item: ClientWorkItem):
        raise NotImplementedError

    def submit(self, item: ClientWorkItem):
        telemetry.inc("executor.items", kind=self.kind)
        with self._lock:
            return _ResilientFuture(self, item, self._submit_raw(item),
                                    self._generation)

    def _recover(self, item: ClientWorkItem, generation: int,
                 error: BaseException):
        """Re-dispatch ``item`` after ``error``, rebuilding a broken pool
        first; returns the fresh ``(future, generation)``."""
        with self._lock:
            if (isinstance(error, BrokenExecutor)
                    and generation == self._generation):
                # First observer of this breakage: replace the pool.
                try:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                # repro: allow[no-bare-except] best-effort teardown of an
                # already-broken pool; the item is re-dispatched either way.
                except Exception:  # pragma: no cover - dying pools may throw
                    pass
                self._pool = self._build_pool()
                self._generation += 1
                telemetry.inc("executor.pool_rebuilds", kind=self.kind)
                _log.warning("rebuilt broken %s pool (generation %d)",
                             self.kind, self._generation)
            return self._submit_raw(item), self._generation

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)


class ThreadExecutor(_PoolExecutor):
    """Thread pool sharing the coordinator's algorithm object.

    Work items carry broadcast snapshots, so worker threads never read
    state the coordinator might advance; per-client persistent models
    (FedProto/Fed-ET) are safe because a client is never in flight twice.
    """

    kind = "thread"

    def _build_pool(self):
        return _ThreadPool(max_workers=self.workers,
                           thread_name_prefix="repro-client")

    def _submit_raw(self, item: ClientWorkItem):
        return self._pool.submit(execute_work_item, item, self.algorithm)


class ProcessExecutor(_PoolExecutor):
    """Process pool; workers rebuild and cache the scenario by spec hash."""

    kind = "process"

    def __init__(self, algorithm=None, workers: int = 2,
                 timeout_s: float | None = None, retries: int | None = None):
        payload = getattr(algorithm, "spec_payload", None)
        if algorithm is not None and payload is None:
            raise ExecutorError(
                "process executor needs a rebuildable scenario; run this "
                "simulation through a RunSpec (experiments.runner) or use "
                "the thread executor")
        super().__init__(algorithm=algorithm, workers=workers,
                         timeout_s=timeout_s, retries=retries)

    def _build_pool(self):
        return _ProcessPool(max_workers=self.workers)

    def _submit_raw(self, item: ClientWorkItem):
        if item.scenario is None or item.scenario.payload is None:
            raise ExecutorError(
                "work item carries no rebuildable scenario; the process "
                "executor cannot serve it")
        return self._pool.submit(execute_work_item, item)


EXECUTORS: dict[str, type[Executor]] = {
    InlineExecutor.kind: InlineExecutor,
    ThreadExecutor.kind: ThreadExecutor,
    ProcessExecutor.kind: ProcessExecutor,
}

#: accepted ``executor=`` settings ("auto" resolves per run).
EXECUTOR_KINDS = ("auto", *sorted(EXECUTORS))


def resolve_executor_kind(kind: str | None, workers: int,
                          has_scenario: bool) -> str:
    """Resolve ``"auto"``: inline for one worker; otherwise processes when
    the scenario is rebuildable from a spec, else threads."""
    if kind in (None, "auto"):
        if workers <= 1:
            return "inline"
        return "process" if has_scenario else "thread"
    if kind not in EXECUTORS:
        raise ValueError(f"unknown executor {kind!r}; "
                         f"known: {EXECUTOR_KINDS}")
    return kind


def make_executor(algorithm, workers: int = 1,
                  kind: str | None = "auto",
                  timeout_s: float | None = None,
                  retries: int | None = None) -> Executor:
    """Build the executor a simulation should use.

    The resolved kind honours the determinism contract automatically —
    whatever comes back, `History` output is identical; only wall-clock
    and memory profiles differ.  ``timeout_s``/``retries`` tune the pool
    executors' hardening (per-item result timeout, bounded transparent
    retry); the inline executor has no failure modes and ignores them.
    """
    has_scenario = getattr(algorithm, "spec_payload", None) is not None
    resolved = resolve_executor_kind(kind, workers, has_scenario)
    if resolved == "inline":
        return InlineExecutor(algorithm=algorithm)
    cls = EXECUTORS[resolved]
    return cls(algorithm=algorithm, workers=workers,
               timeout_s=timeout_s, retries=retries)
