"""Round-by-round records of a federated run + derived metrics inputs."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundRecord", "History"]


@dataclass
class RoundRecord:
    """One federated round's outcome."""

    round_index: int
    #: simulated wall-clock at the END of this round, seconds.
    sim_time_s: float
    #: slowest sampled client's compute+comm time this round, seconds.
    round_time_s: float
    #: mean local training loss over sampled clients.
    train_loss: float
    #: global-test accuracy (None on rounds without evaluation).
    global_accuracy: float | None = None
    #: dropped/stale-update counters and other per-round annotations
    #: (e.g. ``dispatched``/``received``/``dropped_deadline`` from the
    #: event-driven runtime).
    extras: dict = field(default_factory=dict)
    #: per-event timeline of the round (JSON-safe dicts with at least
    #: ``t`` and ``type``), recorded by the event-driven runtime.
    events: list = field(default_factory=list)


@dataclass
class History:
    """Full record of a federated run."""

    algorithm: str
    dataset: str
    records: list[RoundRecord] = field(default_factory=list)
    #: per-device accuracies measured at the end of the run.
    final_device_accuracies: list[float] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def evaluated(self) -> list[RoundRecord]:
        return [r for r in self.records if r.global_accuracy is not None]

    @property
    def final_accuracy(self) -> float:
        evaluated = self.evaluated
        if not evaluated:
            raise ValueError("run has no evaluated rounds")
        return evaluated[-1].global_accuracy

    @property
    def best_accuracy(self) -> float:
        evaluated = self.evaluated
        if not evaluated:
            raise ValueError("run has no evaluated rounds")
        return max(r.global_accuracy for r in evaluated)

    @property
    def total_sim_time_s(self) -> float:
        """Simulated wall-clock at the end of the last recorded round.

        Raises :class:`ValueError` on an empty history — an empty run has
        no clock, and the historical ``0.0`` silently poisoned downstream
        time metrics.  Note that for a *partial* history (a run still in
        progress, or one truncated by early stopping) this is the clock up
        to the last recorded round, not a full-run estimate; resumed
        (checkpointed) runs re-load their pre-resume rounds, so their
        total covers the whole run.
        """
        if not self.records:
            raise ValueError("history has no rounds; total_sim_time_s is "
                             "undefined on an empty run")
        return self.records[-1].sim_time_s

    def time_to_accuracy(self, target: float) -> float | None:
        """Simulated seconds until global accuracy first reaches ``target``.

        Returns ``None`` when the run never reaches the target (the paper's
        time-to-accuracy metric, measured on the simulated clock) and
        raises :class:`ValueError` on an empty history, where "never
        reached" would be vacuous and misleading.  On a partial history
        the answer is definitive when a crossing exists; a ``None`` only
        means "not reached *yet*" if more rounds were still to come.
        """
        if not self.records:
            raise ValueError("history has no rounds; time_to_accuracy is "
                             "undefined on an empty run")
        for record in self.records:
            if record.global_accuracy is not None \
                    and record.global_accuracy >= target:
                return record.sim_time_s
        return None

    def accuracy_curve(self) -> tuple[np.ndarray, np.ndarray]:
        """(sim_time_s, accuracy) arrays over evaluated rounds."""
        evaluated = self.evaluated
        return (np.array([r.sim_time_s for r in evaluated]),
                np.array([r.global_accuracy for r in evaluated]))

    def stability(self) -> float:
        """Variance of final per-device accuracies (paper metric iii)."""
        if not self.final_device_accuracies:
            raise ValueError("no per-device accuracies recorded")
        return float(np.var(self.final_device_accuracies))

    def dropped_counts(self) -> dict[str, int]:
        """Total dropped updates over the run, keyed by reason.

        Sums the ``dropped_*`` extras the event-driven runtime records
        (``dropout``, ``churn``, ``deadline``); empty for legacy runs.
        """
        totals: dict[str, int] = {}
        for record in self.records:
            for key, value in record.extras.items():
                if key.startswith("dropped_"):
                    reason = key[len("dropped_"):]
                    totals[reason] = totals.get(reason, 0) + int(value)
        return totals

    def stale_update_count(self) -> int:
        """Updates aggregated with staleness > 0 (buffered execution)."""
        return sum(int(r.extras.get("stale_updates", 0))
                   for r in self.records)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_json(self, indent: int | None = 1) -> str:
        """Serialise the full run — records, extras, event timelines and
        per-device accuracies — to a JSON string (see also
        :func:`repro.fl.serialization.save_history`)."""
        import json

        from .serialization import history_to_dict
        return json.dumps(history_to_dict(self), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "History":
        """Inverse of :meth:`to_json`."""
        import json

        from .serialization import history_from_dict
        return history_from_dict(json.loads(payload))
