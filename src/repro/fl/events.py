"""Discrete-event scheduler for the asynchronous FL runtime.

A tiny priority-queue event engine: aggregation policies push typed events
(client download start, train complete, upload complete, client dropped,
server aggregate, eval tick) at future simulated timestamps and pop them in
time order.  Ties break on insertion order, so runs are fully deterministic
under a fixed seed.

The engine is deliberately *passive*: it orders time, nothing else.  What an
event means — dispatch another client, fill an aggregation buffer, close a
round — is decided by the :mod:`repro.fl.aggregation` policies, and the
actual numeric client work runs eagerly at dispatch time (the global state a
client downloads is the state at its dispatch timestamp, which is exactly
the staleness semantics buffered aggregation needs).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "Event", "DOWNLOAD_START", "TRAIN_COMPLETE", "UPLOAD_COMPLETE",
    "CLIENT_DROPPED", "CLIENT_FAILED", "UPDATE_REJECTED",
    "SERVER_AGGREGATE", "EVAL_TICK", "EVENT_TYPES", "EventQueue",
]

#: Typed event kinds (strings so timelines serialise to JSON untouched).
DOWNLOAD_START = "download_start"
TRAIN_COMPLETE = "train_complete"
UPLOAD_COMPLETE = "upload_complete"
CLIENT_DROPPED = "client_dropped"
#: fault injection: the device crashed after training, before its upload
#: landed (:mod:`repro.fl.faults`); info carries ``reason="crash"``.
CLIENT_FAILED = "client_failed"
#: coordinator defense: the upload arrived but failed validation and was
#: quarantined (info carries the reason code).
UPDATE_REJECTED = "update_rejected"
SERVER_AGGREGATE = "server_aggregate"
EVAL_TICK = "eval_tick"

EVENT_TYPES = (DOWNLOAD_START, TRAIN_COMPLETE, UPLOAD_COMPLETE,
               CLIENT_DROPPED, CLIENT_FAILED, UPDATE_REJECTED,
               SERVER_AGGREGATE, EVAL_TICK)


@dataclass
class Event:
    """One scheduled occurrence on the simulated clock."""

    time_s: float
    type: str
    #: client the event concerns (None for server-side events).
    client_id: int | None = None
    #: free-form annotations (reason codes, staleness, carried update).
    info: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.type not in EVENT_TYPES:
            raise ValueError(f"unknown event type {self.type!r}; "
                             f"known: {EVENT_TYPES}")

    def timeline_entry(self) -> dict:
        """JSON-safe record for :attr:`RoundRecord.events` timelines
        (drops non-serialisable info values such as in-flight updates)."""
        entry: dict[str, Any] = {"t": round(float(self.time_s), 6),
                                 "type": self.type}
        if self.client_id is not None:
            entry["client"] = int(self.client_id)
        for key, value in self.info.items():
            if isinstance(value, (bool, int, float, str)) or value is None:
                entry[key] = value
        return entry


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion order).

    The queue keeps two cheap lifetime statistics — ``pushed`` (total
    events ever enqueued) and ``max_depth`` (peak heap size) — that the
    aggregation policies report through the telemetry layer at the end of
    a run.  Tracking is two integer updates per push, so the hot path
    stays telemetry-free.
    """

    def __init__(self):
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self.pushed = 0
        self.max_depth = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> Event:
        heapq.heappush(self._heap, (event.time_s, next(self._counter), event))
        self.pushed += 1
        if len(self._heap) > self.max_depth:
            self.max_depth = len(self._heap)
        return event

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from an empty EventQueue")
        return heapq.heappop(self._heap)[2]

    def peek_time(self) -> float | None:
        """Timestamp of the next event, or None when the queue is empty."""
        return self._heap[0][0] if self._heap else None
