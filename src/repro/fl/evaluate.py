"""Evaluation utilities shared by algorithms and metrics."""

from __future__ import annotations

import numpy as np

from .. import autograd as ag
from ..models.base import SliceableModel

__all__ = ["accuracy", "predict"]


def predict(model: SliceableModel, x: np.ndarray,
            batch_size: int = 256) -> np.ndarray:
    """Argmax predictions in eval mode (restores training mode after)."""
    was_training = model.training
    model.eval()
    try:
        preds = []
        with ag.no_grad():
            for start in range(0, len(x), batch_size):
                logits = model(x[start:start + batch_size])
                preds.append(logits.data.argmax(axis=-1))
        return np.concatenate(preds)
    finally:
        model.train(was_training)


def accuracy(model: SliceableModel, x: np.ndarray, y: np.ndarray,
             batch_size: int = 256) -> float:
    """Top-1 accuracy of ``model`` on ``(x, y)``."""
    return float((predict(model, x, batch_size) == np.asarray(y)).mean())
