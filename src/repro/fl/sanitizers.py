"""Strict-mode runtime sanitizers: trap what static analysis cannot see.

``repro lint`` (:mod:`repro.analysis`) proves the determinism contracts
on every *line*; this module guards the two dynamic failure modes no AST
walk can rule out:

* **cross-client mutation races** — a worker writing into a broadcast
  snapshot (or the live global state) while other clients train from it.
  Strict mode sets ``writeable=False`` on every ndarray of the payloads
  for the duration of dispatch, so any such write raises immediately, at
  the offending line, instead of surfacing as a corrupted aggregate three
  rounds later;
* **legacy global RNG use** — a draw from ``np.random``'s hidden global
  stream (or stdlib ``random``'s), which would make results depend on
  whatever ran before.  The tripwire snapshots both global states around
  a run and raises :class:`StrictModeViolation` if either moved.

Both sanitizers are **observation-only**: a strict run produces a
``History.to_json()`` byte-identical to a non-strict run (pinned by
``tests/test_analysis.py``).  Enable per run via
``ExecutionConfig(strict=True)`` / ``SimulationConfig(strict=True)``, or
process-wide via :func:`set_strict_mode` (the CLI's ``--strict``).
"""

from __future__ import annotations

import random
from contextlib import contextmanager

import numpy as np

__all__ = ["StrictModeViolation", "set_strict_mode", "strict_enabled",
           "resolve_strict", "collect_arrays", "frozen_arrays",
           "freeze_arrays", "rng_tripwire"]


class StrictModeViolation(RuntimeError):
    """A determinism contract was broken at runtime under ``--strict``."""


#: process-wide default, consulted when neither the ExecutionConfig nor
#: the SimulationConfig sets ``strict`` explicitly.
_STRICT_DEFAULT = False


def set_strict_mode(enabled: bool) -> bool:
    """Set the process-wide strict default; returns the previous value.

    Mirrors :func:`repro.experiments.runner.set_default_parallelism`: the
    CLI's ``--strict`` flips this once, and every run without an explicit
    per-config setting inherits it.
    """
    global _STRICT_DEFAULT
    previous = _STRICT_DEFAULT
    _STRICT_DEFAULT = bool(enabled)
    return previous


def strict_enabled() -> bool:
    return _STRICT_DEFAULT


def resolve_strict(*flags: bool | None) -> bool:
    """First explicit flag wins; the process default is the fallback.

    Call as ``resolve_strict(execution.strict, sim_config.strict)`` — the
    same inheritance order as ``workers``/``executor``.
    """
    for flag in flags:
        if flag is not None:
            return bool(flag)
    return _STRICT_DEFAULT


def collect_arrays(value):
    """Yield every ndarray leaf of a broadcast-shaped payload (dicts,
    lists, tuples, arrays — the shapes ``pack_broadcast`` produces)."""
    if isinstance(value, np.ndarray):
        yield value
    elif isinstance(value, dict):
        for item in value.values():
            yield from collect_arrays(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from collect_arrays(item)


def freeze_arrays(*payloads) -> list[np.ndarray]:
    """Set ``writeable=False`` on every currently-writeable array in the
    payloads; returns the arrays that were flipped (so a caller can thaw
    exactly those).  Already-frozen arrays are left alone — thawing them
    is not ours to do."""
    frozen: list[np.ndarray] = []
    for payload in payloads:
        for array in collect_arrays(payload):
            if array.flags.writeable:
                array.flags.writeable = False
                frozen.append(array)
    return frozen


@contextmanager
def frozen_arrays(*payloads):
    """Freeze the payloads' arrays for the duration of the block.

    Any write raises ``ValueError: assignment destination is read-only``
    at the offending line.  Thaws on exit (in reverse order, so views
    thaw before their bases re-enable them) exactly the arrays this call
    froze, making nesting and shared arrays safe.
    """
    frozen = freeze_arrays(*payloads)
    try:
        yield
    finally:
        for array in reversed(frozen):
            array.flags.writeable = True


def _describe_np_state(state) -> tuple:
    """Comparable form of a ``np.random.get_state()`` tuple."""
    name, keys, pos, has_gauss, cached = state
    return (name, keys.tobytes(), int(pos), int(has_gauss), float(cached))


@contextmanager
def rng_tripwire(context: str = "run"):
    """Fail the block if it moved a hidden global RNG stream.

    Snapshots the legacy numpy global state and stdlib ``random``'s state
    before the block and compares after; any drift raises
    :class:`StrictModeViolation` naming the stream.  The comparison reads
    the states without drawing from them, so the tripwire itself is
    invisible to both streams.
    """
    # repro: allow[no-global-rng] the tripwire must read the legacy global
    # state to guard it; get_state() observes without drawing.
    before_np = _describe_np_state(np.random.get_state())
    # repro: allow[no-global-rng] same observation-only read, stdlib side.
    before_py = random.getstate()
    yield
    # repro: allow[no-global-rng] observation-only read (see above).
    after_np = _describe_np_state(np.random.get_state())
    # repro: allow[no-global-rng] observation-only read (see above).
    after_py = random.getstate()
    if after_np != before_np:
        raise StrictModeViolation(
            f"legacy global numpy RNG was touched during {context}; "
            f"all randomness must come from derived generators "
            f"(repro.fl.seeding)")
    if after_py != before_py:
        raise StrictModeViolation(
            f"stdlib global random state was touched during {context}; "
            f"use an owned random.Random or a numpy generator")
