"""The federated round loop with a simulated wall clock.

Two execution paths share one algorithm interface
(:meth:`~repro.algorithms.base.MHFLAlgorithm.run_client` /
:meth:`~repro.algorithms.base.MHFLAlgorithm.ingest`):

* the **legacy synchronous loop** (``execution=None``): every sampled
  client is always online and always finishes; the round waits for the
  straggler.  Kept verbatim as the reference semantics;
* the **event-driven runtime** (``execution=ExecutionConfig(...)``):
  a discrete-event scheduler (:mod:`repro.fl.events`) plays client
  download/train/upload events against an availability model
  (:mod:`repro.fl.availability`) under a pluggable aggregation policy
  (:mod:`repro.fl.aggregation`) — synchronous-with-deadline or
  FedBuff-style buffered semi-async.

With ``ExecutionConfig()`` defaults (always-on fleet, sync policy, no
deadline) the event path reproduces the legacy History's sampled clients,
round/sim times, losses, accuracies and per-device accuracies bit-for-bit
(it additionally records dispatch/receive extras and per-event timelines
the legacy loop has no notion of); the equivalence is pinned by
``tests/test_async_runtime.py``.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from ..telemetry import runtime as telemetry
from .aggregation import ExecutionConfig, make_policy, sample_count
from .checkpoint import CheckpointConfig, make_checkpointer
from .executor import Executor, make_executor, make_work_item
from .history import History, RoundRecord
from .sanitizers import frozen_arrays, resolve_strict, rng_tripwire

__all__ = ["SimulationConfig", "run_simulation", "run_event_simulation",
           "sample_clients"]


@dataclass(frozen=True)
class SimulationConfig:
    """Round-loop parameters (paper defaults: 1000 rounds, 10% sampling)."""

    num_rounds: int = 50
    sample_ratio: float = 0.1
    eval_every: int = 5
    #: server-side work per round (aggregation, bookkeeping), seconds.
    server_overhead_s: float = 2.0
    seed: int = 0
    #: stop early once this global accuracy is reached (None = never).
    stop_at_accuracy: float | None = None
    #: how rounds execute: None = the legacy synchronous loop; an
    #: :class:`~repro.fl.aggregation.ExecutionConfig` selects the
    #: event-driven runtime (availability model + aggregation policy).
    execution: ExecutionConfig | None = None
    #: client-work parallelism.  Results are identical for any worker
    #: count/executor (see :mod:`repro.fl.executor`); only wall-clock and
    #: memory profiles change, so neither field participates in RunSpec
    #: hashing.
    workers: int = 1
    executor: str = "auto"    # "auto" | "inline" | "thread" | "process"
    #: crash-safety: periodic atomic snapshots + resume
    #: (:mod:`repro.fl.checkpoint`).  Purely mechanical — checkpointing is
    #: invisible in the History, so it never participates in hashing.
    checkpoint: CheckpointConfig | None = None
    #: strict-mode runtime sanitizers (:mod:`repro.fl.sanitizers`):
    #: broadcast arrays are frozen during dispatch and the legacy global
    #: RNGs are tripwired.  Observation-only — results are byte-identical
    #: either way.  ``None`` inherits the process default
    #: (:func:`repro.fl.sanitizers.set_strict_mode`); an
    #: ``ExecutionConfig.strict`` setting wins over this one.
    strict: bool | None = None


def sample_clients(num_clients: int, sample_ratio: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Sample the round's participants without replacement."""
    count = sample_count(num_clients, sample_ratio)
    return rng.choice(num_clients, size=count, replace=False)


#: Simulations started in this process.  The run cache's "a cache hit does
#: zero training" guarantee is pinned by asserting this does not move.
RUN_COUNT = 0


def _simulation_executor(algorithm, config: SimulationConfig,
                         execution: ExecutionConfig | None) -> Executor:
    """Build the executor a simulation should use.

    An explicit setting on the ``ExecutionConfig`` (its fields default to
    ``None`` = inherit) wins over the ``SimulationConfig``, so one sim
    config can be reused across differently-parallelised execution blocks
    — and ``ExecutionConfig(workers=1)`` genuinely forces a serial run.
    """
    workers = config.workers
    kind = config.executor
    if execution is not None:
        if execution.workers is not None:
            workers = execution.workers
        if execution.executor is not None:
            kind = execution.executor
    timeout_s = execution.item_timeout_s if execution is not None else None
    retries = execution.item_retries if execution is not None else None
    return make_executor(algorithm, workers=workers, kind=kind,
                         timeout_s=timeout_s, retries=retries)


def run_simulation(algorithm, config: SimulationConfig,
                   executor: Executor | None = None) -> History:
    """Drive ``algorithm`` for ``config.num_rounds`` rounds.

    Routes to the event-driven runtime when ``config.execution`` is set;
    otherwise runs the synchronous round loop below.  All client training
    flows through an :class:`~repro.fl.executor.Executor` (built from
    ``config.workers``/``config.executor`` unless one is passed in);
    ingestion stays on the coordinator in dispatch order, so the History
    is byte-identical for any worker count.
    """
    global RUN_COUNT
    RUN_COUNT += 1
    if config.execution is not None:
        return run_event_simulation(algorithm, config, executor=executor)

    strict = resolve_strict(config.strict)
    owns_executor = executor is None
    if executor is None:
        executor = _simulation_executor(algorithm, config, None)
    try:
        with rng_tripwire("run_simulation") if strict else nullcontext():
            return _run_sync_loop(algorithm, config, executor,
                                  strict=strict)
    finally:
        if owns_executor:
            executor.close()


def _run_sync_loop(algorithm, config: SimulationConfig,
                   executor: Executor, strict: bool = False) -> History:
    """The synchronous reference loop: every sampled client is always
    online and always finishes; the round waits for the straggler."""
    wall_start = time.perf_counter()
    rng = np.random.default_rng(config.seed)
    history = History(algorithm=algorithm.name, dataset=algorithm.dataset_name)
    sim_time = 0.0

    start_round = 0
    checkpointer = make_checkpointer(config.checkpoint)
    if checkpointer is not None:
        restored = checkpointer.maybe_resume(algorithm, rng)
        if restored is not None:
            history, start_round, sim_time, _ = restored

    for round_index in range(start_round, config.num_rounds):
        sampled = sample_clients(algorithm.num_clients, config.sample_ratio, rng)
        shared = (algorithm.pack_round_broadcast(round_index)
                  if executor.needs_broadcast else None)
        items = (make_work_item(algorithm, cid, round_index, config.seed,
                                executor.needs_broadcast,
                                shared_broadcast=shared)
                 for cid in sampled)

        wall_timings: dict[int, dict] = {}

        def updates():
            # Stream results in dispatch order; with the inline executor
            # only one client's update is alive at a time (the legacy
            # memory profile), while pools drain as work completes.
            # Strict mode freezes the broadcast snapshot and the live
            # global state for the duration of the stream: client work
            # may only *read* them, so any mutation race raises at its
            # own line.  The guard exits when the stream is exhausted —
            # before ``ingest`` finalises, which legitimately writes the
            # new global state.
            guard = (frozen_arrays(shared,
                                   getattr(algorithm, "global_state", None))
                     if strict else nullcontext())
            with guard:
                for result in executor.stream(items):
                    if result.timing is not None:
                        wall_timings[result.client_id] = result.timing
                    algorithm.apply_client_state(result.client_id,
                                                 result.client_state)
                    yield result.update

        # ``ingest`` drains the executor stream, so this span covers the
        # round's client work plus aggregation (the legacy loop has no
        # separate dispatch phase to trace).
        with telemetry.span("round", round=round_index):
            outcome = algorithm.ingest(updates(), round_index, rng)
        round_time = outcome.slowest_client_s + config.server_overhead_s
        sim_time += round_time

        is_eval_round = (round_index % config.eval_every == 0
                         or round_index == config.num_rounds - 1)
        if is_eval_round:
            with telemetry.span("evaluate", round=round_index):
                acc = algorithm.evaluate_global()
        else:
            acc = None
        extras = dict(outcome.extras)
        if wall_timings:
            extras["client_timings"] = wall_timings
        record = RoundRecord(
            round_index=round_index, sim_time_s=sim_time,
            round_time_s=round_time, train_loss=outcome.mean_train_loss,
            global_accuracy=acc, extras=extras)
        history.append(record)
        telemetry.record_round(record)
        telemetry.inc("aggregation.rounds", policy="legacy")
        if checkpointer is not None and checkpointer.due(round_index):
            checkpointer.save(algorithm, rng, history,
                              next_round=round_index + 1,
                              sim_time_s=sim_time)
        if (config.stop_at_accuracy is not None and acc is not None
                and acc >= config.stop_at_accuracy):
            break

    history.final_device_accuracies = algorithm.per_device_accuracies()
    if checkpointer is not None:
        checkpointer.clear()
    if telemetry.enabled() and history.records:
        wall_s = time.perf_counter() - wall_start
        sim_s = history.records[-1].sim_time_s
        telemetry.set_gauge("simulation.wall_s", wall_s, policy="legacy")
        telemetry.set_gauge("simulation.sim_s", sim_s, policy="legacy")
        if wall_s > 0:
            telemetry.set_gauge("simulation.sim_speedup", sim_s / wall_s,
                                policy="legacy")
    return history


def run_event_simulation(algorithm, config: SimulationConfig,
                         execution: ExecutionConfig | None = None,
                         executor: Executor | None = None) -> History:
    """Drive ``algorithm`` through the discrete-event runtime.

    ``execution`` overrides ``config.execution`` (so callers can reuse one
    :class:`SimulationConfig` across policies); defaults apply if neither
    is set.
    """
    execution = execution or config.execution or ExecutionConfig()
    availability = execution.build_availability(algorithm.num_clients,
                                                sim_seed=config.seed)
    strict = resolve_strict(execution.strict,
                            getattr(config, "strict", None))
    owns_executor = executor is None
    if executor is None:
        executor = _simulation_executor(algorithm, config, execution)
    try:
        # Policy construction happens inside the guard: if it raises, the
        # just-created thread/process pool must still be shut down rather
        # than leak workers.
        policy = make_policy(config, execution, availability,
                             executor=executor)
        with rng_tripwire("run_event_simulation") if strict \
                else nullcontext():
            return policy.run(algorithm)
    finally:
        if owns_executor:
            executor.close()
