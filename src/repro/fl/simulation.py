"""The synchronous federated round loop with a simulated wall clock.

Works against the :class:`~repro.algorithms.base.MHFLAlgorithm` interface:
every round it samples clients, lets the algorithm run local training +
aggregation, charges the simulated clock with the slowest sampled client
(synchronous FL: the round ends when the straggler finishes uploading), and
periodically evaluates global accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .history import History, RoundRecord

__all__ = ["SimulationConfig", "run_simulation", "sample_clients"]


@dataclass(frozen=True)
class SimulationConfig:
    """Round-loop parameters (paper defaults: 1000 rounds, 10% sampling)."""

    num_rounds: int = 50
    sample_ratio: float = 0.1
    eval_every: int = 5
    #: server-side work per round (aggregation, bookkeeping), seconds.
    server_overhead_s: float = 2.0
    seed: int = 0
    #: stop early once this global accuracy is reached (None = never).
    stop_at_accuracy: float | None = None


def sample_clients(num_clients: int, sample_ratio: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Sample the round's participants without replacement."""
    count = max(1, int(round(num_clients * sample_ratio)))
    return rng.choice(num_clients, size=min(count, num_clients), replace=False)


def run_simulation(algorithm, config: SimulationConfig) -> History:
    """Drive ``algorithm`` for ``config.num_rounds`` synchronous rounds."""
    rng = np.random.default_rng(config.seed)
    history = History(algorithm=algorithm.name, dataset=algorithm.dataset_name)
    sim_time = 0.0

    for round_index in range(config.num_rounds):
        sampled = sample_clients(algorithm.num_clients, config.sample_ratio, rng)
        outcome = algorithm.run_round(round_index, sampled, rng)
        round_time = outcome.slowest_client_s + config.server_overhead_s
        sim_time += round_time

        is_eval_round = (round_index % config.eval_every == 0
                         or round_index == config.num_rounds - 1)
        acc = algorithm.evaluate_global() if is_eval_round else None
        history.append(RoundRecord(
            round_index=round_index, sim_time_s=sim_time,
            round_time_s=round_time, train_loss=outcome.mean_train_loss,
            global_accuracy=acc, extras=dict(outcome.extras)))
        if (config.stop_at_accuracy is not None and acc is not None
                and acc >= config.stop_at_accuracy):
            break

    history.final_device_accuracies = algorithm.per_device_accuracies()
    return history
