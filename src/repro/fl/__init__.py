"""Federated simulation engine: local training, round loop, history."""

from .client import LocalTrainConfig, train_local, make_optimizer
from .evaluate import accuracy, predict
from .history import History, RoundRecord
from .simulation import SimulationConfig, run_simulation, sample_clients
from .serialization import (history_to_dict, history_from_dict, save_history,
                            load_history)

__all__ = [
    "LocalTrainConfig", "train_local", "make_optimizer",
    "accuracy", "predict",
    "History", "RoundRecord",
    "SimulationConfig", "run_simulation", "sample_clients",
    "history_to_dict", "history_from_dict", "save_history", "load_history",
]
