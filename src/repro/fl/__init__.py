"""Federated simulation engine: local training, round loops, history.

Includes the event-driven asynchronous runtime: a discrete-event scheduler
(:mod:`repro.fl.events`), client availability models
(:mod:`repro.fl.availability`) and pluggable aggregation policies
(:mod:`repro.fl.aggregation`).
"""

from .client import LocalTrainConfig, train_local, make_optimizer
from .evaluate import accuracy, predict
from .history import History, RoundRecord
from .events import Event, EventQueue
from .availability import (AvailabilityModel, AlwaysOn, DiurnalSine,
                           MarkovChurn, RandomDropout, AVAILABILITY_MODELS,
                           make_availability)
from .aggregation import (ExecutionConfig, AggregationPolicy,
                          SynchronousPolicy, BufferedPolicy,
                          AGGREGATION_POLICIES, make_policy, validate_update)
from .executor import (ScenarioHandle, ClientWorkItem, ClientResult,
                       execute_work_item, Executor, InlineExecutor,
                       ThreadExecutor, ProcessExecutor, EXECUTORS,
                       make_executor, ExecutorError, TransientExecutorError,
                       failure_is_transient)
from .faults import FaultSpec, FaultModel, FaultPlan, corrupt_update
from .checkpoint import CheckpointConfig, Checkpointer, make_checkpointer
from .seeding import client_seed_key, client_rng, fault_rng, reseed_dropout
from .simulation import (SimulationConfig, run_simulation,
                         run_event_simulation, sample_clients)
from .serialization import (history_to_dict, history_from_dict, save_history,
                            load_history, client_update_to_dict,
                            client_update_from_dict)

__all__ = [
    "LocalTrainConfig", "train_local", "make_optimizer",
    "accuracy", "predict",
    "History", "RoundRecord",
    "Event", "EventQueue",
    "AvailabilityModel", "AlwaysOn", "DiurnalSine", "MarkovChurn",
    "RandomDropout", "AVAILABILITY_MODELS", "make_availability",
    "ExecutionConfig", "AggregationPolicy", "SynchronousPolicy",
    "BufferedPolicy", "AGGREGATION_POLICIES", "make_policy",
    "validate_update",
    "ScenarioHandle", "ClientWorkItem", "ClientResult", "execute_work_item",
    "Executor", "InlineExecutor", "ThreadExecutor", "ProcessExecutor",
    "EXECUTORS", "make_executor", "ExecutorError", "TransientExecutorError",
    "failure_is_transient",
    "FaultSpec", "FaultModel", "FaultPlan", "corrupt_update",
    "CheckpointConfig", "Checkpointer", "make_checkpointer",
    "client_seed_key", "client_rng", "fault_rng", "reseed_dropout",
    "SimulationConfig", "run_simulation", "run_event_simulation",
    "sample_clients",
    "history_to_dict", "history_from_dict", "save_history", "load_history",
    "client_update_to_dict", "client_update_from_dict",
]
