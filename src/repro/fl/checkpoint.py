"""Crash-safe checkpoint/resume for long federated runs.

A coordinator crash (OOM, preemption, power) should cost at most
``checkpoint_every`` rounds of work, not the run.  After each due round the
synchronous drivers snapshot everything the next round depends on — the
:class:`~repro.fl.history.History` so far, the algorithm's aggregate state
(global model slices, prototypes, personal models), the coordinator RNG
state, and the per-client participation counters that key dropout draws —
into one JSON file, written atomically (``mkstemp`` + ``os.replace``, the
:mod:`repro.experiments.cache` idiom) so a crash mid-write leaves either
the previous snapshot or the new one, never a torn file.

Resuming replays nothing: the restored run continues from ``next_round``
with bit-identical RNG and algorithm state, so its final History equals the
uninterrupted run's byte for byte (pinned by ``tests/test_faults.py`` and
the CI ``fault-smoke`` job).  Checkpointing is invisible in the History
itself — no events, no extras — which is what makes that equality exact.

Arrays ride the PR 5 JSON codecs (:func:`repro.fl.serialization.
encode_payload`), so any dtype round-trips bit-exactly.  Only the
synchronous paths checkpoint; the buffered policy has in-flight futures
that cannot be snapshotted and declines with a warning.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .history import History
from .serialization import (decode_payload, encode_payload,
                            history_from_dict, history_to_dict)

__all__ = ["CheckpointConfig", "Checkpointer", "make_checkpointer",
           "CHECKPOINT_VERSION"]

#: layout version of the snapshot file; mismatches read as "no checkpoint".
CHECKPOINT_VERSION = 1


@dataclass(frozen=True)
class CheckpointConfig:
    """Where and how often a run snapshots itself."""

    #: snapshot file (one file per run; rewritten in place atomically).
    path: str | Path
    #: snapshot after every N-th completed round.
    every: int = 1
    #: pick up from an existing snapshot at ``path`` (a missing or
    #: unreadable snapshot silently starts fresh — crash-safety must not
    #: require the first run to special-case itself).
    resume: bool = False

    def __post_init__(self):
        if self.every < 1:
            raise ValueError("checkpoint every must be >= 1")


class Checkpointer:
    """Performs the snapshot/restore cycle for one run."""

    def __init__(self, config: CheckpointConfig):
        self.config = config
        self.path = Path(config.path)

    def due(self, round_index: int) -> bool:
        """True when the just-completed ``round_index`` should snapshot."""
        return (round_index + 1) % self.config.every == 0

    # ------------------------------------------------------------------
    # Snapshot
    # ------------------------------------------------------------------
    def save(self, algorithm, rng: np.random.Generator, history: History,
             *, next_round: int, sim_time_s: float,
             participation: dict[int, int] | None = None) -> Path:
        """Atomically write the run's full resumable state."""
        payload = {
            "checkpoint_version": CHECKPOINT_VERSION,
            "algorithm": algorithm.name,
            "dataset": algorithm.dataset_name,
            "next_round": int(next_round),
            "sim_time_s": float(sim_time_s),
            "rng_state": rng.bit_generator.state,
            "participation": {str(k): int(v)
                              for k, v in (participation or {}).items()},
            "history": history_to_dict(history),
            "algorithm_state": encode_payload(algorithm.checkpoint_state()),
        }
        # Serialise before touching the filesystem: an encoding failure
        # must not leave a temp file behind (or clobber the old snapshot).
        text = json.dumps(payload)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.path.parent,
                                        prefix=f".{self.path.stem}-",
                                        suffix=".tmp")
        try:
            umask = os.umask(0)
            os.umask(umask)
            os.fchmod(fd, 0o666 & ~umask)
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp_name, self.path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise
        return self.path

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------
    def load(self) -> dict | None:
        """The raw snapshot payload, or ``None`` when there is nothing
        usable (missing file, unreadable JSON, version skew)."""
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, ValueError):
            return None
        if payload.get("checkpoint_version") != CHECKPOINT_VERSION:
            return None
        return payload

    def maybe_resume(self, algorithm, rng: np.random.Generator):
        """Restore ``algorithm``/``rng`` from the snapshot when resuming.

        Returns ``(history, next_round, sim_time_s, participation)`` on a
        successful restore, or ``None`` to start fresh (not resuming, or
        no usable snapshot).  A snapshot for a *different* run — another
        algorithm or dataset — raises instead of silently training the
        wrong model from the wrong state.
        """
        if not self.config.resume:
            return None
        payload = self.load()
        if payload is None:
            return None
        if (payload["algorithm"] != algorithm.name
                or payload["dataset"] != algorithm.dataset_name):
            raise ValueError(
                f"checkpoint {self.path} belongs to "
                f"{payload['algorithm']}/{payload['dataset']}, not "
                f"{algorithm.name}/{algorithm.dataset_name}")
        rng.bit_generator.state = payload["rng_state"]
        algorithm.restore_checkpoint_state(
            decode_payload(payload["algorithm_state"]))
        history = history_from_dict(payload["history"])
        participation = {int(k): int(v)
                         for k, v in payload.get("participation", {}).items()}
        return (history, int(payload["next_round"]),
                float(payload["sim_time_s"]), participation)

    def clear(self) -> None:
        """Remove the snapshot (the run finished; nothing to resume)."""
        with contextlib.suppress(OSError):
            self.path.unlink()


def make_checkpointer(config) -> Checkpointer | None:
    """A :class:`Checkpointer` for ``config`` (``None`` passes through,
    and a bare path becomes a default-cadence config)."""
    if config is None:
        return None
    if not isinstance(config, CheckpointConfig):
        config = CheckpointConfig(path=config)
    return Checkpointer(config)
