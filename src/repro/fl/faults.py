"""Deterministic client-failure injection for federated runs.

Real fleets fail in ways availability models don't capture: devices crash
after training but before the upload lands, thermal throttling stretches a
round by integer factors, and flaky transports or broken accelerators ship
NaN/Inf/garbage updates (Abdelmoniem et al., arXiv:2102.07500).  This module
injects those failures *deterministically*: every decision for a client's
dispatch is drawn from :func:`repro.fl.seeding.fault_rng`, a pure function
of ``(run_seed, round, client_id, dispatch)``, so a fault-injected run is
byte-identical across inline/thread/process executors and worker counts —
the same determinism contract the healthy runtime pins.

All decisions are made and applied **coordinator-side** by the aggregation
policies (:mod:`repro.fl.aggregation`): a crash skips the client's training
and schedules a typed ``client_failed`` event; a straggler multiplies the
client's train segment on the simulated clock; corruption mutates the
update's float payload after the executor returns it (the trained result
itself stays healthy — corruption models the *transport*, and the
coordinator's validation hook is what should catch it).

A :class:`FaultSpec` travels inside :class:`~repro.fl.aggregation.
ExecutionConfig` (and, as a kwargs dict, on
:class:`~repro.constraints.spec.ConstraintSpec`), serialising only when
enabled so existing specs keep their content hashes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .seeding import fault_rng

__all__ = ["FaultSpec", "FaultModel", "FaultPlan", "CORRUPT_MODES",
           "corrupt_update"]

#: How a corrupted upload is mangled: non-finite payloads (``nan``/``inf``),
#: a silent magnitude blow-up (``scale``) or a silent erasure (``zero``).
#: The first two are what NaN/Inf validation catches; the latter two only
#: trip a norm bound (scale) or nothing at all (zero) — deliberately, so
#: fault profiles can probe what a given defense actually sees.
CORRUPT_MODES = ("nan", "inf", "scale", "zero")


@dataclass(frozen=True)
class FaultSpec:
    """Per-dispatch failure probabilities and shapes (all default off)."""

    #: P(device crashes after training, before its upload lands).
    crash_prob: float = 0.0
    #: P(client is a straggler this dispatch) and the train-time multiplier
    #: applied when it is.
    straggler_prob: float = 0.0
    straggler_factor: float = 4.0
    #: P(the upload arrives corrupted) and how (see :data:`CORRUPT_MODES`).
    corrupt_prob: float = 0.0
    corrupt_mode: str = "nan"
    #: multiplier for ``corrupt_mode="scale"``.
    corrupt_factor: float = 1e6
    #: extra entropy folded into the fault stream (None = run seed only),
    #: so two fault profiles differing only in seed draw distinct schedules.
    seed: int | None = None

    def __post_init__(self):
        for name in ("crash_prob", "straggler_prob", "corrupt_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value!r}")
        if self.corrupt_mode not in CORRUPT_MODES:
            raise ValueError(f"unknown corrupt_mode {self.corrupt_mode!r}; "
                             f"known: {CORRUPT_MODES}")
        if self.straggler_factor < 1.0:
            raise ValueError("straggler_factor must be >= 1")

    @property
    def enabled(self) -> bool:
        return (self.crash_prob > 0 or self.straggler_prob > 0
                or self.corrupt_prob > 0)

    # ------------------------------------------------------------------
    # Serialisation (stable JSON-safe form; used by RunSpec hashing)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`."""
        return {
            "crash_prob": self.crash_prob,
            "straggler_prob": self.straggler_prob,
            "straggler_factor": self.straggler_factor,
            "corrupt_prob": self.corrupt_prob,
            "corrupt_mode": self.corrupt_mode,
            "corrupt_factor": self.corrupt_factor,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(**payload)


@dataclass(frozen=True)
class FaultPlan:
    """The drawn fate of one client dispatch."""

    crash: bool = False
    #: train-segment multiplier (1.0 = nominal speed).
    slowdown: float = 1.0
    #: corruption mode applied to the upload (None = clean).
    corrupt: str | None = None

    @property
    def clean(self) -> bool:
        return not self.crash and self.slowdown == 1.0 and self.corrupt is None


class FaultModel:
    """Draws :class:`FaultPlan` decisions from the seeded fault stream.

    Stateless by design: :meth:`plan` re-derives its generator per call, so
    consulting the model for client A never shifts client B's draws — the
    property that makes fault schedules executor- and order-independent.
    """

    def __init__(self, spec: FaultSpec, run_seed: int):
        self.spec = spec
        #: run seed folded with the profile's own seed (if any).
        self.run_seed = (int(run_seed) if spec.seed is None
                         else int(run_seed) ^ (int(spec.seed) << 8))

    def plan(self, version: int, client_id: int,
             dispatch: int = 0) -> FaultPlan:
        """The fate of ``client_id``'s dispatch at server ``version``.

        Draw order is fixed (crash, straggler, corrupt) so adding a later
        probability to a profile never reshuffles the earlier decisions.
        """
        spec = self.spec
        if not spec.enabled:
            return FaultPlan()
        rng = fault_rng(self.run_seed, version, client_id, dispatch)
        crash = bool(spec.crash_prob > 0
                     and rng.random() < spec.crash_prob)
        slowdown = 1.0
        if spec.straggler_prob > 0 and rng.random() < spec.straggler_prob:
            slowdown = float(spec.straggler_factor)
        corrupt = None
        if spec.corrupt_prob > 0 and rng.random() < spec.corrupt_prob:
            corrupt = spec.corrupt_mode
        return FaultPlan(crash=crash, slowdown=slowdown, corrupt=corrupt)


def _corrupt_array(array: np.ndarray, mode: str, factor: float) -> None:
    """Mangle one float array in place according to ``mode``."""
    if mode == "nan":
        array.flat[:: max(1, array.size // 8)] = np.nan
    elif mode == "inf":
        array.flat[:: max(1, array.size // 8)] = np.inf
    elif mode == "scale":
        array *= factor
    elif mode == "zero":
        array[...] = 0.0
    else:  # pragma: no cover - guarded by FaultSpec.__post_init__
        raise ValueError(f"unknown corrupt_mode {mode!r}")


def _corrupt_payload(value, mode: str, factor: float):
    """Recursively corrupt the float-array leaves of an uplink payload.

    Integer arrays (index maps) and non-array leaves pass through intact —
    corruption models numeric garbage on the wire, not a malformed message,
    so the aggregation path still parses the payload and the validation
    hook gets to judge the numbers.
    """
    if isinstance(value, np.ndarray):
        if np.issubdtype(value.dtype, np.floating):
            copy = value.copy()
            _corrupt_array(copy, mode, factor)
            return copy
        return value
    if isinstance(value, tuple):
        return tuple(_corrupt_payload(v, mode, factor) for v in value)
    if isinstance(value, dict):
        return {k: _corrupt_payload(v, mode, factor) for k, v in value.items()}
    if isinstance(value, list):
        return [_corrupt_payload(v, mode, factor) for v in value]
    return value


def corrupt_update(update, mode: str, factor: float = 1e6) -> None:
    """Corrupt a :class:`~repro.algorithms.base.ClientUpdate` in place.

    Replaces the payload with a corrupted copy (the executor's trained
    arrays may be shared with coordinator state — e.g. the inline path —
    so they are never mutated) and, for non-finite modes, poisons the
    reported train loss the way a faulting device would.
    """
    update.payload = _corrupt_payload(update.payload, mode, factor)
    if mode in ("nan", "inf"):
        update.train_loss = float("nan") if mode == "nan" else float("inf")
