"""Deterministic per-client seeding for parallel execution.

A client's local round must be a pure function of ``(run_seed, round,
client_id)`` — not of *when* it executes relative to its peers — or results
change with the worker count.  The legacy loop drew every client's batch
order, Fjord width sample and public-set picks from one shared
``np.random.Generator``, which made round results depend on dispatch order.
This module replaces that with derived streams:

* :func:`client_rng` seeds a fresh generator from the
  ``(run_seed, round, client_id)`` triple (via ``numpy``'s
  :class:`~numpy.random.SeedSequence`, so nearby triples still give
  statistically independent streams);
* :func:`reseed_dropout` re-derives every dropout layer's mask stream from
  the same triple at the start of each local round, so dropout masks are
  identical whether the model was freshly built in a process-pool worker or
  has lived on the coordinator for fifty rounds.

The coordinator-side RNG (client sampling, buffered dispatch choice, Fed-ET
server distillation) keeps its own single stream seeded by the run seed —
it never runs inside a worker, so it stays deterministic for any worker
count.
"""

from __future__ import annotations

import numpy as np

from .. import nn

__all__ = ["client_seed_key", "client_rng", "fault_rng", "reseed_dropout"]

#: Salt appended to the seed tuple for fault-injection draws, so a fault
#: schedule never consumes from — or collides with — the client's training
#: stream for the same ``(run_seed, round, client_id)`` cell.
FAULT_STREAM_SALT = 0x5FA17


def client_seed_key(run_seed: int, version: int, client_id: int,
                    dispatch: int = 0) -> tuple[int, ...]:
    """The canonical entropy key for one client's local round.

    ``dispatch`` counts repeat dispatches of the *same client at the same
    server version* (only the buffered policy produces them, when a fast
    client uploads and is re-dispatched before the version advances);
    folding it in keeps the repeat training a fresh draw instead of a
    bit-identical replay of the first.  The first dispatch keeps the plain
    ``(run_seed, round, client_id)`` triple, so synchronous rounds — which
    never re-dispatch within a round — are unaffected.
    """
    if dispatch:
        return (int(run_seed), int(version), int(client_id), int(dispatch))
    return (int(run_seed), int(version), int(client_id))


def client_rng(run_seed: int, version: int, client_id: int,
               dispatch: int = 0) -> np.random.Generator:
    """A generator owned by one ``(run_seed, round, client_id)`` cell.

    Every random choice of the client's local round — minibatch order,
    Fjord's ordered-dropout width draw, Fed-ET's public-set picks and (via
    :func:`reseed_dropout`) dropout masks — comes from this stream, which
    is what makes a :class:`~repro.fl.executor.ClientWorkItem` pure.
    """
    return np.random.default_rng(
        client_seed_key(run_seed, version, client_id, dispatch))


def fault_rng(run_seed: int, version: int, client_id: int,
              dispatch: int = 0) -> np.random.Generator:
    """The fault-injection stream for one dispatch of one client.

    Keyed on the same ``(run_seed, round, client_id[, dispatch])`` cell as
    :func:`client_rng` but salted (:data:`FAULT_STREAM_SALT`), so whether a
    fault model is consulted never perturbs training randomness — the
    zero-fault run stays bit-identical — and the fault schedule itself is a
    pure function of the cell, independent of executors and worker counts.
    """
    return np.random.default_rng(
        (*client_seed_key(run_seed, version, client_id, dispatch),
         FAULT_STREAM_SALT))


def reseed_dropout(model: nn.Module, rng: np.random.Generator) -> None:
    """Re-derive every dropout layer's mask stream from ``rng``.

    Draws one seed per :class:`~repro.nn.Dropout` layer in deterministic
    module-tree order.  Called at the start of every local round so dropout
    state never leaks across rounds, clients or processes; models without
    dropout layers consume nothing from ``rng`` (the draw happens per
    layer), keeping their streams unchanged.
    """
    for _, module in model.named_modules():
        if isinstance(module, nn.Dropout):
            module.reseed(int(rng.integers(0, 2 ** 31 - 1)))
