"""Client availability models for the event-driven FL runtime.

Edge devices are not always reachable: phones charge at night, leave Wi-Fi,
or kill background training mid-round.  Each model here answers, from a
seeded per-client trace, the three questions the scheduler asks:

* is client ``c`` online at simulated time ``t``?
* if online, until when (so a dispatch can be pre-empted by churn)?
* if offline, when does it come back?

plus an orthogonal *mid-round dropout* hook (``drops_round``) for devices
that accept a dispatch and then silently die before uploading.

All traces are deterministic functions of ``(seed, client_id)`` — never of
query order — so the same fleet behaves identically under any aggregation
policy, which keeps sync-vs-async comparisons apples-to-apples.
"""

from __future__ import annotations

import bisect
import math

import numpy as np

__all__ = ["AvailabilityModel", "AlwaysOn", "DiurnalSine", "MarkovChurn",
           "RandomDropout", "AVAILABILITY_MODELS", "make_availability"]


class AvailabilityModel:
    """Interface the event scheduler consults. Default: always online."""

    name = "base"

    def __init__(self, num_clients: int, seed: int = 0):
        self.num_clients = int(num_clients)
        self.seed = int(seed)

    # -- online intervals ----------------------------------------------
    def is_online(self, client_id: int, t: float) -> bool:
        return True

    def online_until(self, client_id: int, t: float) -> float:
        """End of the online interval containing ``t`` (``inf`` when the
        client never goes offline; ``t`` itself when offline at ``t``)."""
        return math.inf

    def next_online(self, client_id: int, t: float) -> float:
        """Earliest time >= ``t`` at which the client is online."""
        return t

    # -- mid-round dropout ---------------------------------------------
    def drops_round(self, client_id: int, dispatch_index: int) -> bool:
        """Whether this dispatch dies before uploading (device killed the
        training job).  ``dispatch_index`` is the client's *own* k-th
        accepted dispatch, so the decision is deterministic in
        (seed, client, k) regardless of the aggregation policy."""
        return False


class AlwaysOn(AvailabilityModel):
    """The idealized setting of the legacy synchronous loop."""

    name = "always_on"


class DiurnalSine(AvailabilityModel):
    """Diurnal availability: each client follows a sine-thresholded
    day/night cycle with a seeded phase (time zone / habit offset) and a
    seeded duty cycle (fraction of the day it is reachable)."""

    name = "diurnal"

    def __init__(self, num_clients: int, seed: int = 0,
                 period_s: float = 86400.0, duty: float = 0.6,
                 duty_jitter: float = 0.2):
        super().__init__(num_clients, seed)
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        rng = np.random.default_rng(seed)
        self.period_s = float(period_s)
        self.phase = rng.uniform(0.0, 1.0, num_clients)
        self.duty = np.clip(
            duty + rng.uniform(-duty_jitter, duty_jitter, num_clients),
            0.05, 1.0)

    def _offset(self, client_id: int, t: float) -> float:
        """Phase distance into the client's online window, in [0, 1).

        The client is online while ``sin(2*pi*(t/period + phase))`` exceeds
        the threshold that makes the above-threshold fraction equal its duty
        cycle — i.e. during a window of width ``duty`` centred on the sine
        peak (phase 0.25).  Values below ``duty`` mean "inside the window".
        """
        duty = float(self.duty[client_id])
        u = (t / self.period_s + float(self.phase[client_id])) % 1.0
        window_start = 0.25 - duty / 2.0
        return (u - window_start) % 1.0

    def is_online(self, client_id: int, t: float) -> bool:
        return self._offset(client_id, t) < float(self.duty[client_id])

    def online_until(self, client_id: int, t: float) -> float:
        duty = float(self.duty[client_id])
        offset = self._offset(client_id, t)
        if offset >= duty:
            return t
        if duty >= 1.0:
            return math.inf
        return t + (duty - offset) * self.period_s

    def next_online(self, client_id: int, t: float) -> float:
        offset = self._offset(client_id, t)
        if offset < float(self.duty[client_id]):
            return t
        comeback = t + (1.0 - offset) * self.period_s
        # The float mod in _offset can land the wrap at 0.999... instead of
        # 0, leaving ``comeback`` an ulp short of the window; nudge inside
        # (the window is >= 0.05 periods wide, so the bump stays well in).
        while not self.is_online(client_id, comeback):
            comeback += 1e-9 * self.period_s
        return comeback


class MarkovChurn(AvailabilityModel):
    """Two-state Markov on/off churn: alternating exponentially-distributed
    online and offline sojourns, drawn lazily per client from a seeded
    stream and cached, so queries at any time are O(log n) bisects."""

    name = "markov"

    def __init__(self, num_clients: int, seed: int = 0,
                 mean_on_s: float = 1800.0, mean_off_s: float = 600.0):
        super().__init__(num_clients, seed)
        if mean_on_s <= 0 or mean_off_s <= 0:
            raise ValueError("mean sojourn times must be positive")
        self.mean_on_s = float(mean_on_s)
        self.mean_off_s = float(mean_off_s)
        self._rngs: dict[int, np.random.Generator] = {}
        #: per client: (starts_online, switch timestamps ascending from 0).
        self._traces: dict[int, tuple[bool, list[float]]] = {}

    def _trace(self, client_id: int, until: float
               ) -> tuple[bool, list[float]]:
        rng = self._rngs.get(client_id)
        if rng is None:
            rng = np.random.default_rng((self.seed, int(client_id)))
            self._rngs[client_id] = rng
            # Start in steady state: online with probability on/(on+off).
            p_on = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
            self._traces[client_id] = (bool(rng.random() < p_on), [0.0])
        starts_online, switches = self._traces[client_id]
        while switches[-1] <= until:
            online_now = starts_online == (len(switches) % 2 == 1)
            mean = self.mean_on_s if online_now else self.mean_off_s
            switches.append(switches[-1] + float(rng.exponential(mean)))
        return starts_online, switches

    def _segment(self, client_id: int, t: float) -> tuple[bool, int]:
        """(online?, index of the switch ending the segment holding t)."""
        starts_online, switches = self._trace(client_id, t)
        # switches[i] <= t < switches[i+1] after extension above.
        i = bisect.bisect_right(switches, t) - 1
        online = starts_online == (i % 2 == 0)
        return online, i + 1

    def is_online(self, client_id: int, t: float) -> bool:
        return self._segment(client_id, t)[0]

    def online_until(self, client_id: int, t: float) -> float:
        online, end_idx = self._segment(client_id, t)
        if not online:
            return t
        return self._trace(client_id, t)[1][end_idx]

    def next_online(self, client_id: int, t: float) -> float:
        online, end_idx = self._segment(client_id, t)
        if online:
            return t
        return self._trace(client_id, t)[1][end_idx]


class RandomDropout(AvailabilityModel):
    """Always reachable, but each accepted dispatch independently dies
    before uploading with probability ``prob`` (seeded, replayable)."""

    name = "dropout"

    def __init__(self, num_clients: int, seed: int = 0, prob: float = 0.1):
        super().__init__(num_clients, seed)
        if not 0.0 <= prob <= 1.0:
            raise ValueError("prob must be in [0, 1]")
        self.prob = float(prob)

    def drops_round(self, client_id: int, dispatch_index: int) -> bool:
        if self.prob <= 0.0:
            return False
        draw = np.random.default_rng(
            (self.seed, int(client_id), int(dispatch_index))).random()
        return bool(draw < self.prob)


AVAILABILITY_MODELS: dict[str, type[AvailabilityModel]] = {
    AlwaysOn.name: AlwaysOn,
    DiurnalSine.name: DiurnalSine,
    MarkovChurn.name: MarkovChurn,
    RandomDropout.name: RandomDropout,
}


def make_availability(name: str, num_clients: int, seed: int = 0,
                      **kwargs) -> AvailabilityModel:
    """Instantiate a registered availability model by name."""
    try:
        cls = AVAILABILITY_MODELS[name]
    except KeyError:
        raise ValueError(f"unknown availability model {name!r}; "
                         f"known: {sorted(AVAILABILITY_MODELS)}") from None
    return cls(num_clients, seed=seed, **kwargs)
