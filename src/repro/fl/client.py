"""Client-side local training.

One generic local-training loop serves every algorithm: algorithms customise
behaviour through the ``loss_fn`` hook (e.g. DepthFL's multi-head
self-distillation, FedProto's prototype regulariser) and by freezing
parameters before calling in (FeDepth).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

import numpy as np

from .. import autograd as ag
from .. import nn
from ..data.dataset import batches
from ..models.base import SliceableModel

__all__ = ["LocalTrainConfig", "train_local", "make_optimizer"]

LossFn = Callable[[SliceableModel, np.ndarray, np.ndarray], "ag.Tensor"]


@dataclass(frozen=True)
class LocalTrainConfig:
    """Hyper-parameters of one client's local round."""

    batch_size: int = 16
    local_epochs: int = 1
    optimizer: str = "auto"          # "sgd" | "adam" | "auto" (by modality)
    lr: float | None = None          # None -> per-optimizer default
    momentum: float = 0.9
    weight_decay: float = 0.0
    #: cap on minibatches per round — keeps CPU simulation tractable while
    #: the *simulated clock* still charges for the full nominal epoch.
    max_batches: int | None = None

    def resolve(self, model: SliceableModel) -> "LocalTrainConfig":
        """Fill 'auto' fields from the model's modality."""
        optimizer = self.optimizer
        if optimizer == "auto":
            optimizer = "adam" if model.pool_kind == "sequence" else "sgd"
        lr = self.lr
        if lr is None:
            lr = 2e-3 if optimizer == "adam" else 0.05
        return replace(self, optimizer=optimizer, lr=lr)


def make_optimizer(model: SliceableModel,
                   config: LocalTrainConfig) -> nn.Optimizer:
    """Build the optimiser over the model's *trainable* parameters."""
    params = model.trainable_parameters()
    if config.optimizer == "sgd":
        return nn.SGD(params, lr=config.lr, momentum=config.momentum,
                      weight_decay=config.weight_decay)
    if config.optimizer == "adam":
        return nn.Adam(params, lr=config.lr,
                       weight_decay=config.weight_decay)
    raise ValueError(f"unknown optimizer {config.optimizer!r}")


def train_local(model: SliceableModel, x: np.ndarray, y: np.ndarray,
                config: LocalTrainConfig, rng: np.random.Generator,
                loss_fn: LossFn | None = None) -> float:
    """Run one client's local round in place; returns the mean train loss.

    Each step runs under a cached step plan (:mod:`repro.autograd.plan`)
    keyed by the model's structural signature and the batch shape: clients
    training the same slice at the same batch size reuse topo-order
    schedules and im2col scratch arenas across steps and rounds.  Plans are
    per worker thread/process and change results by zero bits — histories
    are byte-identical with ``REPRO_PLAN_CACHE=0``.
    """
    config = config.resolve(model)
    optimizer = make_optimizer(model, config)
    if loss_fn is None:
        loss_fn = lambda m, xb, yb: ag.cross_entropy(m(xb), yb)  # noqa: E731

    plan_key = ag.plan.model_plan_key(model)
    model.train()
    losses: list[float] = []
    for _ in range(config.local_epochs):
        used = 0
        for xb, yb in batches(x, y, config.batch_size, rng):
            if config.max_batches is not None and used >= config.max_batches:
                break
            with ag.plan.step(plan_key, xb.shape):
                optimizer.zero_grad()
                loss = loss_fn(model, xb, yb)
                loss.backward()
                optimizer.step()
            losses.append(loss.item())
            used += 1
    return float(np.mean(losses)) if losses else 0.0
