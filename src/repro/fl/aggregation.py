"""Pluggable server aggregation policies for the event-driven runtime.

Two policies cover the design space the systems literature converges on for
constrained fleets (Pfeiffer et al.'s survey; FedBuff, Nguyen et al.
AISTATS'22):

* :class:`SynchronousPolicy` — round-based aggregation with an optional
  wall-clock **deadline** (late uploads are dropped) and **over-selection**
  (dispatch extra clients so a round survives dropouts/stragglers).  With no
  deadline, no over-selection and an always-on fleet it reproduces the
  legacy ``run_simulation`` loop event-for-event.
* :class:`BufferedPolicy` — FedBuff-style semi-asynchronous aggregation:
  the server keeps ``max_concurrency`` clients training at all times and
  aggregates whenever ``buffer_size`` updates have arrived, discounting each
  update by ``(1 + staleness) ** -staleness_exponent`` where staleness is
  the number of server versions that elapsed while it was in flight.

Both drive the same :class:`~repro.fl.events.EventQueue` and the same
per-client algorithm primitives (``run_client`` / ``ingest``), so every
algorithm in the registry works under every policy unchanged.  Client work
is *snapshotted* at dispatch time — the state a client downloads is the
server state at its dispatch timestamp, which is exactly what staleness
means — and handed to a pluggable :class:`~repro.fl.executor.Executor`
(inline, thread pool or process pool); the queue orders arrivals, drops
and aggregations on the simulated clock, so the History is identical for
any worker count.
"""

from __future__ import annotations

import math
import time
import warnings
from dataclasses import dataclass, field
from typing import ClassVar

import numpy as np

from ..telemetry import runtime as telemetry
from ..telemetry.logs import get_logger
from .availability import AvailabilityModel, make_availability
from .checkpoint import make_checkpointer
from .events import (CLIENT_DROPPED, CLIENT_FAILED, DOWNLOAD_START,
                     EVAL_TICK, SERVER_AGGREGATE, TRAIN_COMPLETE,
                     UPDATE_REJECTED, UPLOAD_COMPLETE, Event, EventQueue)
from .executor import (EXECUTOR_KINDS, Executor, InlineExecutor,
                       make_work_item)
from .faults import FaultModel, FaultSpec, corrupt_update
from .history import History, RoundRecord
from .sanitizers import freeze_arrays, frozen_arrays, resolve_strict

__all__ = ["ExecutionConfig", "AggregationPolicy", "SynchronousPolicy",
           "BufferedPolicy", "AGGREGATION_POLICIES", "make_policy",
           "sample_count", "validate_update"]

_log = get_logger("aggregation")


def sample_count(num_clients: int, sample_ratio: float) -> int:
    """Participants per round — the single formula behind both
    :func:`repro.fl.simulation.sample_clients` and the policies' sampling
    (the bit-exact legacy-equivalence contract depends on them agreeing)."""
    return min(max(1, int(round(num_clients * sample_ratio))), num_clients)


# ----------------------------------------------------------------------
# Coordinator defense: update validation
# ----------------------------------------------------------------------

def _payload_arrays(value):
    """Yield every ndarray leaf of an uplink payload (any nesting)."""
    if isinstance(value, np.ndarray):
        yield value
    elif isinstance(value, dict):
        for item in value.values():
            yield from _payload_arrays(item)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _payload_arrays(item)


def validate_update(update, norm_bound: float | None = None) -> str | None:
    """Judge one :class:`~repro.algorithms.base.ClientUpdate` before it may
    enter aggregation; returns ``None`` when healthy, else a quarantine
    reason code (``"nonfinite"``, ``"norm"``, ``"shape"``, ``"malformed"``).

    Checks, in order: scalar sanity (finite loss and non-negative finite
    weight), structural sanity for the parameter-averaging ``(state,
    maps)`` family (array-valued state entries, every entry mapped),
    NaN/Inf in any float array leaf, and — when ``norm_bound`` is set —
    a max-abs magnitude bound.  A zeroed payload passes deliberately: it
    is finite and in bounds, which is exactly what makes silent erasure
    the hardest fault to defend against.
    """
    try:
        loss = float(update.train_loss)
        weight = float(update.weight)
        payload = update.payload
    except (AttributeError, TypeError, ValueError):
        return "malformed"
    if not math.isfinite(weight) or weight < 0:
        return "malformed"
    if (isinstance(payload, tuple) and len(payload) == 2
            and all(isinstance(part, dict) for part in payload)):
        state, maps = payload
        if not all(isinstance(v, np.ndarray) for v in state.values()):
            return "shape"
        if set(state) - set(maps):
            return "shape"
    if not math.isfinite(loss):
        return "nonfinite"
    for array in _payload_arrays(payload):
        if array.size and np.issubdtype(array.dtype, np.floating):
            if not np.all(np.isfinite(array)):
                return "nonfinite"
            if (norm_bound is not None
                    and float(np.max(np.abs(array))) > norm_bound):
                return "norm"
    return None


@dataclass(frozen=True)
class ExecutionConfig:
    """The execution block of a simulation: how rounds actually run."""

    policy: str = "sync"                 # "sync" | "buffered"
    #: availability model name (registry in :mod:`repro.fl.availability`).
    availability: str = "always_on"
    availability_kwargs: dict = field(default_factory=dict)
    #: sync: wall-clock budget per round; updates arriving later are dropped
    #: (None = wait for the straggler, the legacy behaviour).
    deadline_s: float | None = None
    #: sync: dispatch ceil(target * (1 + over_select)) clients to hedge
    #: against dropouts and stragglers.
    over_select: float = 0.0
    #: buffered: aggregate once this many updates arrived.
    buffer_size: int = 4
    #: buffered: clients kept training concurrently (None = the sync
    #: policy's per-round sample size).
    max_concurrency: int | None = None
    #: buffered: staleness discount exponent alpha in (1+s)^-alpha.
    staleness_exponent: float = 0.5
    #: seed for availability/dropout traces (None = derived from sim seed).
    availability_seed: int | None = None
    #: attach per-event timelines to each RoundRecord.
    record_events: bool = True
    #: deterministic fault injection (:mod:`repro.fl.faults`); ``None`` (or
    #: an all-zero spec) is the healthy fleet.  A plain dict is accepted
    #: and coerced, so serialised configs round-trip.
    faults: FaultSpec | None = None
    #: sync: minimum fraction of dispatched clients that must arrive (by
    #: the deadline) for the round to aggregate.  Unmet quorum extends the
    #: deadline once (doubling it); still unmet, the round is skipped —
    #: never crashed.  ``None`` aggregates whatever arrived (legacy).
    quorum: float | None = None
    #: coordinator defense: run :func:`validate_update` on every arrived
    #: update and quarantine failures (``dropped_quarantined`` extras).
    validate: bool = True
    #: optional max-abs bound for the ``"norm"`` validation check.
    norm_bound: float | None = None
    #: executor hardening (purely mechanical, like ``workers``): per-item
    #: result timeout and bounded transparent retries on transient
    #: failures.  ``None`` inherits the executor defaults.
    item_timeout_s: float | None = None
    item_retries: int | None = None
    #: client-work parallelism (see :mod:`repro.fl.executor`).  Purely a
    #: *mechanical* setting: results are identical for any worker count,
    #: so neither field is serialised by :meth:`to_dict` — the same cell
    #: hashes (and caches) the same however it is parallelised.  ``None``
    #: inherits the ``SimulationConfig`` setting; an explicit value
    #: (including ``workers=1``) always wins.
    workers: int | None = None
    executor: str | None = None
    #: strict-mode runtime sanitizers (:mod:`repro.fl.sanitizers`):
    #: freeze broadcast arrays during dispatch and trip on legacy global
    #: RNG use.  Observation-only — a strict run is byte-identical to a
    #: non-strict one — so, like ``workers``, it is never serialised or
    #: hashed.  ``None`` inherits the process default
    #: (:func:`repro.fl.sanitizers.set_strict_mode`).
    strict: bool | None = None

    #: fields deliberately absent from :meth:`to_dict` and therefore from
    #: the spec content hash: execution mechanics that cannot change
    #: results.  ``repro lint``'s hash-field-coverage rule enforces that
    #: every field is either serialised or listed here, so a new field
    #: can never be hash-invisible by accident.
    HASH_EXCLUDED: ClassVar[frozenset[str]] = frozenset({
        "workers", "executor", "item_timeout_s", "item_retries", "strict"})

    def __post_init__(self):
        if self.policy not in AGGREGATION_POLICIES:
            raise ValueError(f"unknown execution policy {self.policy!r}; "
                             f"known: {sorted(AGGREGATION_POLICIES)}")
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        if self.over_select < 0:
            raise ValueError("over_select must be >= 0")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.executor is not None and self.executor not in EXECUTOR_KINDS:
            raise ValueError(f"unknown executor {self.executor!r}; "
                             f"known: {EXECUTOR_KINDS}")
        if isinstance(self.faults, dict):
            object.__setattr__(self, "faults", FaultSpec.from_dict(self.faults))
        if self.quorum is not None:
            if not 0.0 < self.quorum <= 1.0:
                raise ValueError("quorum must be in (0, 1]")
            if self.policy != "sync":
                raise ValueError("quorum is a synchronous-round concept; "
                                 "the buffered policy has no round to gate")
        if self.item_timeout_s is not None and self.item_timeout_s <= 0:
            raise ValueError("item_timeout_s must be > 0")
        if self.item_retries is not None and self.item_retries < 0:
            raise ValueError("item_retries must be >= 0")

    def fault_model(self, run_seed: int) -> FaultModel | None:
        """The run's seeded fault model (``None`` = healthy fleet)."""
        if self.faults is None or not self.faults.enabled:
            return None
        return FaultModel(self.faults, run_seed)

    def build_availability(self, num_clients: int,
                           sim_seed: int) -> AvailabilityModel:
        seed = (self.availability_seed if self.availability_seed is not None
                else sim_seed + 7919)
        return make_availability(self.availability, num_clients, seed=seed,
                                 **self.availability_kwargs)

    # ------------------------------------------------------------------
    # Serialisation (stable JSON-safe form; used by RunSpec hashing)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe dict; inverse of :meth:`from_dict`.

        ``workers``/``executor`` (and the ``item_timeout_s``/
        ``item_retries`` hardening knobs) are deliberately omitted: they
        cannot change results (the executor determinism contract), so two
        configs differing only in parallelism serialise — and content-hash
        — identically.  :meth:`from_dict` still accepts payloads that
        carry them.  The robustness fields (``faults``/``quorum``/
        ``validate``/``norm_bound``) *do* change results, but serialise
        only when set away from their defaults — pre-existing configs keep
        their exact serialised form, so no cached spec hash ever moves.
        """
        payload = {
            "policy": self.policy,
            "availability": self.availability,
            "availability_kwargs": dict(self.availability_kwargs),
            "deadline_s": self.deadline_s,
            "over_select": self.over_select,
            "buffer_size": self.buffer_size,
            "max_concurrency": self.max_concurrency,
            "staleness_exponent": self.staleness_exponent,
            "availability_seed": self.availability_seed,
            "record_events": self.record_events,
        }
        if self.faults is not None and self.faults.enabled:
            payload["faults"] = self.faults.to_dict()
        if self.quorum is not None:
            payload["quorum"] = self.quorum
        if not self.validate:
            payload["validate"] = False
        if self.norm_bound is not None:
            payload["norm_bound"] = self.norm_bound
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ExecutionConfig":
        return cls(**payload)


class AggregationPolicy:
    """Base: owns the queue/clock/history plumbing both policies share."""

    name = "base"

    def __init__(self, sim_config, execution: ExecutionConfig,
                 availability: AvailabilityModel,
                 executor: Executor | None = None):
        self.sim_config = sim_config
        self.execution = execution
        self.availability = availability
        #: client-work executor; ``None`` falls back to inline execution
        #: bound to the algorithm at :meth:`run` time.
        self.executor = executor
        self.queue = EventQueue()
        self.timeline: list[Event] = []
        #: per-client count of accepted dispatches so far.
        self._participation: dict[int, int] = {}
        #: seeded fault model, bound by :meth:`run` (None = healthy fleet).
        self.faults: FaultModel | None = None
        #: strict-mode sanitizers (:mod:`repro.fl.sanitizers`): the
        #: execution block's setting wins, then the sim config's, then
        #: the process default.  Observation-only either way.
        self.strict: bool = resolve_strict(
            execution.strict, getattr(sim_config, "strict", None))

    # -- shared plumbing ------------------------------------------------
    def emit(self, event: Event) -> Event:
        if self.execution.record_events:
            self.timeline.append(event)
        return event

    def take_timeline(self) -> list[dict]:
        entries = [event.timeline_entry() for event in self.timeline]
        self.timeline = []
        return entries

    def participation_index(self, client_id: int) -> int:
        """The client's k-th dispatch, counted per client — the dropout
        key, so a client's k-th participation draws the same mid-round
        dropout decision under every aggregation policy."""
        k = self._participation.get(client_id, 0)
        self._participation[client_id] = k + 1
        return k

    def _executor_for(self, algorithm) -> Executor:
        """The run's executor (an inline one bound to ``algorithm`` when
        none was injected)."""
        if self.executor is None:
            self.executor = InlineExecutor(algorithm)
        return self.executor

    def _record_run_telemetry(self, history: History,
                              wall_start: float) -> None:
        """End-of-run gauges: sim-vs-wall-clock skew and queue statistics.

        Observation-only and computed from values the run produced anyway;
        a no-op (beyond one ``enabled()`` check) when telemetry is off.
        """
        if not telemetry.enabled():
            return
        wall_s = time.perf_counter() - wall_start
        sim_s = (history.records[-1].sim_time_s if history.records else 0.0)
        telemetry.set_gauge("simulation.wall_s", wall_s, policy=self.name)
        telemetry.set_gauge("simulation.sim_s", sim_s, policy=self.name)
        if wall_s > 0:
            # >1 means the simulated clock outruns the wall clock.
            telemetry.set_gauge("simulation.sim_speedup", sim_s / wall_s,
                                policy=self.name)
        telemetry.max_gauge("events.queue_depth_max", self.queue.max_depth)
        telemetry.inc("events.pushed", self.queue.pushed)

    def sample_size(self, num_clients: int) -> int:
        return sample_count(num_clients, self.sim_config.sample_ratio)

    def is_eval_round(self, round_index: int) -> bool:
        return (round_index % self.sim_config.eval_every == 0
                or round_index == self.sim_config.num_rounds - 1)

    def should_stop(self, accuracy: float | None) -> bool:
        target = self.sim_config.stop_at_accuracy
        return target is not None and accuracy is not None \
            and accuracy >= target

    def run(self, algorithm) -> History:
        raise NotImplementedError


class SynchronousPolicy(AggregationPolicy):
    """Round-based aggregation with deadline and over-selection."""

    name = "sync"

    def run(self, algorithm) -> History:
        config, execution = self.sim_config, self.execution
        wall_start = time.perf_counter()
        rng = np.random.default_rng(config.seed)
        history = History(algorithm=algorithm.name,
                          dataset=algorithm.dataset_name)
        all_ids = sorted(algorithm.clients)
        sim_time = 0.0
        self.faults = execution.fault_model(config.seed)

        start_round = 0
        checkpointer = make_checkpointer(getattr(config, "checkpoint", None))
        if checkpointer is not None:
            restored = checkpointer.maybe_resume(algorithm, rng)
            if restored is not None:
                history, start_round, sim_time, self._participation = restored

        for round_index in range(start_round, config.num_rounds):
            online = [cid for cid in all_ids
                      if self.availability.is_online(cid, sim_time)]
            while not online:
                # Idle until somebody comes back (diurnal night, churn gap).
                comeback = min(self.availability.next_online(cid, sim_time)
                               for cid in all_ids)
                if not math.isfinite(comeback) or comeback <= sim_time:
                    break
                sim_time = comeback
                online = [cid for cid in all_ids
                          if self.availability.is_online(cid, sim_time)]
            if not online:
                break

            sampled = self._sample(online, len(all_ids), rng)
            with telemetry.span("dispatch_round", round=round_index):
                received, duration, drops, notes = self._dispatch_round(
                    algorithm, sampled, round_index, sim_time, rng)
            for reason, count in drops.items():
                if count:
                    telemetry.inc("aggregation.dropped", count,
                                  reason=reason)

            with telemetry.span("aggregate", round=round_index):
                outcome = (algorithm.ingest(received, round_index, rng)
                           if received else None)
            mean_loss = outcome.mean_train_loss if outcome else 0.0
            round_time = duration + config.server_overhead_s
            sim_time = sim_time + round_time
            self.emit(Event(sim_time, SERVER_AGGREGATE,
                            info={"round": round_index,
                                  "received": len(received)}))

            acc = None
            if self.is_eval_round(round_index):
                with telemetry.span("evaluate", round=round_index):
                    acc = algorithm.evaluate_global()
                self.emit(Event(sim_time, EVAL_TICK,
                                info={"round": round_index, "accuracy": acc}))
            extras = dict(outcome.extras) if outcome else {}
            extras.update({"dispatched": len(sampled),
                           "received": len(received)})
            extras.update({f"dropped_{k}": v for k, v in drops.items() if v})
            extras.update(notes)
            record = RoundRecord(
                round_index=round_index, sim_time_s=sim_time,
                round_time_s=round_time, train_loss=mean_loss,
                global_accuracy=acc, extras=extras,
                events=self.take_timeline())
            history.append(record)
            telemetry.record_round(record)
            telemetry.inc("aggregation.rounds", policy=self.name)
            if checkpointer is not None and checkpointer.due(round_index):
                checkpointer.save(algorithm, rng, history,
                                  next_round=round_index + 1,
                                  sim_time_s=sim_time,
                                  participation=self._participation)
            if self.should_stop(acc):
                break

        history.final_device_accuracies = algorithm.per_device_accuracies()
        if checkpointer is not None:
            checkpointer.clear()
        self._record_run_telemetry(history, wall_start)
        return history

    # -- helpers --------------------------------------------------------
    def _sample(self, online: list[int], num_clients: int,
                rng: np.random.Generator) -> np.ndarray:
        from .simulation import sample_clients  # circular at module load
        target = self.sample_size(num_clients)
        extra = int(math.ceil(target * self.execution.over_select))
        if extra == 0 and len(online) == num_clients:
            # Bit-for-bit the legacy sampling stream (equivalence contract).
            return sample_clients(num_clients, self.sim_config.sample_ratio,
                                  rng)
        count = min(target + extra, len(online))
        return rng.choice(np.asarray(online), size=count, replace=False)

    def _dispatch_round(self, algorithm, sampled, round_index: int,
                        start_s: float, rng: np.random.Generator):
        """Train the round's clients and play their events through the
        queue; returns (received updates, round duration before server
        overhead, drop counters, quorum notes for the round's extras).

        Three phases: (1) decide each client's fate on the coordinator
        (availability draws must happen in dispatch order; injected fault
        plans are order-independent by construction); (2) run every
        surviving client's work item through the executor as one batch;
        (3) schedule their train/upload events and *settle* the round
        against the deadline.  Phase 2 is where worker parallelism happens
        — the decisions and the queue never leave the coordinator, so the
        round is deterministic for any worker count.
        """
        execution = self.execution
        executor = self._executor_for(algorithm)
        deadline = (execution.deadline_s if execution.deadline_s is not None
                    else math.inf)
        #: latest deadline settlement may use: with a quorum the round may
        #: extend its deadline once (doubling it), so "provably late" must
        #: be judged against the extension or a recoverable client would
        #: have been skipped before the extension could save it.
        horizon = deadline if execution.quorum is None else deadline * 2
        drops = {"dropout": 0, "churn": 0, "deadline": 0,
                 "crash": 0, "quarantined": 0}
        dispatch_order = {int(cid): i for i, cid in enumerate(sampled)}
        to_train: list[int] = []
        timings: dict[int, tuple[float, float]] = {}
        plans: dict[int, object] = {}

        for client_id in sampled:
            cid = int(client_id)
            ctx = algorithm.clients[cid]
            down, train, up = algorithm.client_time_segments(ctx)
            plan = (self.faults.plan(round_index, cid)
                    if self.faults is not None else None)
            if plan is not None and plan.slowdown != 1.0:
                train *= plan.slowdown
                total = train + (down + up)
            else:
                # No slowdown: keep the algorithm's own total (bit-exact
                # with the zero-fault path, overrides included).
                total = algorithm.client_round_time_s(ctx)
            if plan is not None and not plan.clean:
                plans[cid] = plan
            timings[cid] = (down + train, total)
            self.queue.push(Event(start_s, DOWNLOAD_START, cid,
                                  info={"round": round_index}))
            if self.availability.drops_round(cid,
                                             self.participation_index(cid)):
                # Device killed the job after training, before upload.
                self.queue.push(Event(start_s + down + train, CLIENT_DROPPED,
                                      cid, info={"reason": "dropout"}))
                continue
            online_until = self.availability.online_until(cid, start_s)
            if online_until < start_s + total:
                self.queue.push(Event(min(online_until, start_s + total),
                                      CLIENT_DROPPED, cid,
                                      info={"reason": "churn"}))
                continue
            if plan is not None and plan.crash:
                # Injected fault: the device dies after training, before
                # its upload lands — the work is lost either way, so skip
                # the (expensive) local training too.
                self.queue.push(Event(start_s + down + train, CLIENT_FAILED,
                                      cid, info={"reason": "crash"}))
                continue
            if total > horizon:
                # Provably late: the arrival will be discarded, so skip the
                # (expensive) local training and schedule the late upload.
                self.queue.push(Event(start_s + total, UPLOAD_COMPLETE, cid,
                                      info={"late": True}))
                continue
            to_train.append(cid)

        shared = (algorithm.pack_round_broadcast(round_index)
                  if executor.needs_broadcast else None)
        items = [make_work_item(algorithm, cid, round_index,
                                self.sim_config.seed,
                                executor.needs_broadcast,
                                shared_broadcast=shared)
                 for cid in to_train]
        wall_timings: dict[int, dict] = {}
        if self.strict:
            # Freeze the shared broadcast and the live global state for
            # the whole batch: workers may only read them, so a mutation
            # race raises at the offending write instead of corrupting a
            # later round.  ``run_batch`` returns a completed list, so
            # every worker's execution happens inside the guard.
            with frozen_arrays(shared,
                               getattr(algorithm, "global_state", None)):
                batch = executor.run_batch(items)
        else:
            batch = executor.run_batch(items)
        for cid, result in zip(to_train, batch):
            if result.timing is not None:
                wall_timings[cid] = result.timing
            algorithm.apply_client_state(cid, result.client_state)
            trained_at, total = timings[cid]
            plan = plans.get(cid)
            if plan is not None:
                if plan.slowdown != 1.0:
                    result.update.round_time_s = total
                if plan.corrupt is not None:
                    corrupt_update(result.update, plan.corrupt,
                                   self.faults.spec.corrupt_factor)
            self.queue.push(Event(start_s + trained_at, TRAIN_COMPLETE, cid))
            self.queue.push(Event(start_s + total, UPLOAD_COMPLETE, cid,
                                  info={"update": result.update}))

        #: drain the queue once, then settle (possibly twice, under an
        #: extended deadline) — pure recomputation over the drained events,
        #: so the two passes cannot disagree about what arrived.
        arrivals: list[tuple[Event, object]] = []
        drop_events: list[Event] = []
        while self.queue:
            event = self.emit(self.queue.pop())
            if event.type in (CLIENT_DROPPED, CLIENT_FAILED):
                drops[event.info["reason"]] += 1
                drop_events.append(event)
            elif event.type == UPLOAD_COMPLETE:
                arrivals.append((event, event.info.pop("update", None)))

        verdicts: dict[int, str | None] = {}

        def judge(update) -> str | None:
            """Validation verdict, memoised so a quorum-extended second
            settle never judges (or counts) the same update twice."""
            key = id(update)
            if key not in verdicts:
                verdicts[key] = (validate_update(update, execution.norm_bound)
                                 if execution.validate else None)
            return verdicts[key]

        def settle(effective_deadline: float):
            kept, rejected, duration, late = [], [], 0.0, 0
            for event in drop_events:
                duration = max(duration, min(event.time_s - start_s,
                                             effective_deadline))
            for event, update in arrivals:
                if (update is None
                        or update.round_time_s > effective_deadline):
                    late += 1
                    event.info["late"] = True
                    duration = max(duration, effective_deadline)
                    continue
                event.info.pop("late", None)
                # The upload landed (and consumed wall clock) whether or
                # not it survives validation.
                duration = max(duration, update.round_time_s)
                verdict = judge(update)
                if verdict is not None:
                    rejected.append((event, update, verdict))
                else:
                    kept.append(update)
            return kept, rejected, duration, late

        received, rejected, duration, late = settle(deadline)
        notes: dict = {}
        if execution.quorum is not None:
            target = int(math.ceil(execution.quorum * len(sampled)))
            notes["quorum_target"] = target
            if len(received) < target and math.isfinite(deadline):
                # Degrade gracefully: extend the deadline once (doubling
                # it) to let near-miss stragglers land.
                received, rejected, duration, late = settle(deadline * 2)
                notes["deadline_extended"] = True
                telemetry.inc("aggregation.quorum_extended")
                _log.info("round %d: quorum %d/%d unmet at deadline; "
                          "extended once", round_index, len(received), target)
            notes["quorum_met"] = len(received) >= target
            if not notes["quorum_met"]:
                # Still unmet: skip the round rather than aggregate a
                # biased sliver — degrade, never crash.
                telemetry.inc("aggregation.rounds_skipped")
                _log.warning("round %d: quorum %d/%d unmet after extension; "
                             "round skipped", round_index, len(received),
                             target)
                received = []
        drops["deadline"] = late
        drops["quarantined"] = len(rejected)
        for event, update, verdict in rejected:
            telemetry.inc("aggregation.quarantined", reason=verdict)
            self.emit(Event(event.time_s, UPDATE_REJECTED, event.client_id,
                            info={"reason": verdict}))
        if wall_timings:
            notes["client_timings"] = wall_timings
        #: updates kept in dispatch order — a synchronous server treats the
        #: round's batch as a set, and dispatch order is the legacy loop's
        #: accumulation order (the equivalence contract is bit-exact).
        received.sort(key=lambda u: dispatch_order[u.client_id])
        return received, duration, drops, notes


class BufferedPolicy(AggregationPolicy):
    """FedBuff-style buffered semi-asynchronous aggregation."""

    name = "buffered"

    def run(self, algorithm) -> History:
        config, execution = self.sim_config, self.execution
        wall_start = time.perf_counter()
        rng = np.random.default_rng(config.seed)
        history = History(algorithm=algorithm.name,
                          dataset=algorithm.dataset_name)
        self._all_ids = sorted(algorithm.clients)
        self._in_flight: set[int] = set()
        self._dispatches = 0
        #: per-(version, client) dispatch counts: a client re-dispatched at
        #: an unchanged server version must train a *fresh* seed-derived
        #: draw, not a bit-identical replay of its previous round (same
        #: broadcast + same (seed, version, client) triple would otherwise
        #: double-weight one gradient in the buffer).
        self._version_dispatches: dict[tuple[int, int], int] = {}
        #: per-client fault-draw counter, separate from both participation
        #: and version dispatch counts so consulting the fault model never
        #: shifts any pre-existing stream (zero-fault runs are unchanged).
        self._fault_counts: dict[int, int] = {}
        self._retry_pending = False
        self.faults = execution.fault_model(config.seed)
        if getattr(config, "checkpoint", None) is not None:
            warnings.warn("checkpointing is not supported by the buffered "
                          "policy (in-flight futures cannot be snapshotted); "
                          "running without checkpoints", stacklevel=2)
        self._concurrency = (execution.max_concurrency
                             or self.sample_size(len(self._all_ids)))
        #: hard cap on dispatches — keeps pathological fleets (e.g. dropout
        #: probability 1.0) from spinning the dispatch->drop loop forever.
        self._dispatch_budget = max(
            1000, 64 * config.num_rounds * execution.buffer_size)
        version = 0
        last_agg_time = 0.0
        buffer: list = []
        drops = {"dropout": 0, "churn": 0, "crash": 0, "quarantined": 0}
        #: wall-clock records of updates arrived since the last aggregation.
        round_timings: dict[int, dict] = {}

        self._refill(algorithm, 0.0, version, rng)

        while self.queue and version < config.num_rounds:
            event = self.emit(self.queue.pop())
            now = event.time_s
            if event.type in (CLIENT_DROPPED, CLIENT_FAILED):
                self._in_flight.discard(event.client_id)
                drops[event.info["reason"]] += 1
                self._refill(algorithm, now, version, rng)
                continue
            if event.type == DOWNLOAD_START and event.client_id is None:
                # Deferred dispatch: the fleet was fully offline/busy.
                self._retry_pending = False
                self._refill(algorithm, now, version, rng)
                continue
            if event.type != UPLOAD_COMPLETE:
                continue

            self._in_flight.discard(event.client_id)
            result = event.info.pop("future").result()
            if result.timing is not None:
                round_timings[event.client_id] = result.timing
            algorithm.apply_client_state(event.client_id, result.client_state)
            update = result.update
            plan = event.info.pop("plan", None)
            if plan is not None:
                slowed_total = event.info.pop("total", None)
                if slowed_total is not None and plan.slowdown != 1.0:
                    update.round_time_s = slowed_total
                if plan.corrupt is not None:
                    corrupt_update(update, plan.corrupt,
                                   self.faults.spec.corrupt_factor)
            if execution.validate:
                verdict = validate_update(update, execution.norm_bound)
                if verdict is not None:
                    # Quarantine: the upload never reaches the buffer.
                    drops["quarantined"] += 1
                    telemetry.inc("aggregation.quarantined", reason=verdict)
                    self.emit(Event(now, UPDATE_REJECTED, event.client_id,
                                    info={"reason": verdict}))
                    self._refill(algorithm, now, version, rng)
                    continue
            update.staleness = version - update.version
            update.discount = float(
                (1.0 + update.staleness) ** -execution.staleness_exponent)
            telemetry.observe("aggregation.staleness", update.staleness)
            telemetry.observe("aggregation.discount", update.discount)
            event.info["staleness"] = update.staleness
            event.info["discount"] = update.discount
            buffer.append(update)
            self._refill(algorithm, now, version, rng)
            if len(buffer) < execution.buffer_size:
                continue

            # Buffer full: aggregate, advance the server version.
            with telemetry.span("aggregate", round=version):
                outcome = algorithm.ingest(buffer, version, rng)
            agg_time = now + config.server_overhead_s
            self.emit(Event(agg_time, SERVER_AGGREGATE,
                            info={"round": version, "received": len(buffer)}))
            acc = None
            if self.is_eval_round(version):
                with telemetry.span("evaluate", round=version):
                    acc = algorithm.evaluate_global()
                self.emit(Event(agg_time, EVAL_TICK,
                                info={"round": version, "accuracy": acc}))
            staleness = [u.staleness for u in buffer]
            extras = {
                "received": len(buffer),
                "stale_updates": int(sum(s > 0 for s in staleness)),
                "mean_staleness": float(np.mean(staleness)),
                "max_staleness": int(max(staleness)),
                "mean_discount": float(np.mean([u.discount for u in buffer])),
            }
            extras.update({f"dropped_{k}": v for k, v in drops.items() if v})
            drops = {k: 0 for k in drops}
            if round_timings:
                extras["client_timings"] = round_timings
                round_timings = {}
            record = RoundRecord(
                round_index=version, sim_time_s=agg_time,
                round_time_s=agg_time - last_agg_time,
                train_loss=outcome.mean_train_loss, global_accuracy=acc,
                extras=extras, events=self.take_timeline())
            history.append(record)
            telemetry.record_round(record)
            telemetry.inc("aggregation.rounds", policy=self.name)
            last_agg_time = agg_time
            buffer = []
            version += 1
            if self.should_stop(acc):
                break

        # Updates still in flight when the run ends are never aggregated,
        # but their training *happened* — a trained result exists for
        # every in-flight item under every executor — so absorb their
        # client state here, keeping final per-device accuracies identical
        # across executors.
        while self.queue:
            event = self.queue.pop()
            future = event.info.pop("future", None)
            if future is not None:
                result = future.result()
                algorithm.apply_client_state(event.client_id,
                                             result.client_state)

        # Drops accrued after the last aggregation would otherwise vanish;
        # fold them into the final record so dropped_counts() stays honest.
        if history.records:
            tail = history.records[-1].extras
            for reason, count in drops.items():
                if count:
                    key = f"dropped_{reason}"
                    tail[key] = tail.get(key, 0) + count
        history.final_device_accuracies = algorithm.per_device_accuracies()
        self._record_run_telemetry(history, wall_start)
        return history

    # -- helpers --------------------------------------------------------
    def _refill(self, algorithm, now: float, version: int,
                rng: np.random.Generator) -> None:
        """Top the in-flight pool back up to the concurrency target."""
        while len(self._in_flight) < self._concurrency:
            if not self._dispatch(algorithm, now, version, rng):
                break

    def _dispatch(self, algorithm, now: float, version: int,
                  rng: np.random.Generator) -> bool:
        """Hand the next available client a job at time ``now``; returns
        False when no idle client is online (a deferred retry is queued)."""
        if self._dispatches >= self._dispatch_budget:
            return False
        idle = [cid for cid in self._all_ids if cid not in self._in_flight]
        candidates = [cid for cid in idle
                      if self.availability.is_online(cid, now)]
        if not candidates:
            if idle and not self._retry_pending:
                comeback = min(self.availability.next_online(cid, now)
                               for cid in idle)
                if math.isfinite(comeback):
                    self._retry_pending = True
                    self.queue.push(Event(max(comeback, now), DOWNLOAD_START,
                                          None, info={"deferred": True}))
            return False

        cid = int(rng.choice(np.asarray(candidates)))
        self._in_flight.add(cid)
        self._dispatches += 1
        ctx = algorithm.clients[cid]
        down, train, up = algorithm.client_time_segments(ctx)
        plan = None
        if self.faults is not None:
            # Fault plans key on a policy-owned per-client dispatch count:
            # unlike participation/version counters it exists solely for
            # the fault stream, so healthy draws are untouched.
            fault_dispatch = self._fault_counts.get(cid, 0)
            self._fault_counts[cid] = fault_dispatch + 1
            plan = self.faults.plan(version, cid, fault_dispatch)
            if plan.clean:
                plan = None
        if plan is not None and plan.slowdown != 1.0:
            train *= plan.slowdown
            total = train + (down + up)
        else:
            total = algorithm.client_round_time_s(ctx)
        self.queue.push(Event(now, DOWNLOAD_START, cid,
                              info={"version": version}))
        if self.availability.drops_round(cid,
                                         self.participation_index(cid)):
            self.queue.push(Event(now + down + train, CLIENT_DROPPED, cid,
                                  info={"reason": "dropout"}))
            return True
        online_until = self.availability.online_until(cid, now)
        if online_until < now + total:
            self.queue.push(Event(min(online_until, now + total),
                                  CLIENT_DROPPED, cid,
                                  info={"reason": "churn"}))
            return True
        if plan is not None and plan.crash:
            # Injected fault: device dies post-train, pre-upload; the work
            # is lost either way, so skip the local training too.
            self.queue.push(Event(now + down + train, CLIENT_FAILED, cid,
                                  info={"reason": "crash"}))
            return True
        # Submit the work item now — the broadcast snapshot taken at this
        # instant *is* the staleness semantics (the client downloads the
        # server state at its dispatch timestamp) — and resolve the future
        # when the upload event fires on the simulated clock.
        executor = self._executor_for(algorithm)
        repeat = self._version_dispatches.get((version, cid), 0)
        self._version_dispatches[(version, cid)] = repeat + 1
        item = make_work_item(algorithm, cid, version, self.sim_config.seed,
                              executor.needs_broadcast,
                              dispatch_index=repeat)
        if self.strict:
            # The item's broadcast is its private snapshot of the server
            # state at dispatch time (that snapshot *is* the staleness
            # semantics) — freeze it for the item's whole flight so no
            # worker can write into it while it trains.  The live global
            # state is guarded only across the submit call, which covers
            # the inline executor's eager execution.
            freeze_arrays(item.broadcast)
            with frozen_arrays(getattr(algorithm, "global_state", None)):
                future = executor.submit(item)
        else:
            future = executor.submit(item)
        self.queue.push(Event(now + down + train, TRAIN_COMPLETE, cid))
        info: dict = {"future": future}
        if plan is not None:
            # Stash the plan for the arrival handler (corruption/straggler
            # bookkeeping happens when the upload lands); popped before the
            # timeline serialises, so it never reaches the JSON record.
            info["plan"] = plan
            info["total"] = total
        self.queue.push(Event(now + total, UPLOAD_COMPLETE, cid, info=info))
        return True


AGGREGATION_POLICIES: dict[str, type[AggregationPolicy]] = {
    SynchronousPolicy.name: SynchronousPolicy,
    BufferedPolicy.name: BufferedPolicy,
}


def make_policy(sim_config, execution: ExecutionConfig,
                availability: AvailabilityModel,
                executor: Executor | None = None) -> AggregationPolicy:
    """Instantiate the execution block's aggregation policy."""
    cls = AGGREGATION_POLICIES[execution.policy]
    return cls(sim_config, execution, availability, executor=executor)
