"""Run + update (de)serialisation: persist runs and client uploads.

Two families live here:

* **History JSON** — the sweep drivers under ``results/`` and downstream
  notebooks use this to keep raw run records next to rendered tables;
* **ClientUpdate round-trips** — a lossless, JSON-safe encoding of the
  algorithm-specific uplink payloads (sliced state dicts + index maps,
  FedProto prototype sums/counts, Fed-ET public-set predictions).  The
  process-pool executor moves updates as pickles; this codec is the
  transport-agnostic alternative (wire protocols, debugging dumps) and the
  contract ``tests/test_parallel_exec.py`` exercises for every algorithm's
  payload shape.  Arrays are encoded as base64 raw bytes with dtype and
  shape, so decoding is bit-exact.
"""

from __future__ import annotations

import base64
import json
from pathlib import Path

import numpy as np

from .history import History, RoundRecord

__all__ = ["history_to_dict", "history_from_dict", "save_history",
           "load_history", "encode_payload", "decode_payload",
           "client_update_to_dict", "client_update_from_dict"]


#: extras keys that carry measured wall-clock (nondeterministic) values —
#: ``client_timings`` comes from :mod:`repro.fl.executor` timing — and are
#: therefore stripped at serialisation time.  Keeping them out of the JSON
#: form is what makes ``History.to_json()`` byte-identical across executors,
#: worker counts and telemetry on/off (the determinism contract pinned by
#: ``tests/test_parallel_exec.py`` and ``tests/test_telemetry.py``).
VOLATILE_EXTRA_KEYS = frozenset({"client_timings"})

#: dataclass *fields* (as opposed to extras keys) that are deliberately
#: dropped from the serialised form, keyed by payload class name.  Empty
#: today: every field of ClientUpdate/RoundRecord/History round-trips.
#: ``repro lint``'s serialization-coverage rule reads this declaration, so
#: a field can only be dropped by naming it here — never by accident.
VOLATILE_FIELDS: dict[str, frozenset] = {}


def _serialisable_extras(extras: dict) -> dict:
    if VOLATILE_EXTRA_KEYS.isdisjoint(extras):
        return extras
    return {k: v for k, v in extras.items() if k not in VOLATILE_EXTRA_KEYS}


def history_to_dict(history: History) -> dict:
    return {
        "algorithm": history.algorithm,
        "dataset": history.dataset,
        "final_device_accuracies": list(history.final_device_accuracies),
        "records": [
            {"round_index": r.round_index, "sim_time_s": r.sim_time_s,
             "round_time_s": r.round_time_s, "train_loss": r.train_loss,
             "global_accuracy": r.global_accuracy,
             "extras": _serialisable_extras(r.extras),
             "events": r.events}
            for r in history.records
        ],
    }


def history_from_dict(payload: dict) -> History:
    history = History(algorithm=payload["algorithm"],
                      dataset=payload["dataset"])
    for record in payload["records"]:
        history.append(RoundRecord(
            round_index=record["round_index"],
            sim_time_s=record["sim_time_s"],
            round_time_s=record["round_time_s"],
            train_loss=record["train_loss"],
            global_accuracy=record["global_accuracy"],
            extras=dict(record.get("extras", {})),
            events=list(record.get("events", []))))
    history.final_device_accuracies = list(
        payload.get("final_device_accuracies", []))
    return history


# ----------------------------------------------------------------------
# ClientUpdate payload round-trips
# ----------------------------------------------------------------------

def _encode_array(array: np.ndarray) -> dict:
    array = np.ascontiguousarray(array)
    return {"__ndarray__": {
        "dtype": array.dtype.str,
        "shape": list(array.shape),
        "data": base64.b64encode(array.tobytes()).decode("ascii"),
    }}


def _decode_array(payload: dict) -> np.ndarray:
    raw = base64.b64decode(payload["data"])
    array = np.frombuffer(raw, dtype=np.dtype(payload["dtype"]))
    return array.reshape(payload["shape"]).copy()


def encode_payload(value):
    """Recursively encode an algorithm payload into JSON-safe form.

    Handles the structures every registered algorithm's uplink uses:
    numpy arrays (tagged, bit-exact), dicts of them (state dicts, index
    maps), tuples (tagged so they survive the round trip distinct from
    lists — ``ClientUpdate.payload`` for parameter averaging is a
    ``(state, maps)`` tuple), lists, scalars and ``None``.
    """
    if isinstance(value, np.ndarray):
        return _encode_array(value)
    if isinstance(value, tuple):
        return {"__tuple__": [encode_payload(v) for v in value]}
    if isinstance(value, dict):
        return {str(k): encode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [encode_payload(v) for v in value]
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot encode payload element of type {type(value)!r}")


def decode_payload(value):
    """Inverse of :func:`encode_payload`."""
    if isinstance(value, dict):
        if "__ndarray__" in value and len(value) == 1:
            return _decode_array(value["__ndarray__"])
        if "__tuple__" in value and len(value) == 1:
            return tuple(decode_payload(v) for v in value["__tuple__"])
        return {k: decode_payload(v) for k, v in value.items()}
    if isinstance(value, list):
        return [decode_payload(v) for v in value]
    return value


def client_update_to_dict(update) -> dict:
    """Encode a :class:`~repro.algorithms.base.ClientUpdate` losslessly."""
    return {
        "client_id": int(update.client_id),
        "version": int(update.version),
        "train_loss": float(update.train_loss),
        "round_time_s": float(update.round_time_s),
        "weight": float(update.weight),
        "discount": float(update.discount),
        "staleness": int(update.staleness),
        "payload": encode_payload(update.payload),
    }


def client_update_from_dict(payload: dict):
    """Inverse of :func:`client_update_to_dict`."""
    from ..algorithms.base import ClientUpdate
    return ClientUpdate(
        client_id=payload["client_id"],
        version=payload["version"],
        train_loss=payload["train_loss"],
        round_time_s=payload["round_time_s"],
        weight=payload["weight"],
        discount=payload.get("discount", 1.0),
        staleness=payload.get("staleness", 0),
        payload=decode_payload(payload["payload"]))


def save_history(history: History, path: str | Path) -> None:
    Path(path).write_text(json.dumps(history_to_dict(history), indent=1))


def load_history(path: str | Path) -> History:
    return history_from_dict(json.loads(Path(path).read_text()))
