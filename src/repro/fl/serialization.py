"""History (de)serialisation: persist runs as JSON for later analysis.

The sweep drivers under ``results/`` and downstream notebooks use this to
keep raw run records next to the rendered tables.
"""

from __future__ import annotations

import json
from pathlib import Path

from .history import History, RoundRecord

__all__ = ["history_to_dict", "history_from_dict", "save_history",
           "load_history"]


def history_to_dict(history: History) -> dict:
    return {
        "algorithm": history.algorithm,
        "dataset": history.dataset,
        "final_device_accuracies": list(history.final_device_accuracies),
        "records": [
            {"round_index": r.round_index, "sim_time_s": r.sim_time_s,
             "round_time_s": r.round_time_s, "train_loss": r.train_loss,
             "global_accuracy": r.global_accuracy, "extras": r.extras,
             "events": r.events}
            for r in history.records
        ],
    }


def history_from_dict(payload: dict) -> History:
    history = History(algorithm=payload["algorithm"],
                      dataset=payload["dataset"])
    for record in payload["records"]:
        history.append(RoundRecord(
            round_index=record["round_index"],
            sim_time_s=record["sim_time_s"],
            round_time_s=record["round_time_s"],
            train_loss=record["train_loss"],
            global_accuracy=record["global_accuracy"],
            extras=dict(record.get("extras", {})),
            events=list(record.get("events", []))))
    history.final_device_accuracies = list(
        payload.get("final_device_accuracies", []))
    return history


def save_history(history: History, path: str | Path) -> None:
    Path(path).write_text(json.dumps(history_to_dict(history), indent=1))


def load_history(path: str | Path) -> History:
    return history_from_dict(json.loads(Path(path).read_text()))
