"""Runtime telemetry: metrics, tracing, structured logging, profiling.

Zero-dependency observability for federated runs.  The package splits into

* :mod:`~repro.telemetry.metrics` — labeled counters/gauges/histograms;
* :mod:`~repro.telemetry.tracing` — nested wall-clock spans with
  Chrome-trace (``chrome://tracing`` / Perfetto) export;
* :mod:`~repro.telemetry.logs` — stdlib logging with an optional JSON
  formatter (the CLI's ``--log-level`` / ``--log-json`` / ``--quiet``);
* :mod:`~repro.telemetry.runtime` — the per-run :class:`RunTelemetry`
  collector, the :func:`telemetry_session` / :func:`run_scope` scopes and
  the no-op-when-disabled instrumentation helpers every runtime layer
  calls;
* :mod:`~repro.telemetry.report` — collected telemetry as renderable rows
  (the ``telemetry_report`` artifact / ``repro profile`` verb).

The whole package is observation-only: with telemetry enabled or disabled,
``History.to_json()`` and spec content hashes are byte-identical across
inline/thread/process executors (pinned by ``tests/test_telemetry.py``).
"""

from .logs import (LOG_LEVELS, JsonLogFormatter, configure_logging,
                   get_logger, reset_logging)
from .metrics import Histogram, MetricsRegistry, percentile
from .report import report_rows, round_rows, span_rows
from .runtime import (RunTelemetry, current, enabled, inc, max_gauge,
                      observe, record_round, run_scope, set_gauge, span,
                      telemetry_session)
from .tracing import Span, Tracer, validate_chrome_trace

__all__ = [
    "LOG_LEVELS", "JsonLogFormatter", "configure_logging", "get_logger",
    "reset_logging", "Histogram", "MetricsRegistry", "percentile",
    "report_rows", "round_rows", "span_rows", "RunTelemetry", "current",
    "enabled", "inc", "max_gauge", "observe", "record_round", "run_scope",
    "set_gauge", "span", "telemetry_session", "Span", "Tracer",
    "validate_chrome_trace",
]
