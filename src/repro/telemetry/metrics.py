"""Zero-dependency metrics primitives: counters, gauges, histograms.

A :class:`MetricsRegistry` keeps labeled series of three kinds:

* **counters** — monotonically accumulated floats (``inc``); merging two
  registries adds them, so per-run registries roll up into sessions;
* **gauges** — last-written (``set_gauge``) or maximum-so-far
  (``max_gauge``) point values;
* **histograms** — raw observation lists (``observe``) with nearest-rank
  percentiles, so straggler tails (p90/p99 client wall-clock) survive
  aggregation instead of collapsing into a mean.

Series are keyed by ``(name, sorted(labels))`` — the same convention as
Prometheus-style metrics, minus any dependency: everything here is stdlib
and JSON-serialisable (:meth:`MetricsRegistry.to_dict` /
:meth:`MetricsRegistry.from_dict` round-trip losslessly).

Thread-safe by a single registry lock: the thread executor's workers record
client-step metrics concurrently with the coordinator.  Process-pool
workers hold their *own* (empty, disabled) registry — their measurements
ride back to the coordinator on the work-item result instead (see
:mod:`repro.fl.executor`).
"""

from __future__ import annotations

import math
import threading

__all__ = ["Histogram", "MetricsRegistry", "percentile"]

#: cap on raw observations kept per histogram series; beyond it, new values
#: still update count/sum/min/max but no longer join the percentile pool
#: (runs are bounded, so this only guards against pathological loops).
HISTOGRAM_VALUE_CAP = 65536

#: the percentiles serialised into histogram summaries.
SUMMARY_PERCENTILES = (50, 90, 99)


def percentile(values: list[float], q: float) -> float:
    """Nearest-rank percentile (q in [0, 100]) of a non-empty list.

    The nearest-rank method returns an actual observation (never an
    interpolated value), so p99 of latencies is a latency that happened.
    """
    if not values:
        raise ValueError("percentile of an empty list")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


class Histogram:
    """One labeled series of raw observations with derived summaries."""

    __slots__ = ("values", "count", "total", "min", "max")

    def __init__(self):
        self.values: list[float] = []
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self.values) < HISTOGRAM_VALUE_CAP:
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        return percentile(self.values, q)

    def summary(self) -> dict:
        """JSON-safe summary (count/sum/min/max/mean + percentiles)."""
        if not self.count:
            return {"count": 0, "sum": 0.0}
        out = {"count": self.count, "sum": self.total,
               "min": self.min, "max": self.max, "mean": self.mean}
        for q in SUMMARY_PERCENTILES:
            out[f"p{q}"] = self.percentile(q)
        return out


def _series_key(name: str, labels: dict) -> tuple:
    return (name, tuple(sorted((str(k), labels[k]) for k in labels)))


def _key_to_payload(key: tuple) -> dict:
    name, labels = key
    return {"name": name, "labels": {k: v for k, v in labels}}


class MetricsRegistry:
    """Labeled counters, gauges and histograms behind one lock."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _series_key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = _series_key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def max_gauge(self, name: str, value: float, **labels) -> None:
        """Keep the running maximum (e.g. peak event-queue depth)."""
        key = _series_key(name, labels)
        value = float(value)
        with self._lock:
            if value > self._gauges.get(key, -math.inf):
                self._gauges[key] = value

    def observe(self, name: str, value: float, **labels) -> None:
        key = _series_key(name, labels)
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram()
            histogram.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter_value(self, name: str, **labels) -> float:
        with self._lock:
            return self._counters.get(_series_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter over all of its label sets."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels) -> float | None:
        with self._lock:
            return self._gauges.get(_series_key(name, labels))

    def histogram(self, name: str, **labels) -> Histogram | None:
        with self._lock:
            return self._histograms.get(_series_key(name, labels))

    def counters(self) -> dict[tuple, float]:
        with self._lock:
            return dict(self._counters)

    # ------------------------------------------------------------------
    # Merging + serialisation
    # ------------------------------------------------------------------
    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other`` into this registry (counters add, gauges take the
        max — the conservative roll-up for peak-style gauges — and
        histogram observation pools concatenate)."""
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
            histograms = {k: (h.values[:], h.count, h.total, h.min, h.max)
                          for k, h in other._histograms.items()}
        with self._lock:
            for key, value in counters.items():
                self._counters[key] = self._counters.get(key, 0.0) + value
            for key, value in gauges.items():
                if value > self._gauges.get(key, -math.inf):
                    self._gauges[key] = value
            for key, (values, count, total, lo, hi) in histograms.items():
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = Histogram()
                histogram.count += count
                histogram.total += total
                histogram.min = min(histogram.min, lo)
                histogram.max = max(histogram.max, hi)
                room = HISTOGRAM_VALUE_CAP - len(histogram.values)
                if room > 0:
                    histogram.values.extend(values[:room])

    def to_dict(self) -> dict:
        """JSON-safe form; inverse of :meth:`from_dict`."""
        with self._lock:
            return {
                "counters": [dict(_key_to_payload(k), value=v)
                             for k, v in sorted(self._counters.items())],
                "gauges": [dict(_key_to_payload(k), value=v)
                           for k, v in sorted(self._gauges.items())],
                "histograms": [dict(_key_to_payload(k), values=h.values[:],
                                    **h.summary())
                               for k, h in sorted(self._histograms.items())],
            }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsRegistry":
        registry = cls()
        for entry in payload.get("counters", []):
            registry.inc(entry["name"], entry["value"], **entry["labels"])
        for entry in payload.get("gauges", []):
            registry.set_gauge(entry["name"], entry["value"],
                               **entry["labels"])
        for entry in payload.get("histograms", []):
            for value in entry.get("values", []):
                registry.observe(entry["name"], value, **entry["labels"])
        return registry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        with self._lock:
            return (f"MetricsRegistry(counters={len(self._counters)}, "
                    f"gauges={len(self._gauges)}, "
                    f"histograms={len(self._histograms)})")
