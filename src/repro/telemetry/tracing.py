"""Span-based wall-clock tracing with Chrome-trace export.

A :class:`Tracer` records :class:`Span` context managers —
``tracer.span("client_step", round=r, client=c)`` — that nest per thread,
measure wall-clock with ``time.perf_counter`` and optionally record
``tracemalloc`` peak memory for top-level spans.  Finished spans serialise
into the Chrome trace-event JSON format, loadable in ``chrome://tracing``
and `Perfetto <https://ui.perfetto.dev>`_ (legacy JSON import).

Tracing is observation-only by construction: spans draw no randomness and
touch nothing but their own record list, so a traced run's History is
byte-identical to an untraced one (pinned by ``tests/test_telemetry.py``).
"""

from __future__ import annotations

import threading
import time
import tracemalloc
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "Tracer", "validate_chrome_trace", "CHROME_PHASES"]

#: Chrome trace-event phases this module emits / the validator accepts.
CHROME_PHASES = ("X", "i", "I", "M")


@dataclass
class Span:
    """One finished span: a named wall-clock interval with labels."""

    name: str
    #: start offset from the tracer epoch, seconds.
    start_s: float
    duration_s: float
    #: small stable per-thread index (0 = first thread seen).
    tid: int = 0
    #: nesting depth within its thread at record time (0 = top level).
    depth: int = 0
    labels: dict = field(default_factory=dict)
    #: tracemalloc peak during the span, bytes (None = not measured).
    memory_peak_b: int | None = None

    def to_dict(self) -> dict:
        payload = {"name": self.name, "start_s": self.start_s,
                   "duration_s": self.duration_s, "tid": self.tid,
                   "depth": self.depth, "labels": dict(self.labels)}
        if self.memory_peak_b is not None:
            payload["memory_peak_b"] = self.memory_peak_b
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        return cls(name=payload["name"], start_s=payload["start_s"],
                   duration_s=payload["duration_s"],
                   tid=payload.get("tid", 0), depth=payload.get("depth", 0),
                   labels=dict(payload.get("labels", {})),
                   memory_peak_b=payload.get("memory_peak_b"))


class Tracer:
    """Collects spans against one epoch; thread-safe, nestable."""

    def __init__(self, trace_memory: bool = False, epoch: float | None = None):
        #: perf_counter value all span offsets are relative to.
        self.epoch = time.perf_counter() if epoch is None else epoch
        #: wall-clock (unix seconds) at the epoch, for trace metadata.
        # repro: allow[no-wallclock-in-state] trace metadata only: the
        # epoch stamps exported trace files, never run results.
        self.epoch_unix = time.time()
        self.trace_memory = trace_memory
        self.spans: list[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()
        self._thread_ids: dict[int, int] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _tid(self) -> int:
        ident = threading.get_ident()
        with self._lock:
            tid = self._thread_ids.get(ident)
            if tid is None:
                tid = self._thread_ids[ident] = len(self._thread_ids)
            return tid

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @contextmanager
    def span(self, name: str, **labels):
        """Record ``name`` around the enclosed block (reentrant, nestable).

        With ``trace_memory`` enabled and :mod:`tracemalloc` tracing, a
        *top-level* span additionally records the tracemalloc peak over its
        lifetime (nested spans skip it: ``reset_peak`` is global, so an
        inner reset would corrupt the enclosing span's measurement).
        """
        stack = self._stack()
        depth = len(stack)
        measure_memory = (self.trace_memory and depth == 0
                          and tracemalloc.is_tracing())
        if measure_memory:
            tracemalloc.reset_peak()
        stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            peak = (tracemalloc.get_traced_memory()[1]
                    if measure_memory else None)
            span = Span(name=name, start_s=start - self.epoch,
                        duration_s=duration, tid=self._tid(), depth=depth,
                        labels=labels, memory_peak_b=peak)
            with self._lock:
                self.spans.append(span)

    # ------------------------------------------------------------------
    # Merging + serialisation
    # ------------------------------------------------------------------
    def absorb(self, other: "Tracer") -> None:
        """Append ``other``'s spans (offsets must share this epoch — child
        tracers are built with ``Tracer(epoch=parent.epoch)``)."""
        with other._lock:
            spans = other.spans[:]
        with self._lock:
            self.spans.extend(spans)

    def to_dict(self) -> dict:
        with self._lock:
            return {"epoch_unix": self.epoch_unix,
                    "trace_memory": self.trace_memory,
                    "spans": [span.to_dict() for span in self.spans]}

    @classmethod
    def from_dict(cls, payload: dict) -> "Tracer":
        tracer = cls(trace_memory=payload.get("trace_memory", False))
        tracer.epoch_unix = payload.get("epoch_unix", tracer.epoch_unix)
        tracer.spans = [Span.from_dict(s) for s in payload.get("spans", [])]
        return tracer

    def chrome_events(self, pid: int = 1) -> list[dict]:
        """Spans as Chrome complete (``ph="X"``) events, ts/dur in µs."""
        with self._lock:
            spans = self.spans[:]
        events = []
        for span in sorted(spans, key=lambda s: s.start_s):
            args = dict(span.labels)
            if span.memory_peak_b is not None:
                args["memory_peak_kb"] = round(span.memory_peak_b / 1024, 1)
            events.append({"name": span.name, "cat": "span", "ph": "X",
                           "pid": pid, "tid": span.tid,
                           "ts": round(max(span.start_s, 0.0) * 1e6, 3),
                           "dur": round(max(span.duration_s, 0.0) * 1e6, 3),
                           "args": args})
        return events


def validate_chrome_trace(payload: dict) -> int:
    """Structural validation of a Chrome/Perfetto trace-event payload.

    Checks the JSON-object form this package exports (and the trace
    viewers load): a ``traceEvents`` list whose entries carry a string
    ``name``, a known ``ph`` phase, numeric non-negative ``ts`` (except
    metadata events) and, for complete events, a non-negative ``dur``.
    Returns the event count; raises :class:`ValueError` on any violation.
    """
    if not isinstance(payload, dict):
        raise ValueError("trace payload must be a JSON object")
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace payload lacks a traceEvents list")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            raise ValueError(f"{where} is not an object")
        if not isinstance(event.get("name"), str) or not event["name"]:
            raise ValueError(f"{where} lacks a name")
        phase = event.get("ph")
        if phase not in CHROME_PHASES:
            raise ValueError(f"{where} has unknown phase {phase!r}")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            raise ValueError(f"{where} has invalid ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"{where} has invalid dur {dur!r}")
    return len(events)
