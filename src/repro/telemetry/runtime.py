"""Run-scoped telemetry collection and the process-wide current collector.

The instrumentation contract, carried from the executor-determinism PRs:
telemetry is **observation-only**.  Instrumented code paths (executors,
aggregation policies, the round loops, the run cache) call the module-level
helpers below — :func:`inc`, :func:`observe`, :func:`span`,
:func:`record_round` — which are near-zero-cost no-ops until a collector is
installed.  Nothing here draws randomness, mutates a History, or feeds back
into control flow, so ``History.to_json()`` is byte-identical with
telemetry on or off, across inline/thread/process executors (pinned by
``tests/test_telemetry.py`` and the CI ``telemetry-smoke`` job).

Two scopes:

* :func:`telemetry_session` installs a :class:`RunTelemetry` collector for
  a whole invocation (the CLI ``repro profile`` verb wraps the artifact in
  one);
* :func:`run_scope` forks a *child* collector for one spec execution —
  the child shares the session tracer's epoch, is merged back into the
  parent on exit, and is what serialises next to the run-cache entry
  (``<hash>.telemetry.json``).

Process-pool workers never see the coordinator's collector (it is
process-global state); their per-item wall-clock rides back on
``ClientResult.timing`` instead, which the coordinator folds into
``RoundRecord.extras["client_timings"]``.
"""

from __future__ import annotations

import tracemalloc
from contextlib import contextmanager, nullcontext

from .metrics import MetricsRegistry
from .tracing import Tracer

__all__ = ["RunTelemetry", "telemetry_session", "run_scope", "current",
           "enabled", "inc", "observe", "set_gauge", "max_gauge", "span",
           "record_round", "TELEMETRY_VERSION"]

#: layout version of serialised telemetry payloads.
TELEMETRY_VERSION = 1

#: reusable disabled-span context (stateless, safe to share/reenter).
_NULL_SPAN = nullcontext()

#: the installed collector (None = telemetry disabled, helpers no-op).
_CURRENT: "RunTelemetry | None" = None


class RunTelemetry:
    """Everything one observed run (or session) collected.

    ``metrics`` is the labeled counter/gauge/histogram registry, ``tracer``
    the wall-clock span record, ``sim_rounds`` the simulated-clock round
    timeline (one entry per :class:`~repro.fl.history.RoundRecord`,
    copied — never referenced — at append time), ``meta`` free-form run
    identity (spec hash, label, scale).
    """

    def __init__(self, meta: dict | None = None, trace_memory: bool = False,
                 epoch: float | None = None):
        self.meta = dict(meta or {})
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(trace_memory=trace_memory, epoch=epoch)
        self.sim_rounds: list[dict] = []

    # ------------------------------------------------------------------
    # Collection
    # ------------------------------------------------------------------
    def add_sim_round(self, record) -> None:
        """Copy one RoundRecord's simulated-clock facts (never a live
        reference: telemetry must not alias mutable History state)."""
        entry = {
            "round": int(record.round_index),
            "sim_time_s": float(record.sim_time_s),
            "round_time_s": float(record.round_time_s),
            "extras": {k: v for k, v in record.extras.items()
                       if isinstance(v, (bool, int, float, str))},
            "events": [dict(event) for event in record.events],
        }
        timings = record.extras.get("client_timings") or {}
        if timings:
            execs = [t.get("execute_s", 0.0) for t in timings.values()]
            totals = [t.get("total_s", 0.0) for t in timings.values()]
            entry["wall"] = {
                "clients": len(timings),
                "execute_sum_s": sum(execs),
                "execute_max_s": max(execs),
                "total_max_s": max(totals),
                "retries": sum(int(t.get("retries", 0))
                               for t in timings.values()),
            }
        self.sim_rounds.append(entry)

    def absorb(self, child: "RunTelemetry") -> None:
        """Fold a run-scope child back into this session collector."""
        self.metrics.merge(child.metrics)
        self.tracer.absorb(child.tracer)
        self.sim_rounds.extend(child.sim_rounds)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {"telemetry_version": TELEMETRY_VERSION,
                "meta": dict(self.meta),
                "metrics": self.metrics.to_dict(),
                "tracer": self.tracer.to_dict(),
                "sim_rounds": [dict(r) for r in self.sim_rounds]}

    @classmethod
    def from_dict(cls, payload: dict) -> "RunTelemetry":
        version = payload.get("telemetry_version", TELEMETRY_VERSION)
        if version != TELEMETRY_VERSION:
            raise ValueError(f"unsupported telemetry version {version!r} "
                             f"(this build reads {TELEMETRY_VERSION})")
        telemetry = cls(meta=payload.get("meta"))
        telemetry.metrics = MetricsRegistry.from_dict(
            payload.get("metrics", {}))
        telemetry.tracer = Tracer.from_dict(payload.get("tracer", {}))
        telemetry.sim_rounds = [dict(r)
                                for r in payload.get("sim_rounds", [])]
        return telemetry

    # ------------------------------------------------------------------
    # Chrome-trace export
    # ------------------------------------------------------------------
    def chrome_trace(self) -> dict:
        """Spans + the simulated-event timeline as one Chrome/Perfetto
        trace: wall-clock spans under pid 1, the simulated clock under
        pid 2 (rounds as complete events, queue events as instants)."""
        events: list[dict] = [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "wall-clock"}},
            {"name": "process_name", "ph": "M", "pid": 2, "tid": 0,
             "args": {"name": "sim-clock"}},
        ]
        events.extend(self.tracer.chrome_events(pid=1))
        for entry in self.sim_rounds:
            start_s = max(entry["sim_time_s"] - entry["round_time_s"], 0.0)
            events.append({
                "name": f"round {entry['round']}", "cat": "sim-round",
                "ph": "X", "pid": 2, "tid": 0,
                "ts": round(start_s * 1e6, 3),
                "dur": round(max(entry["round_time_s"], 0.0) * 1e6, 3),
                "args": dict(entry["extras"], round=entry["round"]),
            })
            for event in entry["events"]:
                args = {k: v for k, v in event.items()
                        if k not in ("t", "type")}
                events.append({
                    "name": event.get("type", "event"), "cat": "sim-event",
                    "ph": "i", "s": "t", "pid": 2,
                    "tid": 1 + int(event.get("client", -1) >= 0),
                    "ts": round(max(float(event.get("t", 0.0)), 0.0) * 1e6,
                                3),
                    "args": args,
                })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"meta": dict(self.meta),
                              "epoch_unix": self.tracer.epoch_unix}}


# ----------------------------------------------------------------------
# Current-collector plumbing
# ----------------------------------------------------------------------
def current() -> RunTelemetry | None:
    """The installed collector, or ``None`` when telemetry is disabled."""
    return _CURRENT


def enabled() -> bool:
    return _CURRENT is not None


@contextmanager
def telemetry_session(meta: dict | None = None, trace_memory: bool = False):
    """Install a session collector for the enclosed block.

    Yields the :class:`RunTelemetry` that accumulates everything observed
    inside (including run-scope children, merged back on their exit).
    ``trace_memory`` starts :mod:`tracemalloc` for the session so top-level
    spans record peak memory; tracing state is restored on exit.  Sessions
    may nest — the inner session shadows the outer for its lifetime.
    """
    global _CURRENT
    session = RunTelemetry(meta=meta, trace_memory=trace_memory)
    started_tracemalloc = trace_memory and not tracemalloc.is_tracing()
    if started_tracemalloc:
        tracemalloc.start()
    previous, _CURRENT = _CURRENT, session
    try:
        yield session
    finally:
        _CURRENT = previous
        if started_tracemalloc:
            tracemalloc.stop()


@contextmanager
def run_scope(**meta):
    """Fork a child collector for one run; merge it back on exit.

    Yields ``None`` when telemetry is disabled (callers guard on it) and
    the child :class:`RunTelemetry` otherwise.  The child shares the
    session tracer's epoch so its spans stay on the session timeline after
    the merge, and it is what serialises next to the run-cache entry.
    """
    global _CURRENT
    parent = _CURRENT
    if parent is None:
        yield None
        return
    child = RunTelemetry(meta={**parent.meta, **meta},
                         trace_memory=parent.tracer.trace_memory,
                         epoch=parent.tracer.epoch)
    _CURRENT = child
    try:
        yield child
    finally:
        _CURRENT = parent
        parent.absorb(child)


# ----------------------------------------------------------------------
# Instrumentation helpers (no-ops while disabled)
# ----------------------------------------------------------------------
def inc(name: str, value: float = 1.0, **labels) -> None:
    telemetry = _CURRENT
    if telemetry is not None:
        telemetry.metrics.inc(name, value, **labels)


def observe(name: str, value: float, **labels) -> None:
    telemetry = _CURRENT
    if telemetry is not None:
        telemetry.metrics.observe(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    telemetry = _CURRENT
    if telemetry is not None:
        telemetry.metrics.set_gauge(name, value, **labels)


def max_gauge(name: str, value: float, **labels) -> None:
    telemetry = _CURRENT
    if telemetry is not None:
        telemetry.metrics.max_gauge(name, value, **labels)


def span(name: str, **labels):
    """A tracer span when telemetry is on; a shared no-op context when off."""
    telemetry = _CURRENT
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.tracer.span(name, **labels)


def record_round(record) -> None:
    """Copy a just-appended RoundRecord onto the simulated timeline."""
    telemetry = _CURRENT
    if telemetry is not None:
        telemetry.add_sim_round(record)
