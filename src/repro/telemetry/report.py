"""Turn collected telemetry into renderable report rows.

The ``telemetry_report`` artifact and the ``repro profile`` verb both feed
a :class:`~repro.telemetry.runtime.RunTelemetry` through
:func:`report_rows` and hand the result to the standard row writers
(:mod:`repro.experiments.reporting`), so profiles render as text tables,
JSON or CSV exactly like every other artifact.  Rows are sectioned — each
carries a ``section`` key (``cache`` / ``counter`` / ``gauge`` /
``histogram`` / ``span`` / ``round``) — so one flat list covers the whole
report and stays machine-readable.
"""

from __future__ import annotations

from .runtime import RunTelemetry

__all__ = ["format_series", "cache_rows", "counter_rows", "gauge_rows",
           "histogram_rows", "span_rows", "round_rows", "report_rows",
           "sidecar_wall_seconds"]

#: span names whose durations sum to a cell's wall-clock in a sidecar.
#: The enclosing ``execute_spec`` span is still open when the sidecar
#: serialises (the cache write happens inside it), so it never appears in
#: the payload — its two sequential children cover the work instead.
_SIDECAR_WALL_SPANS = ("prepare_scenario", "run_simulation")


def sidecar_wall_seconds(payload: dict) -> float | None:
    """Wall-clock seconds a ``<hash>.telemetry.json`` sidecar recorded.

    ``payload`` is the full sidecar dict (as written by
    :meth:`~repro.experiments.cache.RunCache.put_telemetry`).  Returns the
    summed durations of the cell's scenario-build and simulation spans, or
    ``None`` when the sidecar carries no recognisable spans — sweep status
    treats such cells as done-but-untimed rather than erroring.
    """
    telemetry = payload.get("telemetry")
    if not isinstance(telemetry, dict):
        return None
    tracer = telemetry.get("tracer")
    if not isinstance(tracer, dict):
        return None
    total = None
    for span in tracer.get("spans", []):
        if (isinstance(span, dict) and span.get("name") in _SIDECAR_WALL_SPANS
                and isinstance(span.get("duration_s"), (int, float))):
            total = span["duration_s"] + (total or 0.0)
    return total


def format_series(name: str, labels) -> str:
    """``name{k=v,...}`` — the conventional labeled-series rendering."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def cache_rows(telemetry: RunTelemetry) -> list[dict]:
    """Run-cache statistics, including the derived hit rate."""
    metrics = telemetry.metrics
    hits = metrics.counter_total("cache.hits")
    misses = metrics.counter_total("cache.misses")
    lookups = hits + misses
    rows = [
        {"section": "cache", "name": "lookups", "value": int(lookups)},
        {"section": "cache", "name": "hits", "value": int(hits)},
        {"section": "cache", "name": "misses", "value": int(misses)},
        {"section": "cache", "name": "puts",
         "value": int(metrics.counter_total("cache.puts"))},
        {"section": "cache", "name": "hit_rate",
         "value": round(hits / lookups, 4) if lookups else None},
    ]
    return rows


def counter_rows(telemetry: RunTelemetry) -> list[dict]:
    return [{"section": "counter",
             "name": format_series(name, labels), "value": value}
            for (name, labels), value
            in sorted(telemetry.metrics.counters().items())]


def gauge_rows(telemetry: RunTelemetry) -> list[dict]:
    payload = telemetry.metrics.to_dict()
    return [{"section": "gauge",
             "name": format_series(entry["name"],
                                   sorted(entry["labels"].items())),
             "value": round(entry["value"], 6)}
            for entry in payload.get("gauges", [])]


def histogram_rows(telemetry: RunTelemetry) -> list[dict]:
    payload = telemetry.metrics.to_dict()
    rows = []
    for entry in payload.get("histograms", []):
        row = {"section": "histogram",
               "name": format_series(entry["name"],
                                     sorted(entry["labels"].items())),
               "count": entry["count"]}
        for key in ("mean", "p50", "p90", "p99", "max"):
            if key in entry:
                row[key] = round(entry[key], 6)
        rows.append(row)
    return rows


def span_rows(telemetry: RunTelemetry) -> list[dict]:
    """Spans aggregated per name: call count and wall-clock totals."""
    grouped: dict[str, list] = {}
    for span in telemetry.tracer.spans:
        grouped.setdefault(span.name, []).append(span)
    rows = []
    for name in sorted(grouped):
        spans = grouped[name]
        durations = [span.duration_s for span in spans]
        row = {"section": "span", "name": name, "count": len(spans),
               "total_s": round(sum(durations), 6),
               "mean_s": round(sum(durations) / len(durations), 6),
               "max_s": round(max(durations), 6)}
        peaks = [span.memory_peak_b for span in spans
                 if span.memory_peak_b is not None]
        if peaks:
            row["mem_peak_kb"] = round(max(peaks) / 1024, 1)
        rows.append(row)
    return rows


def round_rows(telemetry: RunTelemetry) -> list[dict]:
    """Per-round timing table: simulated clock plus measured wall-clock."""
    rows = []
    for entry in telemetry.sim_rounds:
        extras = entry.get("extras", {})
        row = {"section": "round", "round": entry["round"],
               "sim_time_s": round(entry["sim_time_s"], 3),
               "round_time_s": round(entry["round_time_s"], 3),
               "dispatched": extras.get("dispatched"),
               "received": extras.get("received")}
        dropped = sum(v for k, v in extras.items()
                      if k.startswith("dropped_"))
        if dropped:
            row["dropped"] = dropped
        wall = entry.get("wall")
        if wall:
            row["wall_exec_max_s"] = round(wall["execute_max_s"], 4)
            row["wall_exec_sum_s"] = round(wall["execute_sum_s"], 4)
            if wall.get("retries"):
                row["retries"] = wall["retries"]
        rows.append(row)
    return rows


def report_rows(telemetry: RunTelemetry) -> list[dict]:
    """The full sectioned report a profile renders."""
    return (cache_rows(telemetry) + counter_rows(telemetry)
            + gauge_rows(telemetry) + histogram_rows(telemetry)
            + span_rows(telemetry) + round_rows(telemetry))
