"""Structured logging for the repro runtime (stdlib ``logging`` only).

Everything logs under the ``repro`` logger hierarchy —
``get_logger("runner")`` is ``logging.getLogger("repro.runner")`` — so one
:func:`configure_logging` call controls the whole package.  Two output
modes share the handler:

* **plain** (default) — bare messages, byte-compatible with the historic
  ``print``-based CLI output (the CI jobs grep these lines);
* **JSON** (``--log-json``) — one JSON object per line with ``ts``,
  ``level``, ``logger``, ``message`` plus any ``extra={...}`` fields, for
  sweep tooling that wants machine-readable progress.

Unconfigured (library import, no CLI), the ``repro`` logger carries only a
``NullHandler`` and propagates: info/debug lines vanish, warnings surface
through Python's last-resort handler — the quiet-by-default library
contract.  The handler resolves ``sys.stderr`` *at emit time*, so pytest's
``capsys`` and redirected streams always capture it.
"""

from __future__ import annotations

import json
import logging
import sys

__all__ = ["get_logger", "configure_logging", "reset_logging",
           "JsonLogFormatter", "LOG_LEVELS"]

#: accepted ``--log-level`` names, least to most severe.
LOG_LEVELS = ("debug", "info", "warning", "error")

#: LogRecord attributes that are plumbing, not user-supplied ``extra``.
_RESERVED = frozenset(vars(logging.LogRecord("", 0, "", 0, "", (), None)))\
    | {"message", "asctime", "taskName"}


class JsonLogFormatter(logging.Formatter):
    """One JSON object per record; ``extra`` fields become top-level keys."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in payload:
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload)


class _StderrHandler(logging.Handler):
    """Writes to the *current* ``sys.stderr`` (not the one at setup)."""

    #: marks handlers owned by :func:`configure_logging` for idempotent
    #: reconfiguration.
    _repro_managed = True

    def emit(self, record: logging.LogRecord) -> None:
        try:
            sys.stderr.write(self.format(record) + "\n")
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


def get_logger(name: str = "") -> logging.Logger:
    """The package logger for ``name`` (``repro`` itself when empty)."""
    return logging.getLogger(f"repro.{name}" if name else "repro")


def configure_logging(level: str = "info",
                      json_format: bool = False) -> logging.Logger:
    """Install (or replace) the package log handler; returns the logger.

    Idempotent: repeated calls swap the managed handler rather than
    stacking duplicates, and handlers installed by user code are left
    untouched.  ``level`` is one of :data:`LOG_LEVELS`.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; known: {LOG_LEVELS}")
    logger = get_logger()
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_managed", False):
            logger.removeHandler(handler)
    handler = _StderrHandler()
    handler.setFormatter(JsonLogFormatter() if json_format
                         else logging.Formatter("%(message)s"))
    logger.addHandler(handler)
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False
    return logger


def reset_logging() -> None:
    """Return the package logger to the unconfigured library default."""
    logger = get_logger()
    for handler in list(logger.handlers):
        if getattr(handler, "_repro_managed", False):
            logger.removeHandler(handler)
    logger.setLevel(logging.NOTSET)
    logger.propagate = True


#: library default: silent unless configured (warnings still surface via
#: propagation to the root logger's last-resort handler).
get_logger().addHandler(logging.NullHandler())
