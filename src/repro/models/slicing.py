"""Width-heterogeneity index maps: extract / scatter sub-model states.

The three width-level algorithms differ only in *which channel indices* a
sub-model occupies inside the global model:

* **prefix** (Fjord's ordered dropout, SHeteroFL's static slimming) — the
  first ``k`` channels of every width-scaled axis;
* **rolling** (FedRolex) — a window of ``k`` consecutive channels starting at
  a shift that advances every round, wrapping around.

Because a sub-model and the global model are built by the same constructor
with the same per-layer rounding, connected axes (producer out-channels /
consumer in-channels) always have equal global and sub sizes; an index set
computed from ``(global_size, sub_size, shift)`` alone is therefore
automatically consistent across the whole network — including residual
connections — for any architecture in the zoo.
"""

from __future__ import annotations

import numpy as np

__all__ = ["width_index_maps", "extract_substate", "scatter_accumulate",
           "finalize_mean", "zeros_like_state"]

IndexMap = dict[str, tuple[np.ndarray | None, ...]]


def width_index_maps(global_shapes: dict[str, tuple[int, ...]],
                     sub_shapes: dict[str, tuple[int, ...]],
                     scale_axes: dict[str, tuple[int, ...]],
                     mode: str = "prefix", shift: int = 0) -> IndexMap:
    """Compute per-parameter index maps from a sub-model into the global one.

    Parameters
    ----------
    global_shapes / sub_shapes:
        ``name -> shape`` for the two state dicts. Every sub name must exist
        globally (depth variants simply contribute fewer names).
    scale_axes:
        ``name -> axes that width-scale`` (from
        :meth:`repro.nn.Module.state_scale_axes` of the *global* model).
    mode:
        ``"prefix"`` or ``"rolling"``.
    shift:
        Rolling-window start (ignored for prefix); typically the round index.

    Returns
    -------
    ``name -> tuple`` with one entry per axis: ``None`` for full axes, or an
    integer index array into the global axis.
    """
    if mode not in ("prefix", "rolling"):
        raise ValueError(f"unknown slicing mode {mode!r}")
    maps: IndexMap = {}
    for name, sub_shape in sub_shapes.items():
        if name not in global_shapes:
            raise KeyError(f"sub-model parameter {name!r} not in global model")
        global_shape = global_shapes[name]
        if len(sub_shape) != len(global_shape):
            raise ValueError(f"rank mismatch for {name!r}: "
                             f"{sub_shape} vs {global_shape}")
        axes = scale_axes.get(name, ())
        per_axis: list[np.ndarray | None] = []
        for axis, (g_dim, s_dim) in enumerate(zip(global_shape, sub_shape)):
            if s_dim == g_dim:
                per_axis.append(None)
            elif axis in axes and s_dim < g_dim:
                if mode == "prefix":
                    idx = np.arange(s_dim)
                else:
                    idx = (shift + np.arange(s_dim)) % g_dim
                per_axis.append(idx)
            else:
                raise ValueError(
                    f"axis {axis} of {name!r} cannot shrink "
                    f"{g_dim}->{s_dim} (scale axes: {axes})")
        maps[name] = tuple(per_axis)
    return maps


def _as_ix(per_axis: tuple[np.ndarray | None, ...],
           shape: tuple[int, ...]):
    """Open-mesh index selecting the mapped block of a global array."""
    arrays = [np.arange(dim) if idx is None else idx
              for idx, dim in zip(per_axis, shape)]
    return np.ix_(*arrays) if arrays else ()


def extract_substate(global_state: dict[str, np.ndarray],
                     maps: IndexMap) -> dict[str, np.ndarray]:
    """Pull the sub-model's view of every mapped parameter (copies)."""
    sub = {}
    for name, per_axis in maps.items():
        array = global_state[name]
        if all(idx is None for idx in per_axis):
            sub[name] = array.copy()
        else:
            sub[name] = array[_as_ix(per_axis, array.shape)].copy()
    return sub


def zeros_like_state(state: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Zero accumulator matching a state dict (float64 for stable sums)."""
    return {name: np.zeros(value.shape, dtype=np.float64)
            for name, value in state.items()}


def scatter_accumulate(sum_state: dict[str, np.ndarray],
                       count_state: dict[str, np.ndarray],
                       sub_state: dict[str, np.ndarray],
                       maps: IndexMap, weight: float = 1.0) -> None:
    """Add a weighted sub-model update into global accumulators in place.

    ``sum_state``/``count_state`` span the global model; coordinates outside
    the sub-model's index map are untouched.  After accumulating every
    client, :func:`finalize_mean` produces the per-coordinate average — the
    aggregation rule shared by HeteroFL, Fjord and FedRolex.
    """
    for name, per_axis in maps.items():
        value = sub_state[name]
        if all(idx is None for idx in per_axis):
            sum_state[name] += weight * value
            count_state[name] += weight
        else:
            ix = _as_ix(per_axis, sum_state[name].shape)
            sum_state[name][ix] += weight * value
            count_state[name][ix] += weight


def finalize_mean(sum_state: dict[str, np.ndarray],
                  count_state: dict[str, np.ndarray],
                  fallback: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Per-coordinate mean; coordinates no client touched keep ``fallback``."""
    result = {}
    for name, total in sum_state.items():
        counts = count_state[name]
        touched = counts > 0
        merged = fallback[name].astype(np.float64).copy()
        merged[touched] = total[touched] / counts[touched]
        result[name] = merged.astype(fallback[name].dtype)
    return result
