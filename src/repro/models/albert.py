"""ALBERT family (base / large / xxlarge) — Stack Overflow NLP models.

Keeps ALBERT's two defining tricks, which matter for heterogeneity:

* **factorized embeddings** — a small embedding dim projected up to the
  hidden dim, so the vocabulary table does not grow with width;
* **cross-layer parameter sharing** — one encoder layer applied L times, so
  *depth* variants change compute and activation memory but not the
  parameter set (every client aggregates over the identical shared weights).

Stages are groups of repeated applications of the shared layer; a depth
variant runs fewer repeats.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import nn
from ..autograd import Tensor
from .base import IndexedModules, SliceableModel, scaled_channels

__all__ = ["AlbertClassifier", "ALBERT_CONFIGS"]

# name -> (hidden base, per-stage repeat counts)
ALBERT_CONFIGS = {
    "albert_base": (32, [1, 1, 1, 1]),
    "albert_large": (48, [2, 2, 2, 2]),
    "albert_xxlarge": (64, [3, 3, 3, 3]),
}


class _FactorizedStem(nn.Module):
    """Token/positional embeddings at ``emb_dim`` projected to ``hidden``."""

    def __init__(self, vocab_size: int, emb_dim: int, hidden: int,
                 max_len: int, rng: np.random.Generator):
        super().__init__()
        self.embed = nn.Embedding(vocab_size, emb_dim, rng, scale_out=False)
        self.pos = nn.Parameter(nn.init.normal((max_len, emb_dim), 0.02, rng))
        self.project = nn.Linear(emb_dim, hidden, rng, scale_in=False)
        self.norm = nn.LayerNorm(hidden)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        seq_len = tokens.shape[1]
        h = self.embed(tokens) + self.pos[0:seq_len]
        return self.norm(self.project(h))


class AlbertClassifier(SliceableModel):
    """ALBERT-style classifier with cross-layer parameter sharing."""

    family = "albert"
    pool_kind = "sequence"

    def __init__(self, num_classes: int, arch: str = "albert_base",
                 vocab_size: int = 256, width_mult: float = 1.0,
                 num_stages: int | None = None, head_mode: str = "deepest",
                 seed: int = 0, scale: str = "tiny", max_len: int = 32,
                 emb_dim: int = 16, num_heads: int = 4):
        super().__init__()
        self._record_build_kwargs(
            num_classes=num_classes, arch=arch, vocab_size=vocab_size,
            width_mult=width_mult, num_stages=num_stages,
            head_mode=head_mode, seed=seed, scale=scale, max_len=max_len,
            emb_dim=emb_dim, num_heads=num_heads)
        try:
            hidden_base, repeats = ALBERT_CONFIGS[arch]
        except KeyError:
            raise ValueError(f"unknown albert arch {arch!r}") from None
        if scale == "paper":
            hidden_base, repeats = hidden_base * 4, [r * 2 for r in repeats]
        self.arch = arch
        self.width_mult = width_mult
        self.head_mode = head_mode
        self.total_stages = len(repeats)
        owned = self.total_stages if num_stages is None else num_stages
        if not 1 <= owned <= self.total_stages:
            raise ValueError(f"num_stages must be in [1, {self.total_stages}]")

        rng = np.random.default_rng(seed)
        hidden = scaled_channels(hidden_base, width_mult, divisor=num_heads)
        ffn_dim = scaled_channels(hidden_base * 2, width_mult)
        self.stem = _FactorizedStem(vocab_size, emb_dim, hidden, max_len, rng)
        self.shared_layer = nn.TransformerEncoderLayer(hidden, num_heads,
                                                       ffn_dim, rng)
        self.stage_repeats: list[int] = list(repeats[:owned])

        self.heads = IndexedModules()
        head_indices = (range(owned) if head_mode == "all" else [owned - 1])
        for index in head_indices:
            self.heads.add(index, nn.Linear(hidden, num_classes, rng,
                                            scale_out=False))

    # ------------------------------------------------------------------
    # Shared-layer overrides of the staged protocol
    # ------------------------------------------------------------------
    @property
    def num_owned_stages(self) -> int:
        return len(self.stage_repeats)

    def _run_stages(self, x) -> list[Tensor]:
        h = self.stem(x)
        outputs = []
        for repeat_count in self.stage_repeats:
            for _ in range(repeat_count):
                h = self.shared_layer(h)
            outputs.append(h)
        return outputs

    def set_trainable_stages(self, stage_indices: Sequence[int],
                             train_stem: bool = True,
                             train_heads: bool = True) -> None:
        # With cross-layer sharing there is a single stack of encoder
        # weights: it trains whenever any stage is selected.
        any_stage = len(list(stage_indices)) > 0
        for param in self.stem.parameters():
            param.requires_grad = train_stem
        for param in self.shared_layer.parameters():
            param.requires_grad = any_stage
        for head_index in self.heads.indices:
            for param in self.heads.get(head_index).parameters():
                param.requires_grad = train_heads
