"""Sliceable model zoo (width / depth / topology heterogeneity support)."""

from .base import IndexedModules, SliceableModel, scaled_channels
from .slicing import (width_index_maps, extract_substate, scatter_accumulate,
                      finalize_mean, zeros_like_state)
from .resnet import ResNet, RESNET_CONFIGS
from .mobilenet import MobileNet, MOBILENET_CONFIGS
from .har_cnn import HarCNN, HAR_CONFIGS, HAR_INPUT_SHAPE
from .transformer import TextTransformer
from .albert import AlbertClassifier, ALBERT_CONFIGS
from .zoo import build_model, MODEL_FAMILIES, family_of, known_architectures

__all__ = [
    "IndexedModules", "SliceableModel", "scaled_channels",
    "width_index_maps", "extract_substate", "scatter_accumulate",
    "finalize_mean", "zeros_like_state",
    "ResNet", "RESNET_CONFIGS", "MobileNet", "MOBILENET_CONFIGS",
    "HarCNN", "HAR_CONFIGS", "HAR_INPUT_SHAPE", "TextTransformer",
    "AlbertClassifier", "ALBERT_CONFIGS",
    "build_model", "MODEL_FAMILIES", "family_of", "known_architectures",
]
