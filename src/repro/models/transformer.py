"""Customized text Transformer (the paper's AG-News model).

A pre-norm encoder classifier: token + learned positional embeddings -> N
encoder layers grouped into stages -> mean pooling -> classifier.  Width
variants scale the model dimension in whole head units (so attention reshapes
stay valid at every multiplier) together with the FFN dimension.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..autograd import Tensor
from .base import IndexedModules, SliceableModel, scaled_channels

__all__ = ["TextTransformer"]


class _TokenStem(nn.Module):
    """Token + positional embedding with a final layer norm."""

    def __init__(self, vocab_size: int, dim: int, max_len: int,
                 rng: np.random.Generator):
        super().__init__()
        self.embed = nn.Embedding(vocab_size, dim, rng)
        self.pos = nn.Parameter(
            nn.init.normal((max_len, dim), 0.02, rng), scale_axes=(1,))
        self.norm = nn.LayerNorm(dim)

    def forward(self, tokens: np.ndarray) -> Tensor:
        tokens = np.asarray(tokens)
        seq_len = tokens.shape[1]
        h = self.embed(tokens) + self.pos[0:seq_len]
        return self.norm(h)


class TextTransformer(SliceableModel):
    """Staged transformer encoder classifier."""

    family = "transformer"
    pool_kind = "sequence"

    def __init__(self, num_classes: int, vocab_size: int = 256,
                 width_mult: float = 1.0, num_stages: int | None = None,
                 head_mode: str = "deepest", seed: int = 0,
                 scale: str = "tiny", max_len: int = 32,
                 base_dim: int = 32, num_heads: int = 4,
                 layers_per_stage: int = 1, total_stages: int = 4):
        super().__init__()
        self._record_build_kwargs(
            num_classes=num_classes, vocab_size=vocab_size,
            width_mult=width_mult, num_stages=num_stages,
            head_mode=head_mode, seed=seed, scale=scale, max_len=max_len,
            base_dim=base_dim, num_heads=num_heads,
            layers_per_stage=layers_per_stage, total_stages=total_stages)
        if scale == "paper":
            base_dim, layers_per_stage = 128, 2
        self.width_mult = width_mult
        self.head_mode = head_mode
        self.total_stages = total_stages
        owned = total_stages if num_stages is None else num_stages
        if not 1 <= owned <= total_stages:
            raise ValueError(f"num_stages must be in [1, {total_stages}]")

        rng = np.random.default_rng(seed)
        dim = scaled_channels(base_dim, width_mult, divisor=num_heads)
        ffn_dim = scaled_channels(base_dim * 2, width_mult)
        self.stem = _TokenStem(vocab_size, dim, max_len, rng)

        self.stages = nn.ModuleList()
        for _ in range(owned):
            blocks = nn.Sequential()
            for _ in range(layers_per_stage):
                blocks.append(nn.TransformerEncoderLayer(dim, num_heads,
                                                         ffn_dim, rng))
            self.stages.append(blocks)

        self.heads = IndexedModules()
        head_indices = (range(owned) if head_mode == "all" else [owned - 1])
        for index in head_indices:
            self.heads.add(index, nn.Linear(dim, num_classes, rng,
                                            scale_out=False))
