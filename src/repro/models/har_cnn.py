"""Customized CNNs for human activity recognition (HAR-BOX / UCI-HAR).

Follows the "customized CNN" convention of the paper's HAR track (Ek et al.):
a small conv stack over windowed IMU signals.  We lay the (channels, time)
window out as an NCHW map of shape ``(N, sensor_channels, 8, 4)`` so the same
conv substrate serves all modalities; the ``har_cnn_*`` topology variants
(different widths / depths) implement the paper's "modified structure"
topology-heterogeneity case for HAR.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..autograd import Tensor, relu
from .base import IndexedModules, SliceableModel, scaled_channels

__all__ = ["HarCNN", "HAR_CONFIGS", "HAR_INPUT_SHAPE"]

#: (channels, height, width) layout of a HAR sample fed to the CNN.
HAR_INPUT_SHAPE = (9, 8, 4)

# name -> (per-stage widths, per-stage block counts)
HAR_CONFIGS = {
    "har_cnn": ([8, 16, 24, 32], [1, 1, 1, 1]),
    "har_cnn_wide": ([12, 24, 36, 48], [1, 1, 1, 1]),
    "har_cnn_deep": ([8, 16, 24, 32], [2, 2, 2, 2]),
    "har_cnn_lite": ([6, 12, 18, 24], [1, 1, 1, 1]),
}

_STAGE_STRIDES = [1, 2, 2, 1]


class _HarStem(nn.Module):
    def __init__(self, in_channels: int, out_channels: int,
                 rng: np.random.Generator):
        super().__init__()
        self.conv = nn.Conv2d(in_channels, out_channels, 3, rng, padding=1,
                              scale_in=False)
        self.bn = nn.BatchNorm2d(out_channels)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return relu(self.bn(self.conv(x)))


class _ConvBlock(nn.Module):
    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.conv = nn.Conv2d(in_channels, out_channels, 3, rng,
                              stride=stride, padding=1)
        self.bn = nn.BatchNorm2d(out_channels)

    def forward(self, x: Tensor) -> Tensor:
        return relu(self.bn(self.conv(x)))


class HarCNN(SliceableModel):
    """Customized CNN over windowed IMU data."""

    family = "har_cnn"
    pool_kind = "image"

    def __init__(self, num_classes: int, arch: str = "har_cnn",
                 width_mult: float = 1.0, num_stages: int | None = None,
                 head_mode: str = "deepest", seed: int = 0,
                 scale: str = "tiny", in_channels: int = HAR_INPUT_SHAPE[0]):
        super().__init__()
        self._record_build_kwargs(
            num_classes=num_classes, arch=arch, width_mult=width_mult,
            num_stages=num_stages, head_mode=head_mode, seed=seed,
            scale=scale, in_channels=in_channels)
        try:
            widths, block_counts = HAR_CONFIGS[arch]
        except KeyError:
            raise ValueError(f"unknown HAR arch {arch!r}") from None
        self.arch = arch
        self.width_mult = width_mult
        self.head_mode = head_mode
        self.total_stages = len(widths)
        owned = self.total_stages if num_stages is None else num_stages
        if not 1 <= owned <= self.total_stages:
            raise ValueError(f"num_stages must be in [1, {self.total_stages}]")

        rng = np.random.default_rng(seed)
        stem_width = scaled_channels(widths[0], width_mult)
        self.stem = _HarStem(in_channels, stem_width, rng)

        self.stages = nn.ModuleList()
        stage_out_dims: list[int] = []
        in_ch = stem_width
        for stage_index in range(owned):
            out_ch = scaled_channels(widths[stage_index], width_mult)
            blocks = nn.Sequential()
            for block_index in range(block_counts[stage_index]):
                stride = _STAGE_STRIDES[stage_index] if block_index == 0 else 1
                blocks.append(_ConvBlock(in_ch, out_ch, stride, rng))
                in_ch = out_ch
            self.stages.append(blocks)
            stage_out_dims.append(out_ch)

        self.heads = IndexedModules()
        head_indices = (range(owned) if head_mode == "all" else [owned - 1])
        for index in head_indices:
            self.heads.add(index, nn.Linear(stage_out_dims[index], num_classes,
                                            rng, scale_out=False))
