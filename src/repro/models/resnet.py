"""ResNet family (ResNet-18/34/50/101) with width & depth variants.

The paper uses ResNet-101 width/depth variants (100/75/50/25 %) on CIFAR-100
and the full ResNet family (18/34/50/101) for topology heterogeneity.  We
keep the exact stage topology — basic blocks for 18/34, bottlenecks with an
expansion factor for 50/101, stride-2 stage entries, projection shortcuts —
at a reduced base width/resolution (``scale="tiny"``) so CPU simulation is
feasible; ``scale="paper"`` restores the published block counts and widths.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..autograd import Tensor, relu
from .base import IndexedModules, SliceableModel, scaled_channels

__all__ = ["ResNet", "RESNET_CONFIGS"]

# name -> (block type, per-stage block counts, bottleneck expansion)
RESNET_CONFIGS = {
    # Block counts chosen so the tiny family preserves the real family's
    # parameter-count ordering (18 < 34 < 50 < 101) and ResNet-101 keeps its
    # characteristically deep third stage.
    "tiny": {
        "resnet18": ("basic", [1, 1, 1, 1], 1),
        "resnet34": ("basic", [1, 2, 2, 1], 1),
        "resnet50": ("bottleneck", [2, 2, 3, 2], 2),
        "resnet101": ("bottleneck", [2, 3, 6, 2], 2),
    },
    "paper": {
        "resnet18": ("basic", [2, 2, 2, 2], 1),
        "resnet34": ("basic", [3, 4, 6, 3], 1),
        "resnet50": ("bottleneck", [3, 4, 6, 3], 4),
        "resnet101": ("bottleneck", [3, 4, 23, 3], 4),
    },
}

_STAGE_WIDTHS = {"tiny": [8, 16, 32, 64], "paper": [64, 128, 256, 512]}


class _ImageStem(nn.Module):
    """3x3 conv stem; also converts raw numpy input into a Tensor."""

    def __init__(self, in_channels: int, out_channels: int,
                 rng: np.random.Generator):
        super().__init__()
        self.conv = nn.Conv2d(in_channels, out_channels, 3, rng, stride=1,
                              padding=1, scale_in=False)
        self.bn = nn.BatchNorm2d(out_channels)

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return relu(self.bn(self.conv(x)))


class _BasicBlock(nn.Module):
    """Two 3x3 convs with identity / projection shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator):
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, out_channels, 3, rng,
                               stride=stride, padding=1)
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, rng, padding=1)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut_conv = nn.Conv2d(in_channels, out_channels, 1, rng,
                                           stride=stride)
            self.shortcut_bn = nn.BatchNorm2d(out_channels)
        else:
            self.shortcut_conv = None

    def forward(self, x: Tensor) -> Tensor:
        out = relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        if self.shortcut_conv is not None:
            x = self.shortcut_bn(self.shortcut_conv(x))
        return relu(out + x)


class _BottleneckBlock(nn.Module):
    """1x1 reduce -> 3x3 -> 1x1 expand, as in ResNet-50/101."""

    def __init__(self, in_channels: int, mid_channels: int, stride: int,
                 expansion: int, rng: np.random.Generator):
        super().__init__()
        out_channels = mid_channels * expansion
        self.conv1 = nn.Conv2d(in_channels, mid_channels, 1, rng)
        self.bn1 = nn.BatchNorm2d(mid_channels)
        self.conv2 = nn.Conv2d(mid_channels, mid_channels, 3, rng,
                               stride=stride, padding=1)
        self.bn2 = nn.BatchNorm2d(mid_channels)
        self.conv3 = nn.Conv2d(mid_channels, out_channels, 1, rng)
        self.bn3 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut_conv = nn.Conv2d(in_channels, out_channels, 1, rng,
                                           stride=stride)
            self.shortcut_bn = nn.BatchNorm2d(out_channels)
        else:
            self.shortcut_conv = None

    def forward(self, x: Tensor) -> Tensor:
        out = relu(self.bn1(self.conv1(x)))
        out = relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        if self.shortcut_conv is not None:
            x = self.shortcut_bn(self.shortcut_conv(x))
        return relu(out + x)


class ResNet(SliceableModel):
    """Staged ResNet classifier.

    Parameters
    ----------
    num_classes:
        Output classes of every head.
    arch:
        One of ``resnet18 / resnet34 / resnet50 / resnet101``.
    width_mult:
        Channel multiplier applied to the stem and every stage.
    num_stages:
        Owned stage count (depth variants); ``None`` keeps all four.
    head_mode:
        ``"deepest"`` or ``"all"`` (DepthFL auxiliary classifiers).
    """

    family = "resnet"
    pool_kind = "image"

    def __init__(self, num_classes: int, arch: str = "resnet18",
                 width_mult: float = 1.0, num_stages: int | None = None,
                 depth_frac: float | None = None,
                 head_mode: str = "deepest", seed: int = 0,
                 scale: str = "tiny", in_channels: int = 3):
        super().__init__()
        self._record_build_kwargs(
            num_classes=num_classes, arch=arch, width_mult=width_mult,
            num_stages=num_stages, depth_frac=depth_frac,
            head_mode=head_mode, seed=seed,
            scale=scale, in_channels=in_channels)
        try:
            block_type, block_counts, expansion = RESNET_CONFIGS[scale][arch]
        except KeyError:
            raise ValueError(f"unknown resnet arch/scale: {arch}/{scale}") from None
        widths = _STAGE_WIDTHS[scale]
        self.arch = arch
        self.width_mult = width_mult
        self.head_mode = head_mode
        self.total_stages = len(widths)
        if depth_frac is not None:
            # Block-prefix depth pruning (DepthFL-style "bottom x% of the
            # layers"): keep the first ceil(frac * total) residual blocks,
            # filled stage by stage; stages left empty are dropped entirely.
            if not 0.0 < depth_frac <= 1.0:
                raise ValueError(f"depth_frac must be in (0, 1], got {depth_frac}")
            total_blocks = sum(block_counts)
            keep = max(1, int(round(depth_frac * total_blocks)))
            kept_counts = []
            for count in block_counts:
                take = min(count, keep)
                if take > 0:
                    kept_counts.append(take)
                keep -= take
            block_counts = kept_counts
            owned = len(kept_counts)
            if num_stages is not None:
                raise ValueError("pass either num_stages or depth_frac, not both")
        else:
            owned = self.total_stages if num_stages is None else num_stages
        if not 1 <= owned <= self.total_stages:
            raise ValueError(f"num_stages must be in [1, {self.total_stages}]")

        rng = np.random.default_rng(seed)
        stem_width = scaled_channels(widths[0], width_mult)
        self.stem = _ImageStem(in_channels, stem_width, rng)

        self.stages = nn.ModuleList()
        stage_out_dims: list[int] = []
        in_ch = stem_width
        for stage_index in range(owned):
            mid = scaled_channels(widths[stage_index], width_mult)
            out_ch = mid * expansion if block_type == "bottleneck" else mid
            stride = 1 if stage_index == 0 else 2
            blocks = nn.Sequential()
            for block_index in range(block_counts[stage_index]):
                s = stride if block_index == 0 else 1
                if block_type == "basic":
                    blocks.append(_BasicBlock(in_ch, mid, s, rng))
                else:
                    blocks.append(_BottleneckBlock(in_ch, mid, s, expansion, rng))
                in_ch = out_ch
            self.stages.append(blocks)
            stage_out_dims.append(out_ch)

        self.heads = IndexedModules()
        head_indices = (range(owned) if head_mode == "all" else [owned - 1])
        for index in head_indices:
            self.heads.add(index, nn.Linear(stage_out_dims[index], num_classes,
                                            rng, scale_out=False))
