"""Model registry: build any PracMHBench architecture by name.

The architecture names follow Table II of the paper; topology-heterogeneity
experiments draw from :data:`MODEL_FAMILIES` (ResNet family, MobileNet
family, ALBERT family, customized HAR CNNs).
"""

from __future__ import annotations

from typing import Callable

from .albert import ALBERT_CONFIGS, AlbertClassifier
from .base import SliceableModel
from .har_cnn import HAR_CONFIGS, HarCNN
from .mobilenet import MOBILENET_CONFIGS, MobileNet
from .resnet import RESNET_CONFIGS, ResNet
from .transformer import TextTransformer

__all__ = ["build_model", "MODEL_FAMILIES", "family_of", "known_architectures"]

#: Architecture families used for topology heterogeneity (Table II).
MODEL_FAMILIES: dict[str, list[str]] = {
    "resnet": ["resnet18", "resnet34", "resnet50", "resnet101"],
    "mobilenet": ["mobilenet_v2", "mobilenet_v3_small", "mobilenet_v3_large"],
    "albert": ["albert_base", "albert_large", "albert_xxlarge"],
    "har_cnn": ["har_cnn_lite", "har_cnn", "har_cnn_wide", "har_cnn_deep"],
}


def _build_resnet(arch: str, num_classes: int, **kwargs) -> SliceableModel:
    return ResNet(num_classes, arch=arch, **kwargs)


def _build_mobilenet(arch: str, num_classes: int, **kwargs) -> SliceableModel:
    return MobileNet(num_classes, arch=arch, **kwargs)


def _build_albert(arch: str, num_classes: int, **kwargs) -> SliceableModel:
    return AlbertClassifier(num_classes, arch=arch, **kwargs)


def _build_har(arch: str, num_classes: int, **kwargs) -> SliceableModel:
    return HarCNN(num_classes, arch=arch, **kwargs)


def _build_transformer(arch: str, num_classes: int, **kwargs) -> SliceableModel:
    return TextTransformer(num_classes, **kwargs)


_BUILDERS: dict[str, Callable[..., SliceableModel]] = {}
for _name in RESNET_CONFIGS["tiny"]:
    _BUILDERS[_name] = _build_resnet
for _name in MOBILENET_CONFIGS:
    _BUILDERS[_name] = _build_mobilenet
for _name in ALBERT_CONFIGS:
    _BUILDERS[_name] = _build_albert
for _name in HAR_CONFIGS:
    _BUILDERS[_name] = _build_har
_BUILDERS["transformer"] = _build_transformer


def known_architectures() -> list[str]:
    """All registered architecture names."""
    return sorted(_BUILDERS)


def build_model(arch: str, num_classes: int, **kwargs) -> SliceableModel:
    """Instantiate an architecture by name.

    ``kwargs`` forward to the architecture constructor: ``width_mult``,
    ``num_stages``, ``head_mode``, ``seed``, ``scale`` plus model-specific
    arguments (``vocab_size``, ``in_channels``, ...).
    """
    try:
        builder = _BUILDERS[arch]
    except KeyError:
        raise ValueError(f"unknown architecture {arch!r}; "
                         f"known: {known_architectures()}") from None
    return builder(arch, num_classes, **kwargs)


def family_of(arch: str) -> str:
    """Family name for a registered architecture."""
    for family, members in MODEL_FAMILIES.items():
        if arch in members:
            return family
    if arch == "transformer":
        return "transformer"
    raise ValueError(f"{arch!r} does not belong to a registered family")
