"""Base classes for the sliceable model zoo.

Every architecture in PracMHBench is built as a *staged classifier*:

``stem -> stage_0 -> stage_1 -> ... -> stage_{S-1}`` with a classifier head
attachable at every stage boundary.  This single structure supports all three
heterogeneity levels of the paper:

* **width** — the same stages built at a channel multiplier; parameters map
  back to the global model through per-axis index maps (see
  :mod:`repro.models.slicing`);
* **depth** — a variant keeps only the first ``k`` stages plus head(s);
  parameter names are a subset of the global model's names, so alignment for
  aggregation is purely name-based;
* **topology** — different `SliceableModel` subclasses entirely; alignment
  happens in representation space (prototypes / logits), not parameters.

Head modes:

* ``"deepest"`` — one classifier at the last owned stage (Fjord/SHeteroFL/
  FedRolex/FeDepth/InclusiveFL and all homogeneous baselines);
* ``"all"`` — a classifier at *every* owned stage boundary (DepthFL's
  auxiliary classifiers).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .. import autograd as ag
from ..autograd import Tensor
from .. import nn

__all__ = ["IndexedModules", "SliceableModel", "scaled_channels",
           "depth_variant_of"]


def scaled_channels(base: int, multiplier: float, divisor: int = 1) -> int:
    """Width-scale a channel count, keeping it positive and divisible.

    The same rounding is used when building the global model and every
    sub-model, which keeps producer/consumer channel counts consistent (the
    invariant the generic index maps rely on).
    """
    value = int(round(base * multiplier + 1e-8))
    value = max(divisor, value)
    if divisor > 1:
        value = int(np.ceil(value / divisor)) * divisor
    return value


class IndexedModules(nn.Module):
    """Sparse container registering children under explicit integer names.

    Used for heads: a depth variant that owns only stage 3's head must still
    name it ``heads.3`` so it aggregates against the global model.
    """

    def __init__(self):
        super().__init__()
        self._indices: list[int] = []

    def add(self, index: int, module: nn.Module) -> None:
        setattr(self, str(index), module)
        self._indices.append(index)

    def get(self, index: int) -> nn.Module:
        return self._modules[str(index)]

    def has(self, index: int) -> bool:
        return str(index) in self._modules

    @property
    def indices(self) -> list[int]:
        return list(self._indices)

    def forward(self, *args, **kwargs):
        raise RuntimeError("IndexedModules is a container; call its children")


class SliceableModel(nn.Module):
    """Staged classifier with width / depth variant construction.

    Subclasses must, in ``__init__``:

    1. call ``super().__init__()`` then ``self._record_build_kwargs(...)``
       with every constructor argument (so :meth:`variant` can rebuild);
    2. populate ``self.stem``, ``self.stages`` (a ``ModuleList`` whose i-th
       entry is global stage ``i``), and ``self.heads`` (an
       :class:`IndexedModules`);
    3. set ``self.total_stages`` (global stage count), ``self.width_mult``
       and ``self.head_mode``.

    The input convention is a plain numpy array (float images / int tokens);
    the stem converts it into a :class:`Tensor`.
    """

    #: human-readable architecture family, e.g. ``"resnet"``.
    family: str = "generic"
    #: which pooling the default head pathway applies ("image" | "sequence").
    pool_kind: str = "image"

    def __init__(self):
        super().__init__()
        self._build_kwargs: dict = {}
        self.total_stages: int = 0
        self.width_mult: float = 1.0
        self.head_mode: str = "deepest"

    # ------------------------------------------------------------------
    # Variant construction
    # ------------------------------------------------------------------
    def _record_build_kwargs(self, **kwargs) -> None:
        self._build_kwargs = dict(kwargs)

    def variant(self, **overrides) -> "SliceableModel":
        """Rebuild this architecture with overridden structural arguments.

        Typical calls: ``variant(width_mult=0.5)``,
        ``variant(num_stages=2, head_mode="all")``.
        """
        kwargs = dict(self._build_kwargs)
        kwargs.update(overrides)
        return type(self)(**kwargs)

    # ------------------------------------------------------------------
    # Stage plumbing
    # ------------------------------------------------------------------
    @property
    def num_owned_stages(self) -> int:
        return len(self.stages)

    @property
    def top_stage_index(self) -> int:
        return self.num_owned_stages - 1

    def owned_head_indices(self) -> list[int]:
        return self.heads.indices

    def pool(self, h: Tensor) -> Tensor:
        """Collapse a stage output into a (N, D) representation."""
        if self.pool_kind == "image":
            return ag.global_avg_pool2d(h)
        if self.pool_kind == "sequence":
            return h.mean(axis=1)
        raise ValueError(f"unknown pool kind {self.pool_kind!r}")

    def _run_stages(self, x) -> list[Tensor]:
        """Run stem + stages, returning every stage's output."""
        h = self.stem(x)
        outputs = []
        for stage in self.stages:
            h = stage(h)
            outputs.append(h)
        return outputs

    # ------------------------------------------------------------------
    # Forward protocols
    # ------------------------------------------------------------------
    def forward(self, x) -> Tensor:
        """Logits from the deepest owned head."""
        outputs = self._run_stages(x)
        head = self.heads.get(self.top_stage_index)
        return head(self.pool(outputs[-1]))

    def forward_all_heads(self, x) -> list[tuple[int, Tensor]]:
        """(stage index, logits) for every owned head (DepthFL pathway)."""
        outputs = self._run_stages(x)
        results = []
        for index in self.heads.indices:
            head = self.heads.get(index)
            results.append((index, head(self.pool(outputs[index]))))
        return results

    def features(self, x) -> Tensor:
        """Pooled penultimate representation (FedProto pathway)."""
        outputs = self._run_stages(x)
        return self.pool(outputs[-1])

    @property
    def feature_dim(self) -> int:
        """Dimension of :meth:`features` output."""
        head = self.heads.get(self.top_stage_index)
        return head.in_features

    # ------------------------------------------------------------------
    # Partial-freezing support (FeDepth)
    # ------------------------------------------------------------------
    def set_trainable_stages(self, stage_indices: Sequence[int],
                             train_stem: bool = True,
                             train_heads: bool = True) -> None:
        """Freeze every stage outside ``stage_indices``.

        FeDepth fits training into a memory budget by updating only a
        sliding segment of blocks; frozen parameters keep their values and
        receive no gradient.
        """
        wanted = set(stage_indices)
        for param in self.stem.parameters():
            param.requires_grad = train_stem
        for index, stage in enumerate(self.stages):
            flag = index in wanted
            for param in stage.parameters():
                param.requires_grad = flag
        for head_index in self.heads.indices:
            for param in self.heads.get(head_index).parameters():
                param.requires_grad = train_heads

    def trainable_parameters(self) -> list[nn.Parameter]:
        return [p for p in self.parameters() if p.requires_grad]


def depth_variant_of(model: "SliceableModel", frac: float,
                     head_mode: str = "deepest") -> "SliceableModel":
    """Build the depth variant at a nominal fraction of the original depth.

    Architectures with uniform-width stages (ResNet) support block-level
    prefix pruning (``depth_frac``), which matches how DepthFL-style methods
    cut "the bottom x% of the layers"; other architectures quantise to whole
    stages.
    """
    if not 0.0 < frac <= 1.0:
        raise ValueError(f"depth fraction must be in (0, 1], got {frac}")
    if "depth_frac" in model._build_kwargs:
        return model.variant(depth_frac=frac, num_stages=None,
                             head_mode=head_mode)
    stages = max(1, int(round(frac * model.total_stages)))
    return model.variant(num_stages=stages, head_mode=head_mode)
