"""MobileNet family (V2, V3-small, V3-large) with width & depth variants.

Inverted-residual blocks with expand -> depthwise -> project structure,
squeeze-and-excitation and hard-swish for the V3 members — the topology
features that make MobileNet width slicing interesting (the hidden expansion
dim must stay consistent between the expand, depthwise, SE and project
parameters, which exercises the generic index maps).
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..autograd import Tensor, relu, relu6, hardswish, sigmoid, global_avg_pool2d
from .base import IndexedModules, SliceableModel, scaled_channels

__all__ = ["MobileNet", "MOBILENET_CONFIGS"]

# Block spec: (expand_ratio, out_channels, stride, use_se, activation)
# Stage grouping mirrors the resolution steps of the published models.
MOBILENET_CONFIGS: dict[str, dict] = {
    "mobilenet_v2": {
        "stem": 8, "stem_act": "relu6", "last_channel": 48,
        "stages": [
            [(1, 8, 1, False, "relu6")],
            [(4, 12, 2, False, "relu6"), (4, 12, 1, False, "relu6")],
            [(4, 16, 2, False, "relu6"), (4, 16, 1, False, "relu6")],
            [(4, 24, 2, False, "relu6")],
        ],
    },
    "mobilenet_v3_small": {
        "stem": 8, "stem_act": "hardswish", "last_channel": 48,
        "stages": [
            [(1, 8, 2, True, "relu")],
            [(3, 12, 2, False, "relu"), (3, 12, 1, False, "relu")],
            [(4, 16, 2, True, "hardswish"), (4, 16, 1, True, "hardswish")],
            [(4, 24, 1, True, "hardswish")],
        ],
    },
    "mobilenet_v3_large": {
        "stem": 8, "stem_act": "hardswish", "last_channel": 56,
        "stages": [
            [(1, 8, 1, False, "relu")],
            [(4, 12, 2, False, "relu"), (3, 12, 1, False, "relu")],
            [(3, 16, 2, True, "relu"), (3, 16, 1, True, "relu"),
             (4, 20, 1, True, "hardswish")],
            [(6, 28, 2, True, "hardswish"), (6, 28, 1, True, "hardswish")],
        ],
    },
}

_ACT_FNS = {"relu": relu, "relu6": relu6, "hardswish": hardswish}


class _ConvBNAct(nn.Module):
    def __init__(self, in_ch: int, out_ch: int, kernel: int,
                 rng: np.random.Generator, stride: int = 1,
                 groups: int = 1, act: str = "relu6",
                 scale_in: bool = True):
        super().__init__()
        padding = kernel // 2
        self.conv = nn.Conv2d(in_ch, out_ch, kernel, rng, stride=stride,
                              padding=padding, groups=groups,
                              scale_in=scale_in)
        self.bn = nn.BatchNorm2d(out_ch)
        self._act = _ACT_FNS.get(act)

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn(self.conv(x))
        return self._act(out) if self._act else out


class _SqueezeExcite(nn.Module):
    """Channel attention: pool -> reduce -> relu -> expand -> sigmoid -> scale."""

    def __init__(self, channels: int, rng: np.random.Generator,
                 reduction: int = 4):
        super().__init__()
        hidden = max(2, channels // reduction)
        self.fc_reduce = nn.Linear(channels, hidden, rng)
        self.fc_expand = nn.Linear(hidden, channels, rng)

    def forward(self, x: Tensor) -> Tensor:
        n, c = x.shape[0], x.shape[1]
        s = global_avg_pool2d(x)
        s = sigmoid(self.fc_expand(relu(self.fc_reduce(s))))
        return x * s.reshape(n, c, 1, 1)


class _InvertedResidual(nn.Module):
    """MobileNet inverted residual block (expand -> depthwise -> project)."""

    def __init__(self, in_ch: int, out_ch: int, stride: int,
                 expand_ratio: int, use_se: bool, act: str,
                 rng: np.random.Generator):
        super().__init__()
        hidden = in_ch * expand_ratio
        self.use_residual = (stride == 1 and in_ch == out_ch)
        if expand_ratio != 1:
            self.expand = _ConvBNAct(in_ch, hidden, 1, rng, act=act)
        else:
            self.expand = None
        self.depthwise = _ConvBNAct(hidden, hidden, 3, rng, stride=stride,
                                    groups=hidden, act=act)
        self.se = _SqueezeExcite(hidden, rng) if use_se else None
        self.project = _ConvBNAct(hidden, out_ch, 1, rng, act="none")

    def forward(self, x: Tensor) -> Tensor:
        out = self.expand(x) if self.expand is not None else x
        out = self.depthwise(out)
        if self.se is not None:
            out = self.se(out)
        out = self.project(out)
        if self.use_residual:
            out = out + x
        return out


class _MobileStem(nn.Module):
    def __init__(self, in_channels: int, out_channels: int, act: str,
                 rng: np.random.Generator):
        super().__init__()
        self.conv = nn.Conv2d(in_channels, out_channels, 3, rng, stride=1,
                              padding=1, scale_in=False)
        self.bn = nn.BatchNorm2d(out_channels)
        self._act = _ACT_FNS[act]

    def forward(self, x) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        return self._act(self.bn(self.conv(x)))


class MobileNet(SliceableModel):
    """Staged MobileNet classifier (see module docstring)."""

    family = "mobilenet"
    pool_kind = "image"

    def __init__(self, num_classes: int, arch: str = "mobilenet_v2",
                 width_mult: float = 1.0, num_stages: int | None = None,
                 head_mode: str = "deepest", seed: int = 0,
                 scale: str = "tiny", in_channels: int = 3):
        super().__init__()
        self._record_build_kwargs(
            num_classes=num_classes, arch=arch, width_mult=width_mult,
            num_stages=num_stages, head_mode=head_mode, seed=seed,
            scale=scale, in_channels=in_channels)
        try:
            config = MOBILENET_CONFIGS[arch]
        except KeyError:
            raise ValueError(f"unknown mobilenet arch {arch!r}") from None
        # "paper" scale: 4x the tiny widths (the published models' ballpark).
        width_factor = 4 if scale == "paper" else 1
        self.arch = arch
        self.width_mult = width_mult
        self.head_mode = head_mode
        self.total_stages = len(config["stages"])
        owned = self.total_stages if num_stages is None else num_stages
        if not 1 <= owned <= self.total_stages:
            raise ValueError(f"num_stages must be in [1, {self.total_stages}]")

        rng = np.random.default_rng(seed)
        stem_width = scaled_channels(config["stem"] * width_factor, width_mult)
        self.stem = _MobileStem(in_channels, stem_width, config["stem_act"], rng)

        self.stages = nn.ModuleList()
        stage_out_dims: list[int] = []
        in_ch = stem_width
        for stage_index in range(owned):
            blocks = nn.Sequential()
            for expand, out_base, stride, use_se, act in config["stages"][stage_index]:
                out_ch = scaled_channels(out_base * width_factor, width_mult)
                blocks.append(_InvertedResidual(in_ch, out_ch, stride, expand,
                                                use_se, act, rng))
                in_ch = out_ch
            if stage_index == self.total_stages - 1:
                # The final pointwise expansion before pooling.
                last = scaled_channels(config["last_channel"] * width_factor,
                                       width_mult)
                blocks.append(_ConvBNAct(in_ch, last, 1, rng,
                                         act=config["stem_act"]))
                in_ch = last
            self.stages.append(blocks)
            stage_out_dims.append(in_ch)

        self.heads = IndexedModules()
        head_indices = (range(owned) if head_mode == "all" else [owned - 1])
        for index in head_indices:
            self.heads.add(index, nn.Linear(stage_out_dims[index], num_classes,
                                            rng, scale_out=False))
