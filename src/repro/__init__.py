"""PracMHBench reproduction: model-heterogeneous federated learning under
practical edge-device constraints (DAC 2025).

Top-level convenience re-exports; see subpackages for full APIs:

* :mod:`repro.autograd` / :mod:`repro.nn` — numpy training substrate
* :mod:`repro.models` — sliceable model zoo (ResNet/MobileNet/Transformer/...)
* :mod:`repro.data` — synthetic datasets + federated partitioners
* :mod:`repro.hw` — device profiles, cost models, model pool
* :mod:`repro.fl` — federated simulation engine
* :mod:`repro.algorithms` — the eight MHFL algorithms + FedAvg baseline
* :mod:`repro.constraints` — computation/communication/memory-limited cases
* :mod:`repro.metrics` — the four PracMHBench metrics
* :mod:`repro.experiments` — per-table/figure reproduction harnesses
"""

__version__ = "1.0.0"
