"""Synthetic AG-News / Stack Overflow stand-ins.

Token-sequence classification tasks with the structure the benchmark needs:

* **AG-News-like** — 4 topics; every sequence mixes a shared Zipfian
  background vocabulary with topic-indicative tokens.  Partitioned IID in
  the paper.
* **Stack Overflow-like** — tag classification over many users; each user
  has a personal topic mixture (a small subset of tags dominates) and a
  personal vocabulary bias, so partitioning *by user id* is naturally
  non-IID exactly as in the TFF Stack Overflow dataset the paper uses.
"""

from __future__ import annotations

import numpy as np

from .dataset import FederatedDataset

__all__ = ["make_agnews_like", "make_stackoverflow_like",
           "VOCAB_SIZE", "SEQ_LEN"]

VOCAB_SIZE = 256
SEQ_LEN = 16

# Tokens [0, _TOPIC_BASE) form the shared background vocabulary; each class
# owns a disjoint block of topic tokens above it.
_TOPIC_BASE = 128


def _zipf_background(rng: np.random.Generator, size: int) -> np.ndarray:
    ranks = np.arange(1, _TOPIC_BASE + 1, dtype=np.float64)
    probs = 1.0 / ranks
    probs /= probs.sum()
    return rng.choice(_TOPIC_BASE, size=size, p=probs)


def _topic_tokens(cls: int, num_classes: int) -> tuple[int, int]:
    """Token id range [lo, hi) owned by a class."""
    span = (VOCAB_SIZE - _TOPIC_BASE) // num_classes
    lo = _TOPIC_BASE + cls * span
    return lo, lo + span


def _render_sequences(rng: np.random.Generator, labels: np.ndarray,
                      num_classes: int, topic_rate: float,
                      user_token: np.ndarray | None = None) -> np.ndarray:
    n = len(labels)
    seqs = _zipf_background(rng, (n, SEQ_LEN))
    topic_mask = rng.random((n, SEQ_LEN)) < topic_rate
    for i, cls in enumerate(labels):
        lo, hi = _topic_tokens(int(cls), num_classes)
        count = int(topic_mask[i].sum())
        seqs[i, topic_mask[i]] = rng.integers(lo, hi, size=count)
    if user_token is not None:
        # A user-specific token at a fixed slot: personal vocabulary bias.
        seqs[:, 0] = user_token
    return seqs.astype(np.int64)


def make_agnews_like(train_size: int = 2000, test_size: int = 500,
                     seed: int = 0) -> FederatedDataset:
    """4-topic news classification (paper setting: 50 clients, IID)."""
    rng = np.random.default_rng(seed + 4)
    num_classes = 4
    y_train = rng.integers(0, num_classes, train_size)
    y_test = rng.integers(0, num_classes, test_size)
    x_train = _render_sequences(rng, y_train, num_classes, topic_rate=0.25)
    x_test = _render_sequences(rng, y_test, num_classes, topic_rate=0.25)
    return FederatedDataset(
        name="agnews", modality="text",
        x_train=x_train, y_train=y_train.astype(np.int64),
        x_test=x_test, y_test=y_test.astype(np.int64),
        num_classes=num_classes, user_ids=None, paper_num_clients=50,
        info={"vocab_size": VOCAB_SIZE, "seq_len": SEQ_LEN})


def make_stackoverflow_like(num_users: int = 100, samples_per_user: int = 20,
                            test_size: int = 500, num_classes: int = 10,
                            seed: int = 0) -> FederatedDataset:
    """Tag classification partitioned over user ids (naturally non-IID).

    The paper uses 500 clients; pass ``num_users=500`` for the full setting.
    """
    rng = np.random.default_rng(seed + 500)
    user_tokens = rng.integers(0, _TOPIC_BASE, num_users)

    # Each user concentrates on a few tags (Dirichlet with small alpha).
    user_class_probs = rng.dirichlet(np.full(num_classes, 0.3), size=num_users)

    xs, ys, uids = [], [], []
    for user in range(num_users):
        labels = rng.choice(num_classes, size=samples_per_user,
                            p=user_class_probs[user])
        token = np.full(samples_per_user, user_tokens[user])
        xs.append(_render_sequences(rng, labels, num_classes,
                                    topic_rate=0.3, user_token=token))
        ys.append(labels)
        uids.append(np.full(samples_per_user, user))

    # Global test set: uniform over classes, no user token bias.
    y_test = rng.integers(0, num_classes, test_size)
    x_test = _render_sequences(rng, y_test, num_classes, topic_rate=0.3)

    return FederatedDataset(
        name="stackoverflow", modality="text",
        x_train=np.concatenate(xs), y_train=np.concatenate(ys).astype(np.int64),
        x_test=x_test, y_test=y_test.astype(np.int64),
        num_classes=num_classes,
        user_ids=np.concatenate(uids),
        paper_num_clients=500,
        info={"vocab_size": VOCAB_SIZE, "seq_len": SEQ_LEN})
