"""Synthetic CIFAR-10 / CIFAR-100 stand-ins.

No network access is available in this reproduction, so we generate image
classification tasks with the *structural* properties the benchmark needs:

* class-conditional signal a small CNN can learn (smooth per-class texture
  prototypes at CIFAR-like channel statistics);
* CIFAR-100's coarse/fine hierarchy (class prototypes share a superclass
  component), which makes the 100-way task measurably harder than the
  10-way task — preserving the relative difficulty the paper relies on;
* enough intra-class variation (per-sample distortion + noise) that models
  do not saturate instantly and algorithm differences stay visible.
"""

from __future__ import annotations

import numpy as np

from .dataset import FederatedDataset

__all__ = ["make_cifar10_like", "make_cifar100_like", "IMAGE_SHAPE"]

#: (channels, height, width) of the synthetic CIFAR stand-ins.
IMAGE_SHAPE = (3, 16, 16)


def _smooth_field(rng: np.random.Generator, channels: int, size: int,
                  coarse: int = 4) -> np.ndarray:
    """Low-frequency random texture: coarse grid upsampled to size x size."""
    grid = rng.standard_normal((channels, coarse, coarse))
    return np.kron(grid, np.ones((size // coarse, size // coarse)))


def _generate_images(rng: np.random.Generator, prototypes: np.ndarray,
                     labels: np.ndarray, noise: float,
                     distortion: float) -> np.ndarray:
    """Render samples: prototype + per-sample smooth distortion + noise."""
    channels, size = prototypes.shape[1], prototypes.shape[2]
    images = prototypes[labels].copy()
    for i in range(len(labels)):
        images[i] += distortion * _smooth_field(rng, channels, size)
    images += noise * rng.standard_normal(images.shape)
    return images.astype(np.float32)


def _make_image_task(name: str, num_classes: int, train_per_class: int,
                     test_per_class: int, seed: int,
                     num_superclasses: int | None,
                     paper_num_clients: int, noise: float = 0.8,
                     distortion: float = 0.5) -> FederatedDataset:
    rng = np.random.default_rng(seed)
    channels, size = IMAGE_SHAPE[0], IMAGE_SHAPE[1]

    if num_superclasses:
        # CIFAR-100-like hierarchy: prototype = superclass base + fine delta.
        supers = np.stack([_smooth_field(rng, channels, size)
                           for _ in range(num_superclasses)])
        prototypes = np.empty((num_classes, channels, size, size))
        for cls in range(num_classes):
            base = supers[cls % num_superclasses]
            prototypes[cls] = base + 0.6 * _smooth_field(rng, channels, size)
    else:
        prototypes = np.stack([1.2 * _smooth_field(rng, channels, size)
                               for _ in range(num_classes)])

    y_train = np.repeat(np.arange(num_classes), train_per_class)
    y_test = np.repeat(np.arange(num_classes), test_per_class)
    rng.shuffle(y_train)
    rng.shuffle(y_test)
    x_train = _generate_images(rng, prototypes, y_train,
                               noise=noise, distortion=distortion)
    x_test = _generate_images(rng, prototypes, y_test,
                              noise=noise, distortion=distortion)
    return FederatedDataset(
        name=name, modality="image",
        x_train=x_train, y_train=y_train.astype(np.int64),
        x_test=x_test, y_test=y_test.astype(np.int64),
        num_classes=num_classes, user_ids=None,
        paper_num_clients=paper_num_clients,
        info={"input_shape": IMAGE_SHAPE})


def make_cifar10_like(train_per_class: int = 200, test_per_class: int = 50,
                      seed: int = 0) -> FederatedDataset:
    """10-way image task (paper setting: 100 clients, IID partition)."""
    return _make_image_task("cifar10", 10, train_per_class, test_per_class,
                            seed=seed + 10, num_superclasses=None,
                            paper_num_clients=100, noise=1.4, distortion=0.8)


def make_cifar100_like(train_per_class: int = 20, test_per_class: int = 5,
                       seed: int = 0) -> FederatedDataset:
    """100-way image task with a 20-superclass hierarchy (100 clients, IID)."""
    return _make_image_task("cifar100", 100, train_per_class, test_per_class,
                            seed=seed + 100, num_superclasses=20,
                            paper_num_clients=100)
