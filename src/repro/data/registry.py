"""Dataset registry: build any of the six PracMHBench tasks by name."""

from __future__ import annotations

from typing import Callable

from .dataset import FederatedDataset
from .synthetic_har import make_harbox_like, make_ucihar_like
from .synthetic_images import make_cifar10_like, make_cifar100_like
from .synthetic_text import make_agnews_like, make_stackoverflow_like

__all__ = ["load_dataset", "DATASET_NAMES", "DATASET_TRACKS"]

_LOADERS: dict[str, Callable[..., FederatedDataset]] = {
    "cifar10": make_cifar10_like,
    "cifar100": make_cifar100_like,
    "agnews": make_agnews_like,
    "stackoverflow": make_stackoverflow_like,
    "harbox": make_harbox_like,
    "ucihar": make_ucihar_like,
}

DATASET_NAMES = sorted(_LOADERS)

#: Data-task tracks of Table II.
DATASET_TRACKS = {
    "cv": ["cifar10", "cifar100"],
    "nlp": ["agnews", "stackoverflow"],
    "har": ["harbox", "ucihar"],
}


def load_dataset(name: str, seed: int = 0, **kwargs) -> FederatedDataset:
    """Build a dataset by name; size parameters forward to the generator."""
    try:
        loader = _LOADERS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; known: {DATASET_NAMES}") from None
    return loader(seed=seed, **kwargs)
