"""Federated partitioning: IID, Dirichlet non-IID, and natural by-user.

Matches Section V of the paper: CIFAR-10/100 and AG-News use IID partitions;
Stack Overflow, HAR-BOX and UCI-HAR partition over user ids (naturally
non-IID); Figure 8 additionally sweeps Dirichlet alpha in {0.5, 5}.
"""

from __future__ import annotations

import numpy as np

from .dataset import FederatedDataset

__all__ = ["iid_partition", "dirichlet_partition", "by_user_partition",
           "partition_dataset"]


def iid_partition(num_samples: int, num_clients: int,
                  rng: np.random.Generator) -> list[np.ndarray]:
    """Shuffle and deal samples round-robin into equal shards."""
    if num_clients < 1:
        raise ValueError("need at least one client")
    order = rng.permutation(num_samples)
    return [np.sort(order[i::num_clients]) for i in range(num_clients)]


def dirichlet_partition(labels: np.ndarray, num_clients: int, alpha: float,
                        rng: np.random.Generator,
                        min_samples: int = 2) -> list[np.ndarray]:
    """Label-skewed partition: per-class Dirichlet(alpha) client shares.

    Small ``alpha`` concentrates each class on few clients (strong non-IID);
    large ``alpha`` approaches IID.  Re-draws until every client has at
    least ``min_samples`` samples (the convention of Li et al.'s non-IID
    benchmark, which the paper follows).
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    labels = np.asarray(labels)
    num_classes = int(labels.max()) + 1
    for _attempt in range(100):
        shards: list[list[int]] = [[] for _ in range(num_clients)]
        for cls in range(num_classes):
            cls_idx = np.flatnonzero(labels == cls)
            rng.shuffle(cls_idx)
            shares = rng.dirichlet(np.full(num_clients, alpha))
            cuts = (np.cumsum(shares) * len(cls_idx)).astype(int)[:-1]
            for client, part in enumerate(np.split(cls_idx, cuts)):
                shards[client].extend(part.tolist())
        sizes = [len(s) for s in shards]
        if min(sizes) >= min_samples:
            return [np.sort(np.asarray(s)) for s in shards]
    raise RuntimeError(
        f"could not build a Dirichlet({alpha}) partition with "
        f">={min_samples} samples per client after 100 attempts")


def by_user_partition(user_ids: np.ndarray,
                      num_clients: int | None = None) -> list[np.ndarray]:
    """Natural partition: one client per user id.

    When ``num_clients`` is smaller than the number of users, users are
    merged round-robin (several users per client); when larger, an error is
    raised (there is no natural way to split a user).
    """
    user_ids = np.asarray(user_ids)
    unique_users = np.unique(user_ids)
    if num_clients is None:
        num_clients = len(unique_users)
    if num_clients > len(unique_users):
        raise ValueError(
            f"cannot split {len(unique_users)} users into {num_clients} clients")
    shards: list[list[int]] = [[] for _ in range(num_clients)]
    for position, user in enumerate(unique_users):
        shards[position % num_clients].extend(
            np.flatnonzero(user_ids == user).tolist())
    return [np.sort(np.asarray(s)) for s in shards]


def partition_dataset(dataset: FederatedDataset, num_clients: int,
                      scheme: str = "auto", alpha: float = 0.5,
                      seed: int = 0) -> list[np.ndarray]:
    """Partition a dataset's training set into client index shards.

    ``scheme="auto"`` follows the paper: by-user when the dataset carries
    user ids, IID otherwise. Explicit schemes: ``"iid"``, ``"dirichlet"``,
    ``"by_user"``.
    """
    rng = np.random.default_rng(seed)
    if scheme == "auto":
        scheme = "by_user" if dataset.user_ids is not None else "iid"
    if scheme == "iid":
        return iid_partition(dataset.num_train, num_clients, rng)
    if scheme == "dirichlet":
        return dirichlet_partition(dataset.y_train, num_clients, alpha, rng)
    if scheme == "by_user":
        if dataset.user_ids is None:
            raise ValueError(f"{dataset.name} has no user ids")
        return by_user_partition(dataset.user_ids, num_clients)
    raise ValueError(f"unknown partition scheme {scheme!r}")
