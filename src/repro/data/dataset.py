"""Dataset containers and batch iteration for the federated simulator."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

__all__ = ["FederatedDataset", "Subset", "batches"]


@dataclass
class FederatedDataset:
    """A task: train/test arrays plus federation metadata.

    ``user_ids`` (parallel to the training arrays) is present for the
    naturally non-IID datasets (Stack Overflow, HAR-BOX, UCI-HAR), where the
    paper partitions by user; it is ``None`` for the IID-partitioned tasks.
    """

    name: str
    modality: str                       # "image" | "text" | "har"
    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int
    user_ids: np.ndarray | None = None
    #: client count used in the paper's experiments (Section V).
    paper_num_clients: int = 100
    #: extra task metadata (vocab size for text, input shape, ...).
    info: dict = field(default_factory=dict)

    def __post_init__(self):
        if len(self.x_train) != len(self.y_train):
            raise ValueError("x_train / y_train length mismatch")
        if len(self.x_test) != len(self.y_test):
            raise ValueError("x_test / y_test length mismatch")
        if self.user_ids is not None and len(self.user_ids) != len(self.y_train):
            raise ValueError("user_ids must parallel the training arrays")

    @property
    def num_train(self) -> int:
        return len(self.y_train)

    @property
    def num_test(self) -> int:
        return len(self.y_test)

    def subset(self, indices: np.ndarray) -> "Subset":
        return Subset(self, np.asarray(indices))


@dataclass
class Subset:
    """A client's shard: a view of the parent dataset by index array."""

    parent: FederatedDataset
    indices: np.ndarray

    def __len__(self) -> int:
        return len(self.indices)

    @property
    def x(self) -> np.ndarray:
        return self.parent.x_train[self.indices]

    @property
    def y(self) -> np.ndarray:
        return self.parent.y_train[self.indices]

    def label_distribution(self) -> np.ndarray:
        """Per-class sample counts in this shard."""
        return np.bincount(self.y, minlength=self.parent.num_classes)


def batches(x: np.ndarray, y: np.ndarray, batch_size: int,
            rng: np.random.Generator | None = None,
            drop_last: bool = False) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield (x, y) minibatches, shuffled when an RNG is given."""
    n = len(y)
    order = np.arange(n)
    if rng is not None:
        rng.shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start:start + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        yield x[idx], y[idx]
