"""Synthetic datasets + federated partitioners (see DESIGN.md substitutions)."""

from .dataset import FederatedDataset, Subset, batches
from .partition import (iid_partition, dirichlet_partition, by_user_partition,
                        partition_dataset)
from .registry import load_dataset, DATASET_NAMES, DATASET_TRACKS
from .synthetic_images import make_cifar10_like, make_cifar100_like, IMAGE_SHAPE
from .synthetic_text import (make_agnews_like, make_stackoverflow_like,
                             VOCAB_SIZE, SEQ_LEN)
from .synthetic_har import make_ucihar_like, make_harbox_like

__all__ = [
    "FederatedDataset", "Subset", "batches",
    "iid_partition", "dirichlet_partition", "by_user_partition",
    "partition_dataset",
    "load_dataset", "DATASET_NAMES", "DATASET_TRACKS",
    "make_cifar10_like", "make_cifar100_like", "IMAGE_SHAPE",
    "make_agnews_like", "make_stackoverflow_like", "VOCAB_SIZE", "SEQ_LEN",
    "make_ucihar_like", "make_harbox_like",
]
