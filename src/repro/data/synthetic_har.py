"""Synthetic HAR-BOX / UCI-HAR stand-ins (human activity recognition).

Per-user IMU-style time series: each activity class has characteristic
frequencies and per-channel amplitude envelopes; each user contributes a
personal amplitude scale, phase offset and sensor bias.  Windows are laid out
as ``(channels, 8, 4)`` maps for the customized CNN (see
:mod:`repro.models.har_cnn`).  Both datasets are keyed by user id and are
therefore naturally non-IID, matching the paper's partitioning.
"""

from __future__ import annotations

import numpy as np

from .dataset import FederatedDataset
from ..models.har_cnn import HAR_INPUT_SHAPE

__all__ = ["make_ucihar_like", "make_harbox_like"]

_CHANNELS = HAR_INPUT_SHAPE[0]
_WINDOW = HAR_INPUT_SHAPE[1] * HAR_INPUT_SHAPE[2]   # 32 time steps


def _class_signatures(rng: np.random.Generator,
                      num_classes: int) -> tuple[np.ndarray, np.ndarray]:
    """Characteristic frequency + per-channel amplitude for each activity."""
    freqs = rng.uniform(0.5, 4.0, size=num_classes)
    amps = rng.uniform(0.3, 1.5, size=(num_classes, _CHANNELS))
    return freqs, amps


def _render_windows(rng: np.random.Generator, labels: np.ndarray,
                    freqs: np.ndarray, amps: np.ndarray,
                    user_scale: np.ndarray, user_phase: np.ndarray,
                    user_bias: np.ndarray, noise: float) -> np.ndarray:
    """Render (N, C, 8, 4) activity windows for one user."""
    t = np.arange(_WINDOW)
    signals = np.empty((len(labels), _CHANNELS, _WINDOW))
    for i, cls in enumerate(labels):
        phase = user_phase + rng.uniform(0, 2 * np.pi)
        carrier = np.sin(2 * np.pi * freqs[cls] * t / _WINDOW + phase)
        harmonics = 0.4 * np.sin(4 * np.pi * freqs[cls] * t / _WINDOW + phase)
        wave = carrier + harmonics
        signals[i] = (user_scale * amps[cls])[:, None] * wave[None, :]
        signals[i] += user_bias[:, None]
    signals += noise * rng.standard_normal(signals.shape)
    return signals.reshape(len(labels), *HAR_INPUT_SHAPE).astype(np.float32)


def _make_har_task(name: str, num_users: int, num_classes: int,
                   samples_per_user: int, test_size: int, seed: int,
                   paper_num_clients: int, noise: float = 0.45) -> FederatedDataset:
    rng = np.random.default_rng(seed)
    freqs, amps = _class_signatures(rng, num_classes)

    xs, ys, uids = [], [], []
    for user in range(num_users):
        user_scale = rng.uniform(0.7, 1.3, size=_CHANNELS)
        user_phase = rng.uniform(0, 2 * np.pi)
        user_bias = rng.normal(0, 0.2, size=_CHANNELS)
        # Users do not perform all activities equally often: natural skew.
        class_probs = rng.dirichlet(np.full(num_classes, 0.8))
        labels = rng.choice(num_classes, size=samples_per_user, p=class_probs)
        xs.append(_render_windows(rng, labels, freqs, amps, user_scale,
                                  user_phase, user_bias, noise=noise))
        ys.append(labels)
        uids.append(np.full(samples_per_user, user))

    # Global test: a held-out "average user" with uniform activities.
    y_test = rng.integers(0, num_classes, test_size)
    x_test = _render_windows(rng, y_test, freqs, amps,
                             user_scale=np.ones(_CHANNELS), user_phase=0.0,
                             user_bias=np.zeros(_CHANNELS), noise=noise)

    return FederatedDataset(
        name=name, modality="har",
        x_train=np.concatenate(xs), y_train=np.concatenate(ys).astype(np.int64),
        x_test=x_test, y_test=y_test.astype(np.int64),
        num_classes=num_classes, user_ids=np.concatenate(uids),
        paper_num_clients=paper_num_clients,
        info={"input_shape": HAR_INPUT_SHAPE})


def make_ucihar_like(num_users: int = 30, samples_per_user: int = 40,
                     test_size: int = 400, seed: int = 0) -> FederatedDataset:
    """UCI-HAR stand-in: 6 activities, 30 users (paper: 30 clients)."""
    return _make_har_task("ucihar", num_users, 6, samples_per_user,
                          test_size, seed + 6, paper_num_clients=30,
                          noise=0.6)


def make_harbox_like(num_users: int = 100, samples_per_user: int = 15,
                     test_size: int = 400, seed: int = 0) -> FederatedDataset:
    """HAR-BOX stand-in: 5 daily activities, 100 users (paper: 100 clients)."""
    return _make_har_task("harbox", num_users, 5, samples_per_user,
                          test_size, seed + 5, paper_num_clients=100,
                          noise=0.9)
