"""Edge device profiles (Table III) and the client capability model.

Effective training throughputs are calibrated against the measured ratios of
Table I (ResNet-101 x0.5, one round: Jetson Orin NX ~213 s vs Jetson Nano
~430 s for SHeteroFL), not against vendor peak FLOPS — training on edge
boards is far from peak and the *ratios* are what the constraint-driven model
assignment consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceProfile", "EDGE_DEVICES", "get_device"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static capabilities of an edge device."""

    name: str
    processor: str
    gpu: str
    #: sustained training throughput, FLOP/s (calibrated, see module doc).
    effective_train_flops: float
    #: memory available to a training process, bytes.
    memory_bytes: int
    #: uplink / downlink bandwidth, bytes per second.
    uplink_bps: float
    downlink_bps: float
    has_gpu: bool = True
    #: fixed per-round overhead (data loading, kernel launch, ...), seconds.
    round_overhead_s: float = 5.0

    @property
    def memory_gb(self) -> float:
        return self.memory_bytes / 2**30


#: The devices of Table III plus the Jetson Nano used in Table I.
EDGE_DEVICES: dict[str, DeviceProfile] = {
    "jetson_orin_nx": DeviceProfile(
        name="jetson_orin_nx",
        processor="1024-core NVIDIA Ampere GPU",
        gpu="Ampere (1024 cores)",
        effective_train_flops=9.0e9,
        memory_bytes=16 * 2**30,
        uplink_bps=1.0e6,      # 8 Mbit/s up
        downlink_bps=5.0e6,    # 40 Mbit/s down
        has_gpu=True),
    "jetson_tx2_nx": DeviceProfile(
        name="jetson_tx2_nx",
        processor="256-core NVIDIA Pascal GPU",
        gpu="Pascal (256 cores)",
        effective_train_flops=5.5e9,
        memory_bytes=4 * 2**30,
        uplink_bps=0.75e6,
        downlink_bps=3.75e6,
        has_gpu=True),
    "jetson_nano": DeviceProfile(
        name="jetson_nano",
        processor="128-core NVIDIA Maxwell GPU",
        gpu="Maxwell (128 cores)",
        effective_train_flops=4.45e9,
        memory_bytes=4 * 2**30,
        uplink_bps=0.6e6,
        downlink_bps=3.0e6,
        has_gpu=True),
    "raspberry_pi_4b": DeviceProfile(
        name="raspberry_pi_4b",
        processor="Broadcom BCM2711B0 quad-core A72 @ 1.5GHz",
        gpu="none",
        effective_train_flops=0.7e9,
        memory_bytes=4 * 2**30,
        uplink_bps=0.5e6,
        downlink_bps=2.5e6,
        has_gpu=False),
}


def get_device(name: str) -> DeviceProfile:
    """Look up a Table III device profile by name."""
    try:
        return EDGE_DEVICES[name]
    except KeyError:
        raise ValueError(f"unknown device {name!r}; "
                         f"known: {sorted(EDGE_DEVICES)}") from None
