"""Analytic cost models: training time, communication time, training memory.

These translate :class:`~repro.hw.flops.ModelStats` into the three resources
the paper's constraint cases equalise:

* **training time** (computation-limited) — backward costs ~2x forward, so a
  training step is ~3x forward FLOPs, divided by the device's sustained
  training throughput, plus a fixed per-round overhead;
* **communication time** (communication-limited) — parameter payload over
  the device's uplink + downlink (both directions happen every round in
  synchronous FL);
* **training memory** (memory-limited) — weights + gradients + optimiser
  state for the trainable parameters, plus live activations for a batch
  (with a backward workspace factor), plus a fixed framework residency.

The backward/workspace constants follow the usual rules of thumb and were
sanity-checked against Table I's measured pattern: at the same x0.5
proportion, a depth-pruned model (DepthFL) costs far more memory than a
width-sliced model (SHeteroFL) because it keeps the full-resolution early
stages — exactly what the estimator reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .device import DeviceProfile
from .flops import ModelStats

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the analytic cost model."""

    #: training-step FLOPs as a multiple of forward FLOPs (fwd + bwd).
    train_flops_factor: float = 3.0
    #: activation bytes multiplier for backward workspace / fragmentation.
    activation_factor: float = 2.0
    #: bytes of weights+grads+optimiser state per trainable parameter byte
    #: (SGD momentum: weights + grads + velocity).
    optimizer_state_factor: float = 3.0
    #: fixed framework residency (allocator pools, kernels), bytes.
    framework_overhead_bytes: float = 96e6

    # ------------------------------------------------------------------
    def training_time_s(self, stats: ModelStats, device: DeviceProfile,
                        num_samples: int, local_epochs: int = 1) -> float:
        """Wall-clock seconds for one local training round."""
        step_flops = stats.flops_per_sample * self.train_flops_factor
        total = step_flops * num_samples * local_epochs
        return total / device.effective_train_flops + device.round_overhead_s

    def communication_time_s(self, stats: ModelStats,
                             device: DeviceProfile) -> float:
        """Seconds to download + upload one round's parameter payload."""
        payload = stats.param_bytes
        return payload / device.downlink_bps + payload / device.uplink_bps

    def training_memory_bytes(self, stats: ModelStats,
                              batch_size: int = 8) -> float:
        """Peak training-process memory for one local step."""
        weights = stats.param_bytes
        optimizer = stats.trainable_param_bytes * self.optimizer_state_factor
        activations = (stats.activation_bytes_per_sample * batch_size
                       * self.activation_factor)
        return weights + optimizer + activations + self.framework_overhead_bytes

    def round_time_s(self, stats: ModelStats, device: DeviceProfile,
                     num_samples: int, local_epochs: int = 1) -> float:
        """One client's full round: local training plus both transfers."""
        return self.training_time_s(stats, device, num_samples,
                                    local_epochs) \
            + self.communication_time_s(stats, device)

    def fleet_round_time_quantile(self, stats, devices:
                                  Iterable[DeviceProfile],
                                  quantile: float, num_samples,
                                  local_epochs: int = 1) -> float:
        """Fleet quantile of the full round time.

        ``stats`` and ``num_samples`` are either one value for the whole
        fleet or sequences parallel to ``devices`` (per-client assigned
        variants / shard sizes).  Fleet-planning utility for sizing round
        deadlines before an algorithm exists (e.g. the 0.8 quantile drops
        the slowest ~20% of the fleet), the same way the constraint cases
        derive their relative budgets; once a scenario is built, prefer
        :meth:`repro.algorithms.base.MHFLAlgorithm.fleet_round_time_quantile`,
        which honours per-algorithm payload overrides.
        """
        devices = list(devices)
        if isinstance(stats, ModelStats):
            stats = [stats] * len(devices)
        if isinstance(num_samples, (int, float)):
            num_samples = [num_samples] * len(devices)
        times = [self.round_time_s(s, device, n, local_epochs)
                 for s, device, n in zip(stats, devices, num_samples)]
        return float(np.quantile(times, quantile))

    def fits_in_memory(self, stats: ModelStats, device: DeviceProfile,
                       batch_size: int = 8, headroom: float = 0.8) -> bool:
        """Whether a variant can train on ``device`` (with OS headroom)."""
        budget = device.memory_bytes * headroom
        return self.training_memory_bytes(stats, batch_size) <= budget


DEFAULT_COST_MODEL = CostModel()
