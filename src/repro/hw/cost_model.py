"""Analytic cost models: training time, communication time, training memory.

These translate :class:`~repro.hw.flops.ModelStats` into the three resources
the paper's constraint cases equalise:

* **training time** (computation-limited) — backward costs ~2x forward, so a
  training step is ~3x forward FLOPs, divided by the device's sustained
  training throughput, plus a fixed per-round overhead;
* **communication time** (communication-limited) — parameter payload over
  the device's uplink + downlink (both directions happen every round in
  synchronous FL);
* **training memory** (memory-limited) — weights + gradients + optimiser
  state for the trainable parameters, plus live activations for a batch
  (with a backward workspace factor), plus a fixed framework residency.

The backward/workspace constants follow the usual rules of thumb and were
sanity-checked against Table I's measured pattern: at the same x0.5
proportion, a depth-pruned model (DepthFL) costs far more memory than a
width-sliced model (SHeteroFL) because it keeps the full-resolution early
stages — exactly what the estimator reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceProfile
from .flops import ModelStats

__all__ = ["CostModel", "DEFAULT_COST_MODEL"]


@dataclass(frozen=True)
class CostModel:
    """Tunable constants of the analytic cost model."""

    #: training-step FLOPs as a multiple of forward FLOPs (fwd + bwd).
    train_flops_factor: float = 3.0
    #: activation bytes multiplier for backward workspace / fragmentation.
    activation_factor: float = 2.0
    #: bytes of weights+grads+optimiser state per trainable parameter byte
    #: (SGD momentum: weights + grads + velocity).
    optimizer_state_factor: float = 3.0
    #: fixed framework residency (allocator pools, kernels), bytes.
    framework_overhead_bytes: float = 96e6

    # ------------------------------------------------------------------
    def training_time_s(self, stats: ModelStats, device: DeviceProfile,
                        num_samples: int, local_epochs: int = 1) -> float:
        """Wall-clock seconds for one local training round."""
        step_flops = stats.flops_per_sample * self.train_flops_factor
        total = step_flops * num_samples * local_epochs
        return total / device.effective_train_flops + device.round_overhead_s

    def communication_time_s(self, stats: ModelStats,
                             device: DeviceProfile) -> float:
        """Seconds to download + upload one round's parameter payload."""
        payload = stats.param_bytes
        return payload / device.downlink_bps + payload / device.uplink_bps

    def training_memory_bytes(self, stats: ModelStats,
                              batch_size: int = 8) -> float:
        """Peak training-process memory for one local step."""
        weights = stats.param_bytes
        optimizer = stats.trainable_param_bytes * self.optimizer_state_factor
        activations = (stats.activation_bytes_per_sample * batch_size
                       * self.activation_factor)
        return weights + optimizer + activations + self.framework_overhead_bytes

    def fits_in_memory(self, stats: ModelStats, device: DeviceProfile,
                       batch_size: int = 8, headroom: float = 0.8) -> bool:
        """Whether a variant can train on ``device`` (with OS headroom)."""
        budget = device.memory_bytes * headroom
        return self.training_memory_bytes(stats, batch_size) <= budget


DEFAULT_COST_MODEL = CostModel()
