"""Hardware substrate: devices, measurement, cost models, fleets, model pool."""

from .device import DeviceProfile, EDGE_DEVICES, get_device
from .flops import ModelStats, measure_model, dummy_input
from .cost_model import CostModel, DEFAULT_COST_MODEL
from .ima import ClientCapability, sample_fleet, MEMORY_TIERS
from .model_pool import PoolEntry, ModelPool

__all__ = [
    "DeviceProfile", "EDGE_DEVICES", "get_device",
    "ModelStats", "measure_model", "dummy_input",
    "CostModel", "DEFAULT_COST_MODEL",
    "ClientCapability", "sample_fleet", "MEMORY_TIERS",
    "PoolEntry", "ModelPool",
]
