"""Synthetic IMA-style device fleet (client capability traces).

The paper builds its computation- and communication-limited cases from the
IMA dataset (Yang et al., WWW'21): real capability traces of 1000+
smartphones (Samsung Note 10 ... Redmi Note 8 class).  Offline, we sample a
seeded fleet with the same *spread*: roughly an order of magnitude between
fast and slow devices in compute, heavy-tailed bandwidth, and a memory-tier
mix following the ScientiaMobile smartphone-RAM distribution the paper cites
for the memory-limited case.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .device import DeviceProfile

__all__ = ["ClientCapability", "sample_fleet", "MEMORY_TIERS"]

#: Memory tiers of the memory-limited case: (label, memory bytes, has_gpu,
#: market share).  Shares follow the ScientiaMobile distribution the paper
#: cites: a minority of 16 GB-class devices, a majority of 4 GB-class, and a
#: long tail of CPU-only devices.
MEMORY_TIERS: list[tuple[str, int, bool, float]] = [
    ("16gb_gpu", 16 * 2**30, True, 0.20),
    ("4gb_gpu", 4 * 2**30, True, 0.55),
    ("no_gpu", 4 * 2**30, False, 0.25),
]


@dataclass(frozen=True)
class ClientCapability:
    """One client's sampled device capability."""

    client_id: int
    #: sustained training throughput, FLOP/s.
    compute_flops: float
    #: uplink / downlink, bytes per second.
    uplink_bps: float
    downlink_bps: float
    #: memory tier (see :data:`MEMORY_TIERS`).
    memory_bytes: int
    has_gpu: bool
    tier: str

    def as_device(self) -> DeviceProfile:
        """View this capability as an ad-hoc :class:`DeviceProfile`."""
        return DeviceProfile(
            name=f"client_{self.client_id}", processor="sampled",
            gpu="sampled" if self.has_gpu else "none",
            effective_train_flops=self.compute_flops,
            memory_bytes=self.memory_bytes,
            uplink_bps=self.uplink_bps, downlink_bps=self.downlink_bps,
            has_gpu=self.has_gpu)


def sample_fleet(num_clients: int, seed: int = 0,
                 compute_median_flops: float = 6e9,
                 compute_spread: float = 0.55,
                 uplink_median_bps: float = 2.5e6,
                 bandwidth_spread: float = 0.7) -> list[ClientCapability]:
    """Sample a seeded fleet of heterogeneous clients.

    ``compute_spread`` / ``bandwidth_spread`` are log-normal sigmas; the
    defaults give ~10x between the 5th and 95th percentile of compute and a
    heavier bandwidth tail, matching the dynamic range the IMA study reports.
    """
    rng = np.random.default_rng(seed)
    labels = [t[0] for t in MEMORY_TIERS]
    shares = np.array([t[3] for t in MEMORY_TIERS])
    shares = shares / shares.sum()
    tier_by_label = {t[0]: t for t in MEMORY_TIERS}

    fleet = []
    for client_id in range(num_clients):
        tier_label = labels[rng.choice(len(labels), p=shares)]
        _, memory_bytes, has_gpu, _ = tier_by_label[tier_label]
        compute = compute_median_flops * rng.lognormal(0.0, compute_spread)
        if not has_gpu:
            compute *= 0.25  # CPU-only devices train far slower
        uplink = uplink_median_bps * rng.lognormal(0.0, bandwidth_spread)
        downlink = uplink * rng.uniform(3.0, 6.0)
        fleet.append(ClientCapability(
            client_id=client_id, compute_flops=compute,
            uplink_bps=uplink, downlink_bps=downlink,
            memory_bytes=memory_bytes, has_gpu=has_gpu, tier=tier_label))
    return fleet
