"""The model pool (Section IV / Figure 3 of the paper).

PracMHBench's constraint cases pick each client's model from a measured pool:
every candidate variant (width multiplier, depth level, or family member) is
profiled for parameters, FLOPs, activation footprint — and, through the cost
model, training time / communication time / training memory on any device.
The pool then answers "largest variant that satisfies this client's budget",
which is the paper's assignment principle for all three constraint cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cost_model import CostModel, DEFAULT_COST_MODEL
from .device import DeviceProfile
from .flops import ModelStats, measure_model
from ..models.base import SliceableModel

__all__ = ["PoolEntry", "ModelPool"]


@dataclass(frozen=True)
class PoolEntry:
    """One measured candidate model variant."""

    key: str
    #: nominal proportion of the original model (the x-axis of Figure 3).
    proportion: float
    #: constructor overrides that rebuild this variant from the base model.
    overrides: dict = field(hash=False)
    stats: ModelStats = field(hash=False)

    def build(self, base_model: SliceableModel) -> SliceableModel:
        return base_model.variant(**self.overrides)


class ModelPool:
    """An ordered collection of measured variants of one base model."""

    def __init__(self, base_model: SliceableModel, entries: list[PoolEntry],
                 cost_model: CostModel = DEFAULT_COST_MODEL):
        if not entries:
            raise ValueError("model pool needs at least one entry")
        self.base_model = base_model
        self.entries = sorted(entries, key=lambda e: e.stats.flops_per_sample)
        self.cost_model = cost_model

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_variants(cls, base_model: SliceableModel,
                      variants: dict[str, dict],
                      proportions: dict[str, float] | None = None,
                      cost_model: CostModel = DEFAULT_COST_MODEL) -> "ModelPool":
        """Measure a set of variants given as ``key -> constructor overrides``.

        ``proportions`` optionally assigns the nominal proportion per key
        (defaults to ``width_mult`` or owned-stage fraction when derivable).
        """
        entries = []
        for key, overrides in variants.items():
            model = base_model.variant(**overrides)
            stats = measure_model(model)
            if proportions and key in proportions:
                proportion = proportions[key]
            elif "width_mult" in overrides:
                proportion = float(overrides["width_mult"])
            elif "num_stages" in overrides and overrides["num_stages"]:
                proportion = overrides["num_stages"] / base_model.total_stages
            else:
                proportion = 1.0
            entries.append(PoolEntry(key=key, proportion=proportion,
                                     overrides=dict(overrides), stats=stats))
        return cls(base_model, entries, cost_model)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def get(self, key: str) -> PoolEntry:
        for entry in self.entries:
            if entry.key == key:
                return entry
        raise KeyError(f"no pool entry {key!r}; known: "
                       f"{[e.key for e in self.entries]}")

    @property
    def smallest(self) -> PoolEntry:
        return self.entries[0]

    @property
    def largest(self) -> PoolEntry:
        return self.entries[-1]

    # ------------------------------------------------------------------
    # Constraint-driven selection (the paper's assignment principle)
    # ------------------------------------------------------------------
    def largest_within_time(self, device: DeviceProfile, deadline_s: float,
                            num_samples: int,
                            local_epochs: int = 1) -> PoolEntry:
        """Largest variant whose round training time meets the deadline."""
        best = self.entries[0]
        for entry in self.entries:
            time_s = self.cost_model.training_time_s(
                entry.stats, device, num_samples, local_epochs)
            if time_s <= deadline_s:
                best = entry
        return best

    def largest_within_comm(self, device: DeviceProfile,
                            budget_s: float) -> PoolEntry:
        """Largest variant whose up+down transfer meets the budget."""
        best = self.entries[0]
        for entry in self.entries:
            if self.cost_model.communication_time_s(entry.stats,
                                                    device) <= budget_s:
                best = entry
        return best

    def largest_within_memory(self, device: DeviceProfile,
                              batch_size: int = 8,
                              headroom: float = 0.8) -> PoolEntry:
        """Largest variant that trains within the device's memory."""
        best = self.entries[0]
        for entry in self.entries:
            if self.cost_model.fits_in_memory(entry.stats, device,
                                              batch_size, headroom):
                best = entry
        return best
