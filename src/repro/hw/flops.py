"""Model measurement: parameters, FLOPs and activation footprint.

Uses the op-level profiler of :mod:`repro.autograd.profiler`, so the numbers
are exact for whatever variant is passed in — including width-sliced,
depth-pruned and partially-frozen models, which is precisely the distinction
Table I of the paper demonstrates (equal-proportion models from different
heterogeneity methods differ widely in time and memory).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .. import autograd as ag
from ..models.base import SliceableModel
from ..models.har_cnn import HAR_INPUT_SHAPE

__all__ = ["ModelStats", "measure_model", "dummy_input"]

_BYTES_PER_PARAM = 4  # float32


@dataclass(frozen=True)
class ModelStats:
    """Per-sample measurement of one model variant."""

    params: int
    trainable_params: int
    flops_per_sample: float          # forward FLOPs for one sample
    activation_bytes_per_sample: float

    @property
    def param_bytes(self) -> int:
        return self.params * _BYTES_PER_PARAM

    @property
    def trainable_param_bytes(self) -> int:
        return self.trainable_params * _BYTES_PER_PARAM

    @property
    def gflops_per_sample(self) -> float:
        return self.flops_per_sample / 1e9

    @property
    def params_millions(self) -> float:
        return self.params / 1e6


def dummy_input(model: SliceableModel, batch_size: int = 1,
                seed: int = 0) -> np.ndarray:
    """Build a correctly-shaped dummy input for any zoo model."""
    rng = np.random.default_rng(seed)
    kwargs = model._build_kwargs
    if model.pool_kind == "sequence":
        vocab = kwargs.get("vocab_size", 256)
        seq_len = min(16, kwargs.get("max_len", 32))
        return rng.integers(0, vocab, size=(batch_size, seq_len))
    if model.family == "har_cnn":
        return rng.standard_normal((batch_size,) + HAR_INPUT_SHAPE).astype(np.float32)
    in_channels = kwargs.get("in_channels", 3)
    resolution = 32 if kwargs.get("scale") == "paper" else 16
    return rng.standard_normal(
        (batch_size, in_channels, resolution, resolution)).astype(np.float32)


def measure_model(model: SliceableModel,
                  sample: np.ndarray | None = None) -> ModelStats:
    """Profile one forward pass and return per-sample statistics.

    The forward is run in eval mode under ``no_grad``; FLOPs count the
    matmul-like ops (2 x MACs) and activation bytes sum every op output —
    the tensors a training step has to keep alive for backprop.
    """
    if sample is None:
        sample = dummy_input(model, batch_size=1)
    was_training = model.training
    model.eval()
    try:
        with ag.no_grad():
            with ag.profile() as report:
                model(sample)
    finally:
        model.train(was_training)
    batch = len(sample)
    return ModelStats(
        params=model.num_parameters(),
        trainable_params=sum(p.size for p in model.parameters()
                             if p.requires_grad),
        flops_per_sample=report.flops / batch,
        activation_bytes_per_sample=report.activation_bytes / batch)
