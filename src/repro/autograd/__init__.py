"""Reverse-mode autograd engine (numpy substrate for the PracMHBench zoo)."""

from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad
from .tensor import (exp, log, sqrt, tanh, sigmoid, relu, relu6, hardswish,
                     gelu, tsum, tmean, tmax, reshape, transpose, concat,
                     matmul, pad2d)
from .functional import (conv2d, max_pool2d, avg_pool2d, global_avg_pool2d,
                         batch_norm, layer_norm, embedding, dropout,
                         attention, softmax, log_softmax, cross_entropy,
                         soft_cross_entropy, mse_loss, linear)
from .grad_check import check_gradients, numerical_gradient
from .profiler import profile, ProfileReport
from . import plan

__all__ = [
    "Tensor", "as_tensor", "is_grad_enabled", "no_grad",
    "exp", "log", "sqrt", "tanh", "sigmoid", "relu", "relu6", "hardswish",
    "gelu", "tsum", "tmean", "tmax", "reshape", "transpose", "concat",
    "matmul", "pad2d",
    "conv2d", "max_pool2d", "avg_pool2d", "global_avg_pool2d", "batch_norm",
    "layer_norm", "embedding", "dropout", "attention", "softmax",
    "log_softmax", "cross_entropy", "soft_cross_entropy", "mse_loss",
    "linear",
    "check_gradients", "numerical_gradient",
    "profile", "ProfileReport",
    "plan",
]
