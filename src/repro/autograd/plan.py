"""Cached step plans: reuse per-step graph work across training steps.

Federated simulation has a structure classic autograd engines ignore: every
client trains the *same graph shapes* every round (same model variant, same
batch size), so per-step derived state — the seq-sorted topological order of
the backward tape and the scratch buffers behind im2col / col2im — is
recomputed and reallocated thousands of times for identical graphs.  A
:class:`StepPlan` captures that state once and replays it:

* **Topo-order schedules.**  While a plan step is active, every tape node is
  recorded in creation order.  The first ``backward()`` computes the normal
  topological order and stores it *structurally* — tape nodes by their
  creation index, grad leaves as ``(child index, parent slot)`` references —
  so the next step's isomorphic graph resolves the same order with a single
  list comprehension instead of a full traversal + sort.  A schedule is only
  replayed when the step's node count matches the recording exactly;
  any structural drift falls back to a fresh traversal (which re-records).

* **Workspace arenas.**  :func:`workspace` hands out shape-keyed scratch
  buffers that ops fully overwrite (the im2col gather target, the col2im
  accumulation buffer).  Buffers are recycled at ``begin()`` of the next
  step, never mid-step, so closures created during forward can keep using
  them through backward.  Because every buffer is fully written before it is
  read, reuse is *value-invisible*: planned and plan-free steps produce
  byte-identical results (pinned by ``tests/test_plan_cache.py``).

Plans live in a **per-thread** registry keyed by ``(model signature, batch
shape)``: the thread executor's workers and every process-pool worker each
own their plans, so no scratch state is ever shared across concurrently
training clients.  Plan caching is a pure wall-clock/allocation knob —
results, histories and spec content hashes are identical with it on or off
(``REPRO_PLAN_CACHE=0`` or :func:`set_plan_caching` disables it).
"""

from __future__ import annotations

import contextlib
import os
from collections import OrderedDict

import numpy as np

from .tensor import _PLAN_STATE

__all__ = ["StepPlan", "step", "workspace", "current_step", "model_plan_key",
           "set_plan_caching", "plan_caching_enabled", "clear_thread_plans",
           "thread_plans"]

#: soft cap on cached plans per thread (a sweep cycling over many model
#: variants keeps only the most recently used plans; each plan holds a few
#: conv-sized scratch buffers, so the cap bounds worker memory).
MAX_PLANS_PER_THREAD = 16

_ENABLED = os.environ.get("REPRO_PLAN_CACHE", "1") != "0"


def set_plan_caching(enabled: bool) -> None:
    """Globally enable/disable plan caching (hash-invisible, results
    byte-identical either way — this is a wall-clock/allocation knob)."""
    global _ENABLED
    _ENABLED = bool(enabled)


def plan_caching_enabled() -> bool:
    return _ENABLED


class StepPlan:
    """Reusable per-step state for one ``(model slice, batch shape)`` cell."""

    __slots__ = ("key", "nodes", "steps", "schedule_hits",
                 "_token", "_schedules", "_arenas", "_cursors")

    def __init__(self, key):
        self.key = key
        #: tape nodes created during the active step, in creation order.
        self.nodes: list = []
        self.steps = 0
        self.schedule_hits = 0
        self._token: object | None = None
        #: root index -> (node_count_at_backward, structural order entries).
        self._schedules: dict[int, tuple[int, tuple]] = {}
        #: (shape, dtype str) -> recycled scratch buffers.
        self._arenas: dict[tuple, list[np.ndarray]] = {}
        self._cursors: dict[tuple, int] = {}

    # -- step lifecycle -------------------------------------------------
    def begin(self) -> None:
        self._token = object()
        self.nodes.clear()
        for key in self._cursors:
            self._cursors[key] = 0
        self.steps += 1

    def end(self) -> None:
        # Drop node references so finished graphs free immediately; stale
        # ``_plan_tag`` tokens on dead tensors can never match a new step.
        self._token = None
        self.nodes.clear()

    # -- tape recording (called from Tensor._make) ----------------------
    def record(self, node) -> None:
        node._plan_tag = (self._token, len(self.nodes))
        self.nodes.append(node)

    # -- topo-order schedules (called from Tensor._topo_order) ----------
    def cached_order(self, root) -> list | None:
        """Replay the stored schedule for ``root``'s structural position,
        or ``None`` when there is no trustworthy recording."""
        tag = root._plan_tag
        if tag is None or tag[0] is not self._token:
            return None
        sched = self._schedules.get(tag[1])
        if sched is None or sched[0] != len(self.nodes):
            return None
        nodes = self.nodes
        order = []
        try:
            for entry in sched[1]:
                if type(entry) is int:
                    tensor = nodes[entry]
                else:
                    tensor = nodes[entry[0]]._parents[entry[1]]
                    # A resolved reference must still be backward-relevant:
                    # a frozen leaf here means the recording came from a
                    # graph with a different trainable mask — replaying it
                    # would silently drop gradient contributions.
                    if tensor._backward is None and not tensor.requires_grad:
                        return None
                order.append(tensor)
        except IndexError:  # structural drift: recompute and re-record
            return None
        self.schedule_hits += 1
        return order

    def store_order(self, root, order) -> None:
        """Encode ``order`` structurally so the next isomorphic graph can
        resolve it without traversal.  Bails (caches nothing) if any node
        is neither step-recorded nor reachable as a recorded node's parent
        — e.g. a tensor shared from outside the step."""
        tag = root._plan_tag
        if tag is None or tag[0] is not self._token:
            return
        token = self._token
        parent_ref: dict[int, tuple[int, int]] = {}
        for tensor in order:
            ttag = tensor._plan_tag
            if ttag is not None and ttag[0] is token:
                for slot, parent in enumerate(tensor._parents):
                    parent_ref.setdefault(id(parent), (ttag[1], slot))
        entries = []
        for tensor in order:
            ttag = tensor._plan_tag
            if ttag is not None and ttag[0] is token:
                entries.append(ttag[1])
            else:
                ref = parent_ref.get(id(tensor))
                if ref is None:
                    return
                entries.append(ref)
        self._schedules[tag[1]] = (len(self.nodes), tuple(entries))

    # -- workspace arenas ------------------------------------------------
    def workspace(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A scratch buffer of ``shape``/``dtype``, recycled across steps.

        The caller must fully overwrite it before reading; buffers stay
        valid from acquisition until the *next* ``begin()``, so backward
        closures may hold them across the forward/backward boundary.
        """
        key = (shape, np.dtype(dtype).str)
        bufs = self._arenas.get(key)
        if bufs is None:
            bufs = self._arenas[key] = []
            self._cursors[key] = 0
        cursor = self._cursors[key]
        self._cursors[key] = cursor + 1
        if cursor < len(bufs):
            return bufs[cursor]
        buf = np.empty(shape, dtype=dtype)
        bufs.append(buf)
        return buf


# ----------------------------------------------------------------------
# Per-thread registry + module-level API
# ----------------------------------------------------------------------

def current_step() -> StepPlan | None:
    """The plan step active on this thread, if any."""
    return getattr(_PLAN_STATE, "step", None)


def thread_plans() -> "OrderedDict":
    """This thread's plan registry (visible for tests / introspection)."""
    plans = getattr(_PLAN_STATE, "plans", None)
    if plans is None:
        plans = OrderedDict()
        _PLAN_STATE.plans = plans
    return plans


def clear_thread_plans() -> None:
    """Drop every cached plan owned by the calling thread (releases the
    scratch arenas; the next planned step rebuilds from scratch)."""
    _PLAN_STATE.plans = OrderedDict()


def _plan_for(full_key) -> StepPlan:
    plans = thread_plans()
    plan = plans.get(full_key)
    if plan is None:
        while len(plans) >= MAX_PLANS_PER_THREAD:
            plans.popitem(last=False)
        plan = plans[full_key] = StepPlan(full_key)
    else:
        plans.move_to_end(full_key)
    return plan


def model_plan_key(model) -> tuple:
    """Structural identity of a model slice: class, every state-dict entry's
    name and shape, plus the trainable mask.  Two clients holding the same
    variant at the same width/depth with the same frozen layers produce
    equal keys and therefore share a plan.

    The trainable mask is part of the key because it is part of the *graph
    structure*: freezing a layer removes its parameters (and any frozen
    prefix) from the backward order, so e.g. FeDepth's sliding trainable
    segment yields a different tape per segment position even though the
    state dict never changes shape.  Keying on the mask keeps every
    schedule isomorphic to the graphs it replays on."""
    return (type(model).__qualname__,
            tuple((name, value.shape)
                  for name, value in model.state_dict().items()),
            tuple(name for name, p in model.named_parameters()
                  if p.requires_grad))


@contextlib.contextmanager
def step(key, batch_shape):
    """Run one training step under the plan for ``(key, batch_shape)``.

    No-op (plain execution) when plan caching is disabled or when a plan
    step is already active on this thread — nested graphs (distillation
    losses built inside a step) are recorded into the *outer* step, which
    is exactly where their backward runs.
    """
    if not _ENABLED or getattr(_PLAN_STATE, "step", None) is not None:
        yield None
        return
    plan = _plan_for((key, tuple(batch_shape)))
    plan.begin()
    _PLAN_STATE.step = plan
    try:
        yield plan
    finally:
        _PLAN_STATE.step = None
        plan.end()


def workspace(shape: tuple[int, ...], dtype) -> np.ndarray:
    """A scratch buffer from the active plan, or a fresh allocation when no
    plan step is active.  Callers must fully overwrite it; both paths hand
    back writable memory of identical shape/dtype, so results are
    bit-identical with plans on or off."""
    plan = getattr(_PLAN_STATE, "step", None)
    if plan is None:
        return np.empty(shape, dtype=dtype)
    return plan.workspace(shape, dtype)
