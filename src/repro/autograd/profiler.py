"""Lightweight op-level profiler: FLOPs and activation-memory accounting.

The hardware cost models (:mod:`repro.hw`) need per-model FLOP counts and the
total size of activations a training step must keep alive. Rather than
maintaining per-architecture analytic formulas, we instrument the autograd
ops: running a forward pass inside :func:`profile` counts multiply-accumulate
operations (2 FLOPs each) for the matmul-like ops and records every op
output's byte size (a faithful proxy for what backprop must retain).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

__all__ = ["profile", "ProfileReport", "add_flops", "add_activation_bytes",
           "add_gemm_calls", "profiling_active"]


@dataclass
class ProfileReport:
    """Counters collected during a profiled region."""

    flops: int = 0
    activation_bytes: int = 0
    gemm_calls: int = 0
    op_counts: dict[str, int] = field(default_factory=dict)

    def record_op(self, kind: str) -> None:
        self.op_counts[kind] = self.op_counts.get(kind, 0) + 1


class _ProfilerState:
    def __init__(self):
        self.active = False
        self.report: ProfileReport | None = None


_STATE = _ProfilerState()


def profiling_active() -> bool:
    return _STATE.active


def add_flops(count: int, kind: str = "op") -> None:
    """Record ``count`` floating-point operations (no-op when not profiling)."""
    if _STATE.active:
        _STATE.report.flops += int(count)
        _STATE.report.record_op(kind)


def add_activation_bytes(nbytes: int) -> None:
    """Record bytes of a produced activation (no-op when not profiling)."""
    if _STATE.active:
        _STATE.report.activation_bytes += int(nbytes)


def add_gemm_calls(count: int) -> None:
    """Record ``count`` BLAS GEMM dispatches (batched matmul counts one per
    batch element — per-group small GEMMs show up here as call inflation
    even when the FLOP totals are identical)."""
    if _STATE.active:
        _STATE.report.gemm_calls += int(count)


@contextlib.contextmanager
def profile():
    """Collect FLOPs / activation bytes for ops executed inside the block.

    Yields the live :class:`ProfileReport`; nested profiling is not
    supported (the inner block would steal the outer block's counters).
    """
    if _STATE.active:
        raise RuntimeError("profiler does not support nesting")
    report = ProfileReport()
    _STATE.active = True
    _STATE.report = report
    try:
        yield report
    finally:
        _STATE.active = False
        _STATE.report = None
